//! The Feedback Solver walkthrough (§4.2.1, Fig. 3): a deployment whose
//! knowledge set is missing the ownership convention generates a wrong
//! query; the analyst gives feedback; GenEdit recommends edits; the
//! analyst stages them and regenerates until satisfied; the edits pass
//! regression testing and merge.
//!
//! Run: `cargo run --release --example feedback_solver`

use genedit::bird::{score_prediction, DomainBundle, SPORTS};
use genedit::core::{
    submit_edits, FeedbackSession, GenEditPipeline, GoldenQuery, SubmissionResult,
};
use genedit::knowledge::Edit;
use genedit::llm::{OracleConfig, OracleModel, TaskRegistry};
use genedit::sql::execute_sql;

fn main() {
    let bundle = DomainBundle::build(&SPORTS, (24, 7, 3), 42);
    let mut registry = TaskRegistry::new();
    for t in &bundle.tasks {
        registry.register(t.clone());
    }
    // Noise channels off: this walkthrough demonstrates the knowledge
    // mechanics, not the benchmark's failure statistics.
    let oracle = OracleModel::with_config(
        registry,
        OracleConfig {
            noise_rate: 0.0,
            pseudo_drift_probability: 0.0,
            drift_probability: 0.0,
            canonical_form_penalty: 0.0,
            ..Default::default()
        },
    );
    let pipeline = GenEditPipeline::new(&oracle);

    // Early deployment: nobody has taught the system that "our"
    // means OWNERSHIP_FLAG = 'COC'.
    let mut deployed = bundle.build_knowledge();
    let doomed: Vec<_> = deployed
        .instructions()
        .iter()
        .filter(|i| i.retrieval_text().contains("COC"))
        .map(|i| i.id)
        .collect();
    for id in doomed {
        deployed.apply(Edit::DeleteInstruction { id }).unwrap();
    }
    let doomed: Vec<_> = deployed
        .examples()
        .iter()
        .filter(|e| e.retrieval_text().contains("COC"))
        .map(|e| e.id)
        .collect();
    for id in doomed {
        deployed.apply(Edit::DeleteExample { id }).unwrap();
    }

    let task = bundle
        .tasks
        .iter()
        .find(|t| t.task_id.ends_with("s05"))
        .expect("the 'our organisations' task");

    println!("┌─ Feedback Solver ──────────────────────────────────────────");
    println!("│ Q: {}", task.question);

    // Initial generation: wrong (ownership filter dropped).
    let mut session = FeedbackSession::open(&pipeline, &bundle.db, &deployed, &task.question);
    let sql = session.latest.sql.clone().unwrap();
    println!("│\n│ Generated SQL:\n│   {sql}");
    let rs = execute_sql(&bundle.db, &sql).unwrap();
    println!("│ Result preview ({} rows):", rs.row_count());
    for line in rs.to_table_string().lines().take(4) {
        println!("│   {line}");
    }
    let (ok, _) = score_prediction(&bundle.db, &task.gold_sql, Some(&sql));
    println!("│ Correct: {ok}");

    // The analyst complains — the paper's Fig. 3a feedback, verbatim in
    // spirit.
    let feedback = "This response queries all sports organizations but I only care about our \
                    organizations — ours carry OWNERSHIP_FLAG = 'COC'";
    println!("│\n│ Feedback: {feedback}");
    let n = session.submit_feedback(feedback);
    println!("│ {n} recommended edits:");
    for (i, rec) in session.recommendations().iter().enumerate() {
        println!("│   [{i}] {}", rec.edit.summary());
        for step in &rec.plan_steps {
            println!("│         plan: {step}");
        }
    }

    // Stage all and regenerate (Fig. 3d/3e).
    session.stage_all();
    println!(
        "│\n│ staged {} edits; regenerating…",
        session.staged_count()
    );
    session.regenerate();
    let sql = session.latest.sql.clone().unwrap();
    println!("│ Regenerated SQL:\n│   {sql}");
    let (ok, _) = score_prediction(&bundle.db, &task.gold_sql, Some(&sql));
    println!("│ Correct now: {ok}");

    // Submit: regression testing against a golden set, then approval.
    let golden: Vec<GoldenQuery> = bundle
        .tasks
        .iter()
        .take(6)
        .map(|t| GoldenQuery {
            question: t.question.clone(),
            gold_sql: t.gold_sql.clone(),
        })
        .collect();
    let staging = session.into_staged();
    let result = submit_edits(
        &pipeline,
        &bundle.db,
        &mut deployed,
        staging,
        &golden,
        |outcome| {
            println!(
                "│\n│ regression: {}/{} golden correct before, {}/{} after, {} regressions",
                outcome.before_correct,
                outcome.total,
                outcome.after_correct,
                outcome.total,
                outcome.regressions.len()
            );
            true // the human reviewer approves
        },
        "merge: ownership convention from analyst feedback",
    )
    .unwrap();
    match result {
        SubmissionResult::Merged { checkpoint, .. } => {
            println!("│ merged ✔ (revert checkpoint {checkpoint})");
        }
        other => println!("│ not merged: {other:?}"),
    }

    println!("│\n│ Knowledge-set history:");
    for logged in deployed.log().iter().rev().take(3) {
        println!("│   #{} {}", logged.seq, logged.edit.summary());
    }
    println!("└────────────────────────────────────────────────────────────");
}
