//! A miniature analytics-engine REPL around the GenEdit pipeline — the
//! paper's point that "Text-to-SQL is not a standalone product and instead
//! ships … within an analytics engine" (§1). Reads commands from stdin, so
//! it works interactively or scripted:
//!
//! ```text
//! echo 'How many sports organisations are in Canada?
//! :knowledge
//! :quit' | cargo run --release --example analytics_repl
//! ```
//!
//! Commands:
//!   <question>            generate SQL, run it, show the table
//!   :feedback <text>      recommend edits for the last generation
//!   :stage                stage all current recommendations
//!   :regenerate           regenerate the last question with staged edits
//!   :submit               regression-test staged edits and merge
//!   :knowledge            knowledge-set summary
//!   :history              audit log tail
//!   :save <path>          snapshot the knowledge set to JSON
//!   :quit

use genedit::bird::{DomainBundle, SPORTS};
use genedit::core::{
    generate_edits, submit_edits, GenEditPipeline, GoldenQuery, KnowledgeIndex, RecommendedEdit,
    SubmissionResult,
};
use genedit::knowledge::StagingArea;
use genedit::llm::{OracleConfig, OracleModel, TaskRegistry};
use genedit::sql::execute_sql;
use std::io::BufRead;

fn main() {
    let bundle = DomainBundle::build(&SPORTS, (24, 7, 3), 42);
    let mut registry = TaskRegistry::new();
    for t in &bundle.tasks {
        registry.register(t.clone());
    }
    let oracle = OracleModel::with_config(
        registry,
        OracleConfig {
            noise_rate: 0.0,
            pseudo_drift_probability: 0.0,
            drift_probability: 0.0,
            canonical_form_penalty: 0.0,
            ..Default::default()
        },
    );
    let pipeline = GenEditPipeline::new(&oracle);

    let mut deployed = bundle.build_knowledge();
    let mut staging = StagingArea::new();
    let mut recommendations: Vec<RecommendedEdit> = Vec::new();
    let mut last: Option<(String, genedit::core::GenerationResult)> = None;

    println!(
        "GenEdit analytics REPL — database `{}` ({} tables). Type a question or :quit.",
        bundle.db.name,
        bundle.db.tables().len()
    );
    println!(
        "(the oracle model only knows the generated suite's questions; try e.g.)\n  {}\n  {}",
        bundle.tasks[1].question, bundle.tasks[5].question
    );

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        println!("> {line}");

        if let Some(rest) = line.strip_prefix(':') {
            let (cmd, arg) = match rest.split_once(' ') {
                Some((c, a)) => (c, a.trim()),
                None => (rest, ""),
            };
            match cmd {
                "quit" | "q" | "exit" => break,
                "knowledge" => {
                    let s = deployed.stats();
                    println!(
                        "  {} examples, {} instructions, {} schema elements, {} intents, \
                         {} staged edits",
                        s.examples,
                        s.instructions,
                        s.schema_elements,
                        s.intents,
                        staging.len()
                    );
                }
                "history" => {
                    for logged in deployed.log().iter().rev().take(5) {
                        println!("  #{:<3} {}", logged.seq, logged.edit.summary());
                    }
                }
                "feedback" => {
                    let Some((question, generation)) = &last else {
                        println!("  nothing generated yet");
                        continue;
                    };
                    if arg.is_empty() {
                        println!("  usage: :feedback <text>");
                        continue;
                    }
                    let staged_view = staging.materialize(&deployed).expect("staged apply");
                    recommendations = generate_edits(arg, question, generation, &staged_view);
                    println!("  {} recommended edits:", recommendations.len());
                    for (i, rec) in recommendations.iter().enumerate() {
                        println!("    [{i}] {}", rec.edit.summary());
                    }
                }
                "stage" => {
                    let n = recommendations.len();
                    for rec in recommendations.drain(..) {
                        staging.stage(rec.edit);
                    }
                    println!("  staged {n} edits ({} total)", staging.len());
                }
                "regenerate" => {
                    let Some((question, _)) = last.clone() else {
                        println!("  nothing to regenerate");
                        continue;
                    };
                    let view = staging.materialize(&deployed).expect("staged apply");
                    let index = KnowledgeIndex::build(view);
                    let result = pipeline.generate(&question, &index, &bundle.db, &[]);
                    show(&bundle.db, &result);
                    last = Some((question, result));
                }
                "submit" => {
                    let golden: Vec<GoldenQuery> = bundle
                        .tasks
                        .iter()
                        .take(5)
                        .map(|t| GoldenQuery {
                            question: t.question.clone(),
                            gold_sql: t.gold_sql.clone(),
                        })
                        .collect();
                    let area = std::mem::take(&mut staging);
                    match submit_edits(
                        &pipeline,
                        &bundle.db,
                        &mut deployed,
                        area,
                        &golden,
                        |o| o.passed(),
                        "repl merge",
                    ) {
                        Ok(SubmissionResult::Merged { checkpoint, .. }) => {
                            println!("  merged (revert checkpoint {checkpoint})")
                        }
                        Ok(other) => println!("  not merged: {other:?}"),
                        Err(e) => println!("  error: {e}"),
                    }
                }
                "save" => {
                    let path = if arg.is_empty() {
                        "knowledge.json"
                    } else {
                        arg
                    };
                    match genedit::knowledge::save(&deployed, path) {
                        Ok(()) => println!("  saved to {path}"),
                        Err(e) => println!("  save failed: {e}"),
                    }
                }
                other => println!("  unknown command :{other}"),
            }
            continue;
        }

        // A question.
        let view = staging.materialize(&deployed).expect("staged apply");
        let index = KnowledgeIndex::build(view);
        let result = pipeline.generate(line, &index, &bundle.db, &[]);
        show(&bundle.db, &result);
        last = Some((line.to_string(), result));
    }
    println!("bye");
}

fn show(db: &genedit::sql::Database, result: &genedit::core::GenerationResult) {
    match &result.sql {
        Some(sql) => {
            println!("  SQL: {sql}");
            match execute_sql(db, sql) {
                Ok(rs) => {
                    for line in rs.to_table_string().lines().take(8) {
                        println!("  {line}");
                    }
                    if rs.row_count() > 6 {
                        println!("  … ({} rows)", rs.row_count());
                    }
                }
                Err(e) => println!("  execution failed: {e}"),
            }
        }
        None => println!("  (no SQL generated; errors: {:?})", result.errors),
    }
}
