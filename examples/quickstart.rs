//! Quickstart: build an enterprise database + knowledge set, run the
//! GenEdit pipeline on a question, and inspect the result.
//!
//! Run: `cargo run --release --example quickstart`

use genedit::bird::{DomainBundle, SPORTS};
use genedit::core::{GenEditPipeline, KnowledgeIndex};
use genedit::llm::{OracleConfig, OracleModel, TaskRegistry};
use genedit::sql::execute_sql;

fn main() {
    // 1. A seeded enterprise domain: the paper's sports holding company,
    //    with its database, historical query logs, and domain documents.
    let bundle = DomainBundle::build(&SPORTS, (24, 7, 3), 42);
    println!(
        "database `{}` with tables: {:?}\n",
        bundle.db.name,
        bundle.db.table_names()
    );

    // 2. Pre-processing (§2.1): decompose logged queries into examples,
    //    extract instructions from documents, profile the schema.
    let knowledge = bundle.build_knowledge();
    let stats = knowledge.stats();
    println!(
        "knowledge set: {} examples, {} instructions, {} schema elements, {} intents\n",
        stats.examples, stats.instructions, stats.schema_elements, stats.intents
    );
    let index = KnowledgeIndex::build(knowledge);

    // 3. The model. In a deployment this is GPT-4o; here it is the
    //    deterministic oracle whose output quality depends on the
    //    knowledge the pipeline retrieves (see DESIGN.md).
    let mut registry = TaskRegistry::new();
    for t in &bundle.tasks {
        registry.register(t.clone());
    }
    // The stochastic benchmark-noise channels are off here — the
    // quickstart demonstrates the pipeline mechanics, not the evaluation
    // statistics (see `genedit-bench` for those).
    let oracle = OracleModel::with_config(
        registry,
        OracleConfig {
            noise_rate: 0.0,
            pseudo_drift_probability: 0.0,
            drift_probability: 0.0,
            canonical_form_penalty: 0.0,
            ..Default::default()
        },
    );
    let pipeline = GenEditPipeline::new(&oracle);

    // 4. Ask the paper's running-example question.
    let task = bundle
        .tasks
        .iter()
        .find(|t| t.task_id == "sports-c00")
        .unwrap();
    println!("Q: {}\n", task.question);
    let result = pipeline.generate(&task.question, &index, &bundle.db, &[]);

    println!("reformulated: {}", result.reformulated);
    println!("intents:      {:?}", result.intents);
    println!(
        "retrieved:    {} examples, {} instructions, {} schema elements",
        result.used_examples.len(),
        result.used_instructions.len(),
        result.used_schema.len()
    );
    if let Some(plan) = &result.plan {
        println!("plan:         {} steps", plan.len());
    }
    println!("attempts:     {}\n", result.attempts);

    let sql = result.sql.expect("pipeline produced SQL");
    println!("SQL:\n{sql}\n");

    // 5. Execute it and show the answer.
    let rs = execute_sql(&bundle.db, &sql).expect("generated SQL runs");
    println!("{}", rs.to_table_string());

    let (correct, _) = genedit::bird::score_prediction(&bundle.db, &task.gold_sql, Some(&sql));
    println!("matches the gold answer: {correct}");

    // 6. Where did the time go? Every generation carries a span trace;
    //    aggregate it into a per-operator breakdown.
    println!("\noperator breakdown:");
    let breakdown = genedit::telemetry::operator_breakdown([&result.trace]);
    for (name, stats) in &breakdown {
        println!(
            "  {:<26} {:>2} call(s) {:>8.3} ms total  {} llm call(s)",
            name, stats.count, stats.total_ms, stats.llm_calls
        );
    }
}
