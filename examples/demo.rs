//! The paper's §6 demo script, end to end:
//!
//! 1. take natural-language queries and generate SQL;
//! 2. identify issues and provide feedback through the Feedback Solver,
//!    iterating until the regeneration is satisfactory;
//! 3. submit, run regression on golden queries, review in the knowledge
//!    library;
//! 4. accept the changes and validate that previously-incorrect queries
//!    now return correct results.
//!
//! Run: `cargo run --release --example demo`

use genedit::bird::{score_prediction, DomainBundle, HEALTH};
use genedit::core::{
    sme, submit_edits, FeedbackSession, GenEditPipeline, GoldenQuery, KnowledgeIndex,
    SubmissionResult,
};
use genedit::knowledge::Edit;
use genedit::llm::{OracleConfig, OracleModel, TaskRegistry};

fn main() {
    let bundle = DomainBundle::build(&HEALTH, (16, 7, 3), 42);
    let mut registry = TaskRegistry::new();
    for t in &bundle.tasks {
        registry.register(t.clone());
    }
    let oracle = OracleModel::with_config(
        registry,
        OracleConfig {
            noise_rate: 0.0,
            pseudo_drift_probability: 0.0,
            drift_probability: 0.0,
            canonical_form_penalty: 0.0,
            ..Default::default()
        },
    );
    let pipeline = GenEditPipeline::new(&oracle);

    // Deployment missing the in-network ("our") convention.
    let mut deployed = bundle.build_knowledge();
    let term = bundle.spec.our_term;
    let doomed: Vec<_> = deployed
        .instructions()
        .iter()
        .filter(|i| i.retrieval_text().contains(term))
        .map(|i| i.id)
        .collect();
    for id in doomed {
        deployed.apply(Edit::DeleteInstruction { id }).unwrap();
    }
    let doomed: Vec<_> = deployed
        .examples()
        .iter()
        .filter(|e| e.retrieval_text().contains(term))
        .map(|e| e.id)
        .collect();
    for id in doomed {
        deployed.apply(Edit::DeleteExample { id }).unwrap();
    }

    // Step 1 — generate SQL for a few questions, note the failures.
    println!("== Step 1: generate ==");
    let index = KnowledgeIndex::build(deployed.clone());
    let mut failing = Vec::new();
    for task in bundle.tasks.iter().take(8) {
        let r = pipeline.generate(&task.question, &index, &bundle.db, &[]);
        let (ok, _) = score_prediction(&bundle.db, &task.gold_sql, r.sql.as_deref());
        println!("  [{}] {}", if ok { "ok  " } else { "FAIL" }, task.question);
        if !ok {
            failing.push(task);
        }
    }
    assert!(!failing.is_empty(), "demo expects at least one failure");

    // Step 2 — feedback through the solver, iterating to satisfaction.
    println!("\n== Step 2: feedback ==");
    let task = failing[0];
    let mut session = FeedbackSession::open(&pipeline, &bundle.db, &deployed, &task.question);
    let feedback = sme::feedback_for(task, session.latest.sql.as_deref())
        .expect("SME can articulate the term failure");
    println!("  analyst: {feedback}");
    let n = session.submit_feedback(&feedback);
    println!("  {n} edits recommended; staging all and regenerating");
    session.stage_all();
    session.regenerate();
    let (ok, _) = score_prediction(&bundle.db, &task.gold_sql, session.latest.sql.as_deref());
    println!("  regenerated query correct: {ok}");

    // Step 3 — submit: regression on golden queries + human review.
    println!("\n== Step 3: submit, regression, review ==");
    let golden: Vec<GoldenQuery> = bundle
        .tasks
        .iter()
        .take(6)
        .map(|t| GoldenQuery {
            question: t.question.clone(),
            gold_sql: t.gold_sql.clone(),
        })
        .collect();
    let staging = session.into_staged();
    let result = submit_edits(
        &pipeline,
        &bundle.db,
        &mut deployed,
        staging,
        &golden,
        |o| {
            println!(
                "  regression: {} → {} correct of {}, {} regressions → {}",
                o.before_correct,
                o.after_correct,
                o.total,
                o.regressions.len(),
                if o.passed() { "PASS" } else { "FAIL" }
            );
            true
        },
        "demo merge",
    )
    .unwrap();
    assert!(matches!(result, SubmissionResult::Merged { .. }));
    println!("  merged; knowledge library now shows:");
    for logged in deployed.log().iter().rev().take(2) {
        println!("    #{} {}", logged.seq, logged.edit.summary());
    }

    // Step 4 — close the loop: the previously-incorrect queries pass.
    println!("\n== Step 4: validate ==");
    let index = KnowledgeIndex::build(deployed.clone());
    for task in &failing {
        let r = pipeline.generate(&task.question, &index, &bundle.db, &[]);
        let (ok, _) = score_prediction(&bundle.db, &task.gold_sql, r.sql.as_deref());
        println!("  [{}] {}", if ok { "ok  " } else { "FAIL" }, task.question);
    }
}
