//! The Knowledge Set Library walkthrough (§4.2.2, Fig. 4): browsing the
//! knowledge set with provenance, making direct expert edits, auditing
//! the history, and reverting to a checkpoint.
//!
//! Run: `cargo run --release --example knowledge_library`

use genedit::bird::{DomainBundle, RETAIL};
use genedit::knowledge::{Edit, FragmentKind, SourceRef, SqlFragment};

fn main() {
    let bundle = DomainBundle::build(&RETAIL, (8, 4, 2), 42);
    let mut ks = bundle.build_knowledge();

    println!("=== Knowledge Set Library — {} ===\n", bundle.db.name);

    // Browse by intent, with provenance (Fig. 4 shows feedback entries
    // ordered by timestamp; here we show the underlying records).
    for intent in ks.intents() {
        println!("intent `{}` — {}", intent.key, intent.description);
        let examples: Vec<_> = ks.examples_for_intent(&intent.key).collect();
        let instructions: Vec<_> = ks.instructions_for_intent(&intent.key).collect();
        println!(
            "  {} examples, {} instructions",
            examples.len(),
            instructions.len()
        );
        if let Some(e) = examples.first() {
            println!(
                "  e.g. example {} [{}] from {:?}:",
                e.id, e.fragment.kind, e.provenance.source
            );
            println!("       {}", e.fragment.pseudo_sql());
        }
        if let Some(i) = instructions.first() {
            println!(
                "  e.g. instruction {} from {:?}:",
                i.id, i.provenance.source
            );
            println!("       {}", i.text);
        }
        println!();
    }

    // Expert direct edit ("Experts may also directly edit the knowledge
    // set within the library outside of the context of a query").
    let checkpoint = ks.checkpoint("before expert session");
    println!("checkpoint {checkpoint} recorded: 'before expert session'\n");

    ks.apply(Edit::InsertInstruction {
        intent: Some(RETAIL.performance_intent()),
        text: "Holiday quarter (Q4) figures include gift-card float; exclude it when \
               comparing to other quarters"
            .into(),
        sql_hint: None,
        term: None,
        source: SourceRef::Manual,
    })
    .unwrap();
    ks.apply(Edit::InsertExample {
        intent: Some(RETAIL.performance_intent()),
        description: "net sales excluding gift-card float".into(),
        fragment: SqlFragment::new(
            FragmentKind::TermDefinition,
            "SUM(SALES_AMT) - SUM(CASE WHEN SEGMENT = 'giftcard' THEN SALES_AMT ELSE 0 END)",
            "main",
        ),
        term: Some("NETSALES".into()),
        source: SourceRef::Manual,
    })
    .unwrap();
    println!("applied 2 direct edits; audit log tail:");
    for logged in ks.log().iter().rev().take(3) {
        println!(
            "  #{:<3} tick {:<4} {}",
            logged.seq,
            logged.tick,
            logged.edit.summary()
        );
    }

    // Full visibility for reversion: the library can move between
    // checkpoints.
    println!("\nstats after edits: {:?}", ks.stats());
    ks.revert_to(checkpoint).unwrap();
    println!("reverted to checkpoint {checkpoint}: {:?}", ks.stats());

    // The log replays to an identical state — the event-sourcing property
    // behind "systematic learning from prior feedback".
    let replayed =
        genedit::knowledge::KnowledgeSet::from_log(ks.log().iter().map(|l| l.edit.clone()))
            .unwrap();
    println!(
        "\nreplaying the audit log reproduces the state: {}",
        ks.content_eq(&replayed)
    );
}
