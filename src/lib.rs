//! # genedit — enterprise Text-to-SQL with continuous improvement
//!
//! Facade crate re-exporting the GenEdit reproduction's public API
//! (CIDR 2025; see the repository README and DESIGN.md).
//!
//! * [`sql`] — in-memory SQL engine (parser, executor, EX comparison),
//! * [`retrieval`] — deterministic embeddings and top-k search,
//! * [`knowledge`] — the decomposed, versioned knowledge set,
//! * [`llm`] — the model interface and the deterministic oracle,
//! * [`bird`] — the synthetic BIRD-like benchmark,
//! * [`core`] — the GenEdit pipeline, baselines, ablations, and the
//!   feedback/regression loop,
//! * [`serve`] — the concurrent serving runtime: admission control,
//!   per-tenant fair scheduling, and epoch-keyed caching,
//! * [`telemetry`] — span traces, metrics, and JSON/JSONL exporters
//!   recorded by every pipeline run.
//!
//! ```
//! use genedit::bird::{DomainBundle, SPORTS};
//! use genedit::core::{GenEditPipeline, KnowledgeIndex};
//! use genedit::llm::{OracleConfig, OracleModel, TaskRegistry};
//!
//! // A seeded enterprise domain and its pre-processed knowledge set.
//! let bundle = DomainBundle::build(&SPORTS, (8, 2, 1), 42);
//! let index = KnowledgeIndex::build(bundle.build_knowledge());
//!
//! // The oracle stands in for GPT-4o (noise channels off for the doctest).
//! let mut registry = TaskRegistry::new();
//! for t in &bundle.tasks {
//!     registry.register(t.clone());
//! }
//! let oracle = OracleModel::with_config(
//!     registry,
//!     OracleConfig {
//!         noise_rate: 0.0,
//!         pseudo_drift_probability: 0.0,
//!         drift_probability: 0.0,
//!         canonical_form_penalty: 0.0,
//!         ..Default::default()
//!     },
//! );
//!
//! // Generate SQL for a benchmark question and check it against gold.
//! let pipeline = GenEditPipeline::new(&oracle);
//! let task = &bundle.tasks[0];
//! let result = pipeline.generate(&task.question, &index, &bundle.db, &[]);
//! let (correct, _) =
//!     genedit::bird::score_prediction(&bundle.db, &task.gold_sql, result.sql.as_deref());
//! assert!(correct);
//! ```

pub use genedit_bird as bird;
pub use genedit_core as core;
pub use genedit_knowledge as knowledge;
pub use genedit_llm as llm;
pub use genedit_retrieval as retrieval;
pub use genedit_serve as serve;
pub use genedit_sql as sql;
pub use genedit_telemetry as telemetry;
