//! SQL-engine conformance against the paper's Appendix-A query shape and
//! hand-computed answers over the generated data.

use genedit::bird::{generate_database, SPORTS};
use genedit::sql::{execute_sql, Value};

#[test]
fn appendix_a_query_runs_on_generated_data() {
    let db = generate_database(&SPORTS, 42);
    // The paper's Appendix-A structure, adapted to the generated schema
    // (FIN_MONTH/VIEW_MONTH are DATE, ownership flag column renamed).
    let sql = r#"
    WITH
    FINANCIALS AS (
      SELECT ORG_NAME,
        SUM(CASE WHEN TO_CHAR(FIN_MONTH, 'YYYY"Q"Q') = '2023Q1' THEN REVENUE ELSE 0 END) AS REVENUE_2023Q1,
        SUM(CASE WHEN TO_CHAR(FIN_MONTH, 'YYYY"Q"Q') = '2023Q2' THEN REVENUE ELSE 0 END) AS REVENUE_2023Q2
      FROM SPORTS_FINANCIALS
      WHERE TO_CHAR(FIN_MONTH, 'YYYY"Q"Q') IN ('2023Q1', '2023Q2')
        AND COUNTRY = 'Canada'
        AND OWNERSHIP_FLAG = 'COC'
      GROUP BY ORG_NAME
    ),
    VIEWERSHIP AS (
      SELECT ORG_NAME,
        SUM(CASE WHEN TO_CHAR(VIEW_MONTH, 'YYYY"Q"Q') = '2023Q1' THEN VIEWS ELSE 0 END) AS VIEWS_2023Q1,
        SUM(CASE WHEN TO_CHAR(VIEW_MONTH, 'YYYY"Q"Q') = '2023Q2' THEN VIEWS ELSE 0 END) AS VIEWS_2023Q2
      FROM SPORTS_VIEWERSHIP
      WHERE TO_CHAR(VIEW_MONTH, 'YYYY"Q"Q') IN ('2023Q1', '2023Q2')
        AND COUNTRY = 'Canada'
        AND OWNERSHIP_FLAG = 'COC'
      GROUP BY ORG_NAME
    ),
    CHANGE_IN_REVENUE AS (
      SELECT
        f.ORG_NAME,
        CAST(f.REVENUE_2023Q2 AS FLOAT) / NULLIF(v.VIEWS_2023Q2, 0) AS RPV,
        CAST(f.REVENUE_2023Q1 AS FLOAT) / NULLIF(v.VIEWS_2023Q1, 0) AS PRIOR_QTR_RPV,
        (CAST(f.REVENUE_2023Q2 AS FLOAT) / NULLIF(v.VIEWS_2023Q2, 0) -
         CAST(f.REVENUE_2023Q1 AS FLOAT) / NULLIF(v.VIEWS_2023Q1, 0)) AS RPV_CHANGE,
        ROW_NUMBER() OVER (ORDER BY (-1 * (
          CAST(f.REVENUE_2023Q2 AS FLOAT) / NULLIF(v.VIEWS_2023Q2, 0) -
          CAST(f.REVENUE_2023Q1 AS FLOAT) / NULLIF(v.VIEWS_2023Q1, 0)))) AS SPORT_RANK,
        ROW_NUMBER() OVER (ORDER BY (-1 * (
          CAST(f.REVENUE_2023Q2 AS FLOAT) / NULLIF(v.VIEWS_2023Q2, 0) -
          CAST(f.REVENUE_2023Q1 AS FLOAT) / NULLIF(v.VIEWS_2023Q1, 0))) DESC) AS WORST_SPORT_RANK
      FROM FINANCIALS f
      JOIN VIEWERSHIP v ON f.ORG_NAME = v.ORG_NAME
    )
    SELECT SPORT_RANK, ORG_NAME, RPV, PRIOR_QTR_RPV, RPV_CHANGE
    FROM CHANGE_IN_REVENUE
    WHERE SPORT_RANK <= 5 OR WORST_SPORT_RANK <= 5
    ORDER BY SPORT_RANK
    "#;
    let rs = execute_sql(&db, sql).expect("Appendix-A query executes");
    assert!(!rs.rows.is_empty());
    assert_eq!(rs.columns.len(), 5);
    // Ranks are positive and ascending in the output.
    let ranks: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    let mut sorted = ranks.clone();
    sorted.sort();
    assert_eq!(ranks, sorted);
    assert!(ranks[0] >= 1);
    // RPV ratios are small positive floats (revenue per viewer).
    for row in &rs.rows {
        if let Value::Float(rpv) = &row[2] {
            assert!(*rpv > 0.0 && *rpv < 1.0, "implausible RPV {rpv}");
        }
    }
}

#[test]
fn quarter_pivot_is_consistent_with_direct_filtering() {
    // SUM(CASE WHEN quarter THEN x ELSE 0) over the year must equal the
    // direct SUM over that quarter.
    let db = generate_database(&SPORTS, 42);
    let pivot = execute_sql(
        &db,
        "SELECT SUM(CASE WHEN TO_CHAR(FIN_MONTH, 'YYYY\"Q\"Q') = '2023Q2' THEN REVENUE ELSE 0 END) \
         FROM SPORTS_FINANCIALS",
    )
    .unwrap();
    let direct = execute_sql(
        &db,
        "SELECT SUM(REVENUE) FROM SPORTS_FINANCIALS WHERE TO_CHAR(FIN_MONTH, 'YYYY\"Q\"Q') = '2023Q2'",
    )
    .unwrap();
    assert!(pivot.ex_equal(&direct));
}

#[test]
fn left_join_antijoin_equals_not_in() {
    let db = generate_database(&SPORTS, 42);
    let left_join = execute_sql(
        &db,
        "SELECT e.ORG_NAME FROM SPORTS_ORGS e \
         LEFT JOIN SPORTS_VIEWERSHIP v ON e.ORG_NAME = v.ORG_NAME \
         WHERE v.VIEWS IS NULL ORDER BY e.ORG_NAME",
    )
    .unwrap();
    let not_in = execute_sql(
        &db,
        "SELECT ORG_NAME FROM SPORTS_ORGS \
         WHERE ORG_NAME NOT IN (SELECT ORG_NAME FROM SPORTS_VIEWERSHIP) ORDER BY ORG_NAME",
    )
    .unwrap();
    assert!(left_join.ex_equal(&not_in));
    assert!(!left_join.rows.is_empty());
}

#[test]
fn window_rank_agrees_with_order_limit() {
    let db = generate_database(&SPORTS, 42);
    let via_window = execute_sql(
        &db,
        "WITH T AS (SELECT ORG_NAME, SUM(REVENUE) AS R FROM SPORTS_FINANCIALS GROUP BY ORG_NAME), \
         RANKED AS (SELECT ORG_NAME, R, ROW_NUMBER() OVER (ORDER BY R DESC, ORG_NAME) AS RNK FROM T) \
         SELECT ORG_NAME, R FROM RANKED WHERE RNK <= 5 ORDER BY RNK",
    )
    .unwrap();
    let via_limit = execute_sql(
        &db,
        "SELECT ORG_NAME, SUM(REVENUE) AS R FROM SPORTS_FINANCIALS \
         GROUP BY ORG_NAME ORDER BY R DESC, ORG_NAME LIMIT 5",
    )
    .unwrap();
    assert!(via_window.ex_equal(&via_limit));
}

#[test]
fn aggregates_respect_flag_partition() {
    // SUM(all) == SUM(COC) + SUM(EXT) — the partition behind the "our"
    // corruption's observability.
    let db = generate_database(&SPORTS, 42);
    let total = execute_sql(&db, "SELECT SUM(REVENUE) FROM SPORTS_FINANCIALS").unwrap();
    let parts = execute_sql(
        &db,
        "SELECT (SELECT SUM(REVENUE) FROM SPORTS_FINANCIALS WHERE OWNERSHIP_FLAG = 'COC') + \
                (SELECT SUM(REVENUE) FROM SPORTS_FINANCIALS WHERE OWNERSHIP_FLAG = 'EXT')",
    )
    .unwrap();
    assert!(total.ex_equal(&parts));
}

#[test]
fn union_of_flag_slices_recovers_entities() {
    let db = generate_database(&SPORTS, 42);
    let all = execute_sql(&db, "SELECT ORG_NAME FROM SPORTS_ORGS").unwrap();
    let union = execute_sql(
        &db,
        "SELECT ORG_NAME FROM SPORTS_ORGS WHERE OWNERSHIP_FLAG = 'COC' \
         UNION SELECT ORG_NAME FROM SPORTS_ORGS WHERE OWNERSHIP_FLAG = 'EXT'",
    )
    .unwrap();
    assert!(all.ex_equal(&union));
}
