//! Integration tests spanning the whole stack: workload generation →
//! knowledge pre-processing → pipeline → SQL engine → EX evaluation.

use genedit::bird::Workload;
use genedit::core::{paper_baselines, Ablation, Harness};
use genedit::llm::Difficulty;

#[test]
fn small_suite_end_to_end() {
    let w = Workload::small(7);
    let harness = Harness::new(&w);
    let report = harness.run_genedit(Ablation::None);
    assert_eq!(report.count(None), w.task_count());
    // The full pipeline must do clearly better than chance on this suite.
    assert!(report.ex(None) > 40.0, "EX {}", report.ex(None));
}

#[test]
fn ablations_do_not_beat_full_pipeline_materially() {
    // On the standard suite the full pipeline is at least as good as every
    // ablation (tiny hash-luck inversions up to 2 points are tolerated).
    let w = Workload::standard(42);
    let harness = Harness::new(&w);
    let full = harness.run_genedit(Ablation::None).ex(None);
    for ablation in [
        Ablation::WithoutSchemaLinking,
        Ablation::WithoutInstructions,
        Ablation::WithoutExamples,
        Ablation::WithoutPseudoSql,
        Ablation::WithoutDecomposition,
    ] {
        let ex = harness.run_genedit(ablation).ex(None);
        assert!(
            ex <= full + 2.0,
            "{} ({ex}) materially beats full ({full})",
            ablation.label()
        );
    }
}

#[test]
fn instructions_ablation_is_the_largest_drop() {
    // Table 2's headline: instructions provide the most benefit.
    let w = Workload::standard(42);
    let harness = Harness::new(&w);
    let full = harness.run_genedit(Ablation::None).ex(None);
    let wo_instructions = harness.run_genedit(Ablation::WithoutInstructions).ex(None);
    for ablation in [
        Ablation::WithoutSchemaLinking,
        Ablation::WithoutExamples,
        Ablation::WithoutPseudoSql,
        Ablation::WithoutDecomposition,
    ] {
        let ex = harness.run_genedit(ablation).ex(None);
        assert!(
            full - wo_instructions >= full - ex,
            "{} dropped more than w/o Instructions",
            ablation.label()
        );
    }
}

#[test]
fn genedit_wins_the_simple_stratum() {
    // Table 1's headline for GenEdit: the best Simple column.
    let w = Workload::standard(42);
    let harness = Harness::new(&w);
    let genedit = harness
        .run_genedit(Ablation::None)
        .ex(Some(Difficulty::Simple));
    for profile in paper_baselines() {
        let ex = harness.run_baseline(&profile).ex(Some(Difficulty::Simple));
        assert!(
            genedit >= ex,
            "{} beats GenEdit on Simple ({ex} > {genedit})",
            profile.name
        );
    }
}

#[test]
fn pipeline_is_deterministic_across_harnesses() {
    let w = Workload::small(42);
    let a = Harness::new(&w).run_genedit(Ablation::None);
    let b = Harness::new(&w).run_genedit(Ablation::None);
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
        assert_eq!(x.task_id, y.task_id);
        assert_eq!(x.correct, y.correct);
        assert_eq!(x.attempts, y.attempts);
    }
}

#[test]
fn all_methods_produce_executable_sql_mostly() {
    // Self-correction should keep outright execution failures rare.
    let w = Workload::small(42);
    let harness = Harness::new(&w);
    for profile in paper_baselines() {
        let report = harness.run_baseline(&profile);
        let exec_failures = report
            .outcomes
            .iter()
            .filter(|o| {
                o.note
                    .as_deref()
                    .map(|n| n.contains("error"))
                    .unwrap_or(false)
            })
            .count();
        assert!(
            exec_failures * 3 <= report.outcomes.len(),
            "{}: {exec_failures}/{} executions failed outright",
            profile.name,
            report.outcomes.len()
        );
    }
}

#[test]
fn model_usage_reflects_pipeline_structure() {
    let w = Workload::small(42);
    let harness = Harness::new(&w);
    harness.run_genedit(Ablation::None);
    let usage = harness.model_usage();
    let n = w.task_count();
    // One reformulation, intent, linking, and plan call per task minimum.
    assert!(usage.calls["reformulate"] >= n);
    assert!(usage.calls["intent"] >= n);
    assert!(usage.calls["schema-linking"] >= n);
    assert!(usage.calls["plan"] >= n);
    // SQL calls include candidates and retries.
    assert!(usage.calls["sql"] >= n);
}
