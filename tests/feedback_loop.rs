//! Integration tests for the continuous-improvement lifecycle (§4):
//! degrade → fail → feedback → recommend → stage → regenerate → submit →
//! regression → merge → previously-failing query passes; plus revert.

use genedit::bird::{score_prediction, DomainBundle, LOGISTICS};
use genedit::core::{
    sme, submit_edits, FeedbackSession, GenEditPipeline, GoldenQuery, KnowledgeIndex,
    SubmissionResult,
};
use genedit::knowledge::{Edit, KnowledgeSet};
use genedit::llm::{OracleConfig, OracleModel, TaskRegistry};

fn setup() -> (DomainBundle, KnowledgeSet, OracleModel) {
    let bundle = DomainBundle::build(&LOGISTICS, (16, 7, 2), 42);
    let ks = bundle.build_knowledge();
    let mut reg = TaskRegistry::new();
    for t in &bundle.tasks {
        reg.register(t.clone());
    }
    let oracle = OracleModel::with_config(
        reg,
        OracleConfig {
            noise_rate: 0.0,
            pseudo_drift_probability: 0.0,
            drift_probability: 0.0,
            canonical_form_penalty: 0.0,
            ..Default::default()
        },
    );
    (bundle, ks, oracle)
}

fn degrade(ks: &KnowledgeSet, term: &str) -> KnowledgeSet {
    let mut ks = ks.clone();
    let ids: Vec<_> = ks
        .instructions()
        .iter()
        .filter(|i| {
            i.retrieval_text()
                .to_uppercase()
                .contains(&term.to_uppercase())
        })
        .map(|i| i.id)
        .collect();
    for id in ids {
        ks.apply(Edit::DeleteInstruction { id }).unwrap();
    }
    let ids: Vec<_> = ks
        .examples()
        .iter()
        .filter(|e| {
            e.retrieval_text()
                .to_uppercase()
                .contains(&term.to_uppercase())
        })
        .map(|e| e.id)
        .collect();
    for id in ids {
        ks.apply(Edit::DeleteExample { id }).unwrap();
    }
    ks
}

#[test]
fn full_lifecycle_fixes_failing_query_durably() {
    let (bundle, ks, oracle) = setup();
    let mut deployed = degrade(&ks, bundle.spec.our_term);
    let pipeline = GenEditPipeline::new(&oracle);

    let task = bundle
        .tasks
        .iter()
        .find(|t| t.task_id.ends_with("s05"))
        .expect("the 'our hubs' task");

    // 1. It fails.
    let index = KnowledgeIndex::build(deployed.clone());
    let initial = pipeline.generate(&task.question, &index, &bundle.db, &[]);
    let (ok, _) = score_prediction(&bundle.db, &task.gold_sql, initial.sql.as_deref());
    assert!(!ok);

    // 2. Feedback session: SME feedback → recommendations → stage →
    //    regenerate until satisfied.
    let mut session = FeedbackSession::open(&pipeline, &bundle.db, &deployed, &task.question);
    let feedback = sme::feedback_for(task, session.latest.sql.as_deref()).expect("articulable");
    assert!(session.submit_feedback(&feedback) > 0);
    session.stage_all();
    session.regenerate();
    let (ok, _) = score_prediction(&bundle.db, &task.gold_sql, session.latest.sql.as_deref());
    assert!(ok, "staged edits should fix the regeneration");

    // 3. Submit through regression + approval.
    let golden: Vec<GoldenQuery> = bundle
        .tasks
        .iter()
        .take(5)
        .map(|t| GoldenQuery {
            question: t.question.clone(),
            gold_sql: t.gold_sql.clone(),
        })
        .collect();
    let staging = session.into_staged();
    let result = submit_edits(
        &pipeline,
        &bundle.db,
        &mut deployed,
        staging,
        &golden,
        |o| o.passed(),
        "lifecycle merge",
    )
    .unwrap();
    let SubmissionResult::Merged {
        checkpoint,
        outcome,
    } = result
    else {
        panic!("expected merge, got {result:?}");
    };
    assert!(outcome.passed());

    // 4. The fix is durable: a fresh generation against the deployed set
    //    passes — "improving future generations" (§1).
    let index = KnowledgeIndex::build(deployed.clone());
    let after = pipeline.generate(&task.question, &index, &bundle.db, &[]);
    let (ok, _) = score_prediction(&bundle.db, &task.gold_sql, after.sql.as_deref());
    assert!(ok, "merged knowledge must fix future generations");

    // 5. Revert restores the failing behaviour (checkpointed history, §4.2.2).
    deployed.revert_to(checkpoint).unwrap();
    let index = KnowledgeIndex::build(deployed.clone());
    let reverted = pipeline.generate(&task.question, &index, &bundle.db, &[]);
    let (ok, _) = score_prediction(&bundle.db, &task.gold_sql, reverted.sql.as_deref());
    assert!(!ok, "revert must restore pre-merge behaviour");
}

#[test]
fn merged_edits_carry_feedback_provenance() {
    let (bundle, ks, oracle) = setup();
    let mut deployed = degrade(&ks, bundle.spec.our_term);
    let pipeline = GenEditPipeline::new(&oracle);
    let task = bundle
        .tasks
        .iter()
        .find(|t| t.task_id.ends_with("s05"))
        .unwrap();
    let mut session = FeedbackSession::open(&pipeline, &bundle.db, &deployed, &task.question);
    let feedback = sme::feedback_for(task, session.latest.sql.as_deref()).unwrap();
    session.submit_feedback(&feedback);
    session.stage_all();
    let staging = session.into_staged();
    submit_edits(
        &pipeline,
        &bundle.db,
        &mut deployed,
        staging,
        &[],
        |_| true,
        "prov",
    )
    .unwrap();
    // The inserted instruction's provenance names the feedback round.
    assert!(deployed.instructions().iter().any(|i| matches!(
        i.provenance.source,
        genedit::knowledge::SourceRef::Feedback { feedback_id: 1 }
    )));
}

#[test]
fn feedback_without_staging_changes_nothing() {
    let (bundle, ks, oracle) = setup();
    let deployed = degrade(&ks, bundle.spec.our_term);
    let pipeline = GenEditPipeline::new(&oracle);
    let task = bundle
        .tasks
        .iter()
        .find(|t| t.task_id.ends_with("s05"))
        .unwrap();

    let mut session = FeedbackSession::open(&pipeline, &bundle.db, &deployed, &task.question);
    let before = session.latest.sql.clone();
    session.submit_feedback("only our own hubs please — SELF operated");
    // No staging: regeneration sees the same knowledge.
    session.regenerate();
    assert_eq!(session.latest.sql, before);
}

#[test]
fn iterative_feedback_with_partial_staging() {
    let (bundle, ks, oracle) = setup();
    let deployed = degrade(&ks, bundle.spec.our_term);
    let pipeline = GenEditPipeline::new(&oracle);
    let task = bundle
        .tasks
        .iter()
        .find(|t| t.task_id.ends_with("s05"))
        .unwrap();

    let mut session = FeedbackSession::open(&pipeline, &bundle.db, &deployed, &task.question);
    let feedback = sme::feedback_for(task, session.latest.sql.as_deref()).unwrap();
    let n = session.submit_feedback(&feedback);
    assert!(n >= 1);
    // Stage only the first recommendation, regenerate, iterate.
    session.stage(0).unwrap();
    session.regenerate();
    // Whether or not one edit sufficed, a second round must be possible.
    let n2 = session.submit_feedback(&feedback);
    assert!(n2 >= 1);
    session.stage_all();
    session.regenerate();
    let (ok, _) = score_prediction(&bundle.db, &task.gold_sql, session.latest.sql.as_deref());
    assert!(
        ok,
        "after staging everything across rounds the query is fixed"
    );
    assert_eq!(session.rounds().len(), 2);
}

#[test]
fn regression_gate_blocks_destructive_feedback() {
    let (bundle, ks, oracle) = setup();
    let mut deployed = ks;
    let pipeline = GenEditPipeline::new(&oracle);

    // Adversarial staged edits: delete all instructions.
    let mut staging = genedit::knowledge::StagingArea::new();
    for ins in deployed.instructions() {
        staging.stage(Edit::DeleteInstruction { id: ins.id });
    }
    for ex in deployed.examples() {
        if ex.retrieval_text().contains(bundle.spec.our_term) {
            staging.stage(Edit::DeleteExample { id: ex.id });
        }
    }
    let golden: Vec<GoldenQuery> = bundle
        .tasks
        .iter()
        .take(8)
        .map(|t| GoldenQuery {
            question: t.question.clone(),
            gold_sql: t.gold_sql.clone(),
        })
        .collect();
    let before = deployed.clone();
    let result = submit_edits(
        &pipeline,
        &bundle.db,
        &mut deployed,
        staging,
        &golden,
        |_| true,
        "destructive",
    )
    .unwrap();
    assert!(matches!(result, SubmissionResult::RegressionFailed(_)));
    assert!(deployed.content_eq(&before));
}
