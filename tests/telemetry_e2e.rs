//! End-to-end telemetry: run the pipeline over a workload, export every
//! trace as JSONL, read it back, and confirm the round-tripped traces
//! agree with the live ones and with the harness's operator breakdown.

use genedit::bird::Workload;
use genedit::core::{Ablation, GenEditPipeline, Harness, PipelineConfig};
use genedit::telemetry::{export, names, operator_breakdown, MetricsRegistry, Trace};
use std::sync::Arc;

#[test]
fn traces_survive_a_jsonl_round_trip() {
    let w = Workload::small(42);
    let harness = Harness::new(&w);
    let indexes = harness.build_indexes(true);

    // Generate over every task, collecting live traces.
    let metrics = Arc::new(MetricsRegistry::default());
    let oracle = genedit::llm::OracleModel::new(w.registry());
    let pipeline = GenEditPipeline::with_config(&oracle, PipelineConfig::default())
        .with_metrics(Arc::clone(&metrics));
    let mut traces: Vec<Trace> = Vec::new();
    for bundle in &w.domains {
        let index = &indexes[&bundle.db.name];
        for task in &bundle.tasks {
            let result = pipeline.generate(&task.question, index, &bundle.db, &[]);
            assert_eq!(result.warnings, result.trace.warnings);
            traces.push(result.trace);
        }
    }
    assert_eq!(traces.len(), w.task_count());

    // JSONL round-trip preserves every span, attribute, and duration.
    let jsonl = export::traces_to_jsonl(&traces);
    assert_eq!(jsonl.lines().count(), traces.len());
    let back = export::traces_from_jsonl(&jsonl).expect("valid JSONL");
    assert_eq!(back.len(), traces.len());
    for (live, rt) in traces.iter().zip(&back) {
        assert_eq!(live, rt);
    }

    // The breakdown computed from round-tripped traces matches the live
    // one, and the registry agrees on call counts.
    let live_breakdown = operator_breakdown(&traces);
    let rt_breakdown = operator_breakdown(&back);
    assert_eq!(live_breakdown, rt_breakdown);
    let snapshot = metrics.snapshot();
    for (name, stats) in &live_breakdown {
        assert_eq!(
            snapshot.counters[&format!("span.{name}.count")],
            stats.count as u64,
            "registry disagrees on {name}"
        );
    }
}

#[test]
fn harness_report_matches_trace_aggregation() {
    let w = Workload::small(7);
    let harness = Harness::new(&w);
    let report = harness.run_genedit(Ablation::None);

    // Every enabled operator has a row, with its LLM calls attributed.
    for name in [
        names::REFORMULATE,
        names::INTENT,
        names::EXAMPLES,
        names::INSTRUCTIONS,
        names::SCHEMA_LINKING,
        names::PLAN,
    ] {
        let stats = &report.operators[name];
        assert_eq!(stats.count, w.task_count(), "{name}");
    }
    // Counters in the shared registry line up with the breakdown.
    let snapshot = harness.metrics().snapshot();
    assert_eq!(
        snapshot.counters[&format!("span.{}.count", names::GENERATE)],
        w.task_count() as u64
    );
    // The report itself serializes and deserializes.
    let json = genedit::telemetry::export::to_jsonl(std::slice::from_ref(&report));
    let back: Vec<genedit::bird::EvalReport> =
        genedit::telemetry::export::from_jsonl(&json).expect("report round-trips");
    assert_eq!(back[0].method, report.method);
    assert_eq!(back[0].operators, report.operators);
    assert_eq!(back[0].outcomes.len(), report.outcomes.len());
}

#[test]
fn regenerated_session_traces_accumulate() {
    // FeedbackSession records one trace per feedback round.
    let w = Workload::small(42);
    let bundle = &w.domains[0];
    let oracle = genedit::llm::OracleModel::new(w.registry());
    let pipeline = GenEditPipeline::new(&oracle);
    let ks = bundle.build_knowledge();
    let mut session = genedit::core::FeedbackSession::open(
        &pipeline,
        &bundle.db,
        &ks,
        bundle.tasks[0].question.clone(),
    );
    session.submit_feedback("the totals look wrong, only count our organizations");
    session.submit_feedback("still wrong: use the ownership flag");
    assert_eq!(session.feedback_traces().len(), 2);
    for trace in session.feedback_traces() {
        assert_eq!(trace.count(names::FEEDBACK_TARGETS), 1);
        assert_eq!(trace.count(names::FEEDBACK_EDITS), 1);
    }
    // The generation trace of the latest result also survives a JSON
    // round-trip through the single-trace exporters.
    let json = export::trace_to_json_pretty(&session.latest.trace);
    let back = export::trace_from_json(&json).expect("valid trace JSON");
    assert_eq!(back, session.latest.trace);
}
