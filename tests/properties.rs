//! Cross-crate property tests: knowledge-set event sourcing, staging
//! algebra, registry lookup robustness, and oracle determinism.

use genedit::knowledge::{
    Edit, FragmentKind, Intent, KnowledgeSet, SourceRef, SqlFragment, StagingArea,
};
use genedit::llm::{
    CompletionRequest, Corruption, Difficulty, LanguageModel, OracleModel, Prompt, TaskKind,
    TaskKnowledge, TaskRegistry, TermRequirement,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Edit generation
// ---------------------------------------------------------------------

fn arb_fragment() -> impl Strategy<Value = SqlFragment> {
    let kinds = prop_oneof![
        Just(FragmentKind::Where),
        Just(FragmentKind::Projection),
        Just(FragmentKind::From),
        Just(FragmentKind::OrderBy),
        Just(FragmentKind::TermDefinition),
    ];
    (kinds, "[A-Z =<>0-9']{1,24}", "[a-z]{1,8}")
        .prop_map(|(kind, sql, scope)| SqlFragment::new(kind, sql, scope))
}

/// Edits that are always applicable regardless of current state.
fn arb_safe_edit() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (
            "[a-z ]{1,30}",
            arb_fragment(),
            prop::option::of("[A-Z]{2,6}")
        )
            .prop_map(|(description, fragment, term)| Edit::InsertExample {
                intent: None,
                description,
                fragment,
                term,
                source: SourceRef::Manual,
            }),
        ("[a-z ]{1,40}", prop::option::of("[a-z =]{1,16}")).prop_map(|(text, sql_hint)| {
            Edit::InsertInstruction {
                intent: None,
                text,
                sql_hint,
                term: None,
                source: SourceRef::Manual,
            }
        }),
        ("[a-z]{2,10}").prop_map(
            |t| Edit::AddSchemaElement(genedit::knowledge::SchemaElement {
                table: t,
                column: None,
                description: String::new(),
                top_values: vec![],
                intents: vec![],
            })
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Event sourcing: replaying any applied edit log from empty yields
    /// content-identical state.
    #[test]
    fn replay_reproduces_any_state(edits in prop::collection::vec(arb_safe_edit(), 0..30)) {
        let mut ks = KnowledgeSet::new();
        for e in &edits {
            ks.apply(e.clone()).unwrap();
        }
        let replayed = KnowledgeSet::from_log(ks.log().iter().map(|l| l.edit.clone())).unwrap();
        prop_assert!(ks.content_eq(&replayed));
    }

    /// Checkpoint/revert identity: checkpoint, apply anything, revert —
    /// back to byte-identical content.
    #[test]
    fn revert_is_exact(
        before in prop::collection::vec(arb_safe_edit(), 0..10),
        after in prop::collection::vec(arb_safe_edit(), 1..10),
    ) {
        let mut ks = KnowledgeSet::new();
        for e in before {
            ks.apply(e).unwrap();
        }
        let snapshot = ks.clone();
        let cp = ks.checkpoint("prop");
        for e in after {
            ks.apply(e).unwrap();
        }
        ks.revert_to(cp).unwrap();
        prop_assert!(ks.content_eq(&snapshot));
        prop_assert_eq!(ks.log().len(), snapshot.log().len());
    }

    /// Staging algebra: materialize ≡ clone-then-commit (without the
    /// checkpoint bookkeeping).
    #[test]
    fn materialize_equals_commit(
        base in prop::collection::vec(arb_safe_edit(), 0..8),
        staged in prop::collection::vec(arb_safe_edit(), 0..8),
    ) {
        let mut deployed = KnowledgeSet::new();
        for e in base {
            deployed.apply(e).unwrap();
        }
        let mut area = StagingArea::new();
        for e in &staged {
            area.stage(e.clone());
        }
        let materialized = area.materialize(&deployed).unwrap();
        let mut committed = deployed.clone();
        area.commit(&mut committed, "prop").unwrap();
        prop_assert!(materialized.content_eq(&committed));
        // And the deployed set was untouched by materialize.
        prop_assert_eq!(deployed.examples().len() + staged.len() >= materialized.examples().len(), true);
    }

    /// Registry lookup survives canonical reformulation of any question.
    #[test]
    fn registry_lookup_survives_reformulation(
        words in prop::collection::vec("[a-z]{3,9}", 3..8),
        region in "[A-Z][a-z]{3,7}",
    ) {
        let question = format!("Identify the {} in {}", words.join(" "), region);
        let mut reg = TaskRegistry::new();
        reg.register(TaskKnowledge {
            task_id: "prop-1".into(),
            question: question.clone(),
            db_name: "db".into(),
            gold_sql: "SELECT 1".into(),
            intent: "i".into(),
            difficulty: Difficulty::Simple,
            required_terms: vec![],
            required_tables: vec![],
            required_columns: vec![],
            evidence: vec![],
            distractor_table: None,
            distractor_column: None,
        });
        // A decoy with mostly different content words.
        reg.register(TaskKnowledge {
            task_id: "prop-2".into(),
            question: "Total viewership per region last year".into(),
            db_name: "db".into(),
            gold_sql: "SELECT 2".into(),
            intent: "i".into(),
            difficulty: Difficulty::Simple,
            required_terms: vec![],
            required_tables: vec![],
            required_columns: vec![],
            evidence: vec![],
            distractor_table: None,
            distractor_column: None,
        });
        let reformulated = format!("Show me the {} in {}", words.join(" "), region);
        let hit = reg.lookup(&reformulated);
        prop_assert!(hit.is_some(), "lookup failed for {reformulated:?}");
        prop_assert_eq!(&hit.unwrap().task_id, "prop-1");
    }

    /// Oracle determinism: identical prompt + seed → identical response,
    /// for arbitrary prompt knowledge subsets.
    #[test]
    fn oracle_is_deterministic(
        cover_term in any::<bool>(),
        with_schema in any::<bool>(),
        seed in 0u64..4,
    ) {
        let mut reg = TaskRegistry::new();
        reg.register(TaskKnowledge {
            task_id: "det-1".into(),
            question: "total revenue of our orgs in Canada".into(),
            db_name: "db".into(),
            gold_sql: "SELECT SUM(REVENUE) FROM FIN WHERE COUNTRY = 'Canada' AND FLAG = 'COC'"
                .into(),
            intent: "fin".into(),
            difficulty: Difficulty::Simple,
            required_terms: vec![TermRequirement {
                term: "COC".into(),
                corruption: Corruption::DropWhereConjunct { marker: "FLAG".into() },
            }],
            required_tables: vec!["FIN".into()],
            required_columns: vec![],
            evidence: vec![],
            distractor_table: None,
            distractor_column: None,
        });
        // Stochastic channels off: the property isolates determinism and
        // the term-coverage contract.
        let oracle = OracleModel::with_config(
            reg,
            genedit::llm::OracleConfig {
                noise_rate: 0.0,
                canonical_form_penalty: 0.0,
                overload_cap: 0.0,
                ..Default::default()
            },
        );
        let mut prompt = Prompt::new(TaskKind::SqlGeneration, "total revenue of our orgs in Canada");
        if cover_term {
            prompt.instructions.push(genedit::llm::PromptInstruction {
                text: "COC marks our organizations".into(),
                sql_hint: None,
                term: Some("COC".into()),
            });
        }
        if with_schema {
            prompt.schema.push(genedit::llm::PromptSchemaElement {
                table: "FIN".into(),
                column: None,
                description: String::new(),
                top_values: vec![],
            });
        }
        let a = oracle
            .complete(&CompletionRequest::with_seed(prompt.clone(), seed))
            .unwrap();
        let b = oracle
            .complete(&CompletionRequest::with_seed(prompt, seed))
            .unwrap();
        prop_assert_eq!(a.clone(), b);
        // The causal contract: term coverage controls the flag filter.
        let sql = a.as_sql().unwrap();
        if cover_term {
            prop_assert!(sql.contains("FLAG"), "{sql}");
        } else {
            prop_assert!(!sql.contains("FLAG"), "{sql}");
        }
    }

    /// Intent grouping is a partition: examples-for-intent never returns
    /// an example of a different intent, and summing over intents + None
    /// covers everything exactly once.
    #[test]
    fn intent_grouping_is_a_partition(
        n_fin in 0usize..6,
        n_view in 0usize..6,
        n_none in 0usize..6,
    ) {
        let mut ks = KnowledgeSet::new();
        ks.apply(Edit::AddIntent(Intent::new("fin", "f", ""))).unwrap();
        ks.apply(Edit::AddIntent(Intent::new("view", "v", ""))).unwrap();
        for (intent, count) in [(Some("fin"), n_fin), (Some("view"), n_view), (None, n_none)] {
            for i in 0..count {
                ks.apply(Edit::InsertExample {
                    intent: intent.map(String::from),
                    description: format!("ex {i}"),
                    fragment: SqlFragment::new(FragmentKind::Where, "WHERE 1 = 1", "main"),
                    term: None,
                    source: SourceRef::Manual,
                })
                .unwrap();
            }
        }
        prop_assert_eq!(ks.examples_for_intent("fin").count(), n_fin);
        prop_assert_eq!(ks.examples_for_intent("view").count(), n_view);
        prop_assert_eq!(ks.examples().len(), n_fin + n_view + n_none);
    }
}
