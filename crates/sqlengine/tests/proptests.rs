//! Property-based tests for the SQL engine.
//!
//! Invariants:
//! * print ∘ parse ∘ print is a fixpoint (rendering is canonical),
//! * parse ∘ print preserves the AST for generated expression trees,
//! * executor: LIMIT bounds row count, WHERE yields a subset, ORDER BY
//!   output is sorted, DISTINCT output is duplicate-free, and EX equality
//!   is reflexive/symmetric under row shuffling.

use genedit_sql::ast::*;
use genedit_sql::value::{DataType, Value};
use genedit_sql::{execute_sql, parse_statement, Column, Database, Table};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// AST generation
// ---------------------------------------------------------------------

fn arb_ident() -> impl Strategy<Value = String> {
    // Includes a reserved word to exercise identifier quoting.
    prop_oneof![
        "[a-z][a-z0-9_]{0,8}",
        Just("order".to_string()),
        Just("COL_A".to_string()),
    ]
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        Just(Literal::Null),
        any::<i32>().prop_map(|v| Literal::Integer(v as i64)),
        (-1000.0f64..1000.0).prop_map(Literal::Float),
        "[ -~]{0,12}".prop_map(Literal::String),
        any::<bool>().prop_map(Literal::Boolean),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_literal().prop_map(Expr::Literal),
        arb_ident().prop_map(|name| Expr::Column { table: None, name }),
        (arb_ident(), arb_ident()).prop_map(|(t, name)| Expr::Column {
            table: Some(t),
            name
        }),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop()).prop_map(|(l, r, op)| Expr::Binary {
                left: Box::new(l),
                op,
                right: Box::new(r),
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(e)
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e)
            }),
            (inner.clone(), any::<bool>()).prop_map(|(e, n)| Expr::IsNull {
                expr: Box::new(e),
                negated: n
            }),
            (
                inner.clone(),
                prop::collection::vec(inner.clone(), 1..3),
                any::<bool>()
            )
                .prop_map(|(e, list, n)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated: n
                }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, n)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated: n,
                }
            ),
            (
                inner.clone(),
                prop::collection::vec((inner.clone(), inner.clone()), 1..3)
            )
                .prop_map(|(els, branches)| Expr::Case {
                    operand: None,
                    branches,
                    else_expr: Some(Box::new(els)),
                }),
            inner.clone().prop_map(|e| Expr::Cast {
                expr: Box::new(e),
                ty: DataType::Float
            }),
            (arb_agg_name(), inner.clone())
                .prop_map(|(name, a)| Expr::Function(FunctionCall::new(name, vec![a]))),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
        Just(BinaryOp::Eq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::GtEq),
        Just(BinaryOp::And),
        Just(BinaryOp::Or),
        Just(BinaryOp::Concat),
    ]
}

fn arb_agg_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("SUM".to_string()),
        Just("AVG".to_string()),
        Just("MIN".to_string()),
        Just("MAX".to_string()),
        Just("COALESCE".to_string()),
        Just("ABS".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse(print(e)) stabilizes after one round for generated trees:
    /// printing a generated AST, parsing, and printing again yields the
    /// same text, and the parsed AST is a fixpoint of parse∘print.
    /// (Structural equality with the *generated* tree is not required —
    /// the parser canonicalizes, e.g. folding `-` into numeric literals.)
    #[test]
    fn expr_round_trip(e in arb_expr()) {
        let sql = format!("SELECT {e}");
        let Statement::Query(q1) = parse_statement(&sql)
            .unwrap_or_else(|err| panic!("{sql}: {err}"));
        let printed1 = q1.to_string();
        let Statement::Query(q2) = parse_statement(&printed1)
            .unwrap_or_else(|err| panic!("{printed1}: {err}"));
        prop_assert_eq!(&q1, &q2, "parse(print(parse(x))) != parse(x) for {}", sql);
        prop_assert_eq!(printed1, q2.to_string());
    }

    /// Rendering is canonical: print(parse(print(q))) == print(q).
    #[test]
    fn print_is_fixpoint(e in arb_expr()) {
        let sql = format!("SELECT {e} AS out_col FROM some_table WHERE {e} ORDER BY 1 LIMIT 7");
        let Statement::Query(q1) = parse_statement(&sql).unwrap();
        let printed = q1.to_string();
        let Statement::Query(q2) = parse_statement(&printed).unwrap();
        prop_assert_eq!(&printed, &q2.to_string());
        prop_assert_eq!(q1, q2);
    }
}

// ---------------------------------------------------------------------
// Executor invariants on random data
// ---------------------------------------------------------------------

fn build_db(rows: &[(i64, i64, u8)]) -> Database {
    let mut db = Database::new("prop");
    let mut t = Table::new(
        "T",
        vec![
            Column::new("A", DataType::Integer),
            Column::new("B", DataType::Integer),
            Column::new("C", DataType::Text),
        ],
    );
    for (a, b, c) in rows {
        let c_text = format!("g{}", c % 4);
        t.push_row(vec![Value::Integer(*a), Value::Integer(*b), c_text.into()])
            .unwrap();
    }
    db.add_table(t).unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn limit_bounds_rows(
        rows in prop::collection::vec((-50i64..50, -50i64..50, any::<u8>()), 0..40),
        limit in 0u64..10,
    ) {
        let db = build_db(&rows);
        let rs = execute_sql(&db, &format!("SELECT A FROM T LIMIT {limit}")).unwrap();
        prop_assert!(rs.rows.len() <= limit as usize);
        prop_assert!(rs.rows.len() <= rows.len());
    }

    #[test]
    fn where_is_subset(
        rows in prop::collection::vec((-50i64..50, -50i64..50, any::<u8>()), 0..40),
        threshold in -60i64..60,
    ) {
        let db = build_db(&rows);
        let all = execute_sql(&db, "SELECT A, B FROM T").unwrap();
        let filtered =
            execute_sql(&db, &format!("SELECT A, B FROM T WHERE A > {threshold}")).unwrap();
        prop_assert!(filtered.rows.len() <= all.rows.len());
        // Every surviving row satisfies the predicate.
        for row in &filtered.rows {
            prop_assert!(row[0].as_i64().unwrap() > threshold);
        }
        // Complement check: filtered + complement = all.
        let complement =
            execute_sql(&db, &format!("SELECT A, B FROM T WHERE NOT A > {threshold}")).unwrap();
        prop_assert_eq!(filtered.rows.len() + complement.rows.len(), all.rows.len());
    }

    #[test]
    fn order_by_is_sorted(
        rows in prop::collection::vec((-50i64..50, -50i64..50, any::<u8>()), 0..40),
    ) {
        let db = build_db(&rows);
        let rs = execute_sql(&db, "SELECT A FROM T ORDER BY A").unwrap();
        let vals: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let mut sorted = vals.clone();
        sorted.sort();
        prop_assert_eq!(vals, sorted);

        let rs = execute_sql(&db, "SELECT A FROM T ORDER BY A DESC").unwrap();
        let vals: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        prop_assert_eq!(vals, sorted);
    }

    #[test]
    fn distinct_is_duplicate_free(
        rows in prop::collection::vec((-5i64..5, -50i64..50, any::<u8>()), 0..40),
    ) {
        let db = build_db(&rows);
        let rs = execute_sql(&db, "SELECT DISTINCT A FROM T").unwrap();
        let mut vals: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let n = vals.len();
        vals.sort();
        vals.dedup();
        prop_assert_eq!(vals.len(), n);
    }

    #[test]
    fn group_by_partitions_rows(
        rows in prop::collection::vec((-50i64..50, -50i64..50, any::<u8>()), 1..40),
    ) {
        let db = build_db(&rows);
        let rs = execute_sql(&db, "SELECT C, COUNT(*) AS n FROM T GROUP BY C").unwrap();
        let total: i64 = rs.rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
        prop_assert_eq!(total as usize, rows.len());
        // SUM over groups equals SUM over all.
        let rs_g = execute_sql(&db, "SELECT C, SUM(B) AS s FROM T GROUP BY C").unwrap();
        let group_sum: i64 = rs_g.rows.iter().map(|r| r[1].as_i64().unwrap_or(0)).sum();
        let all_sum: i64 = rows.iter().map(|(_, b, _)| *b).sum();
        prop_assert_eq!(group_sum, all_sum);
    }

    #[test]
    fn ex_equality_invariant_under_shuffle(
        rows in prop::collection::vec((-50i64..50, -50i64..50, any::<u8>()), 0..30),
        seed in any::<u64>(),
    ) {
        let db = build_db(&rows);
        let a = execute_sql(&db, "SELECT A, B FROM T").unwrap();
        let mut b = a.clone();
        // Deterministic shuffle.
        let mut s = seed;
        for i in (1..b.rows.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            b.rows.swap(i, j);
        }
        prop_assert!(a.ex_equal(&b));
        prop_assert!(b.ex_equal(&a));
        // Dropping a row breaks equality.
        if !b.rows.is_empty() {
            b.rows.pop();
            prop_assert!(!a.ex_equal(&b));
        }
    }

    #[test]
    fn union_all_counts_add(
        rows in prop::collection::vec((-50i64..50, -50i64..50, any::<u8>()), 0..30),
    ) {
        let db = build_db(&rows);
        let rs = execute_sql(&db, "SELECT A FROM T UNION ALL SELECT A FROM T").unwrap();
        prop_assert_eq!(rs.rows.len(), rows.len() * 2);
        let rs = execute_sql(&db, "SELECT A FROM T EXCEPT SELECT A FROM T").unwrap();
        prop_assert!(rs.rows.is_empty());
        let rs = execute_sql(&db, "SELECT A FROM T INTERSECT SELECT A FROM T").unwrap();
        let distinct = execute_sql(&db, "SELECT DISTINCT A FROM T").unwrap();
        prop_assert_eq!(rs.rows.len(), distinct.rows.len());
    }

    #[test]
    fn window_row_number_is_permutation(
        rows in prop::collection::vec((-50i64..50, -50i64..50, any::<u8>()), 1..30),
    ) {
        let db = build_db(&rows);
        let rs = execute_sql(
            &db,
            "SELECT ROW_NUMBER() OVER (ORDER BY A, B) AS rn FROM T",
        )
        .unwrap();
        let mut vals: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        vals.sort();
        let expected: Vec<i64> = (1..=rows.len() as i64).collect();
        prop_assert_eq!(vals, expected);
    }
}
