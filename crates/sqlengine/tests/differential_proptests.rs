//! Differential property tests: vectorized engine vs the row-at-a-time
//! reference interpreter.
//!
//! Every generated query is executed twice — once through the default
//! vectorized engine and once through [`execute_sql_reference`] — and
//! the two must agree byte-for-byte: identical column names, identical
//! rows in identical order, with float values compared by exact debug
//! rendering (so `-0.0`, `NaN` and integer-valued floats cannot be
//! silently coerced). Queries that error must error on *both* engines
//! (messages may differ: the vectorized path batches evaluation, so
//! which row's error surfaces first is not pinned).
//!
//! The generated data is deliberately hostile: NULLs in every column,
//! text values containing literal `|` and `|t:` sequences (which used
//! to collide under string-joined group keys), floats including `-0.0`,
//! and join keys with duplicates and NULLs on both sides.

use genedit_sql::value::{DataType, Value};
use genedit_sql::{execute_sql, execute_sql_reference, Column, Database, Table};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Hostile data generation
// ---------------------------------------------------------------------

fn arb_opt_int() -> impl Strategy<Value = Option<i64>> {
    prop_oneof![
        Just(None),
        (-20i64..20).prop_map(Some),
        (-20i64..20).prop_map(Some),
        (-20i64..20).prop_map(Some),
    ]
}

fn arb_opt_float() -> impl Strategy<Value = Option<f64>> {
    prop_oneof![
        Just(None),
        Just(Some(0.0)),
        Just(Some(-0.0)),
        (-50.0f64..50.0).prop_map(Some),
        (-50.0f64..50.0).prop_map(Some),
    ]
}

/// Text values, biased towards strings that collide under `"|"`-joined
/// composite keys.
fn arb_opt_text() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        Just(None),
        prop_oneof![
            Just("a".to_string()),
            Just("a|b".to_string()),
            Just("a|t:b".to_string()),
            Just("b|t:c".to_string()),
            Just("t:a".to_string()),
            Just("g1".to_string()),
            Just("g2".to_string()),
            Just(String::new()),
        ]
        .prop_map(Some),
    ]
}

type TRow = (Option<i64>, Option<f64>, Option<String>, Option<i64>);
type URow = (Option<i64>, Option<String>, Option<i64>);

fn opt_int(v: Option<i64>) -> Value {
    v.map(Value::Integer).unwrap_or(Value::Null)
}

fn opt_float(v: Option<f64>) -> Value {
    v.map(Value::Float).unwrap_or(Value::Null)
}

fn opt_text(v: Option<String>) -> Value {
    v.map(Value::Text).unwrap_or(Value::Null)
}

fn build_db(t_rows: &[TRow], u_rows: &[URow]) -> Database {
    let mut db = Database::new("diff");
    let mut t = Table::new(
        "T",
        vec![
            Column::new("A", DataType::Integer),
            Column::new("B", DataType::Float),
            Column::new("C", DataType::Text),
            Column::new("K", DataType::Integer),
        ],
    );
    for (a, b, c, k) in t_rows {
        t.push_row(vec![
            opt_int(*a),
            opt_float(*b),
            opt_text(c.clone()),
            opt_int(*k),
        ])
        .expect("push T row");
    }
    db.add_table(t).expect("add T");
    let mut u = Table::new(
        "U",
        vec![
            Column::new("K", DataType::Integer),
            Column::new("D", DataType::Text),
            Column::new("E", DataType::Integer),
        ],
    );
    for (k, d, e) in u_rows {
        u.push_row(vec![opt_int(*k), opt_text(d.clone()), opt_int(*e)])
            .expect("push U row");
    }
    db.add_table(u).expect("add U");
    db
}

// ---------------------------------------------------------------------
// Query generation (rendered as SQL strings)
// ---------------------------------------------------------------------

fn arb_predicate() -> impl Strategy<Value = String> {
    prop_oneof![
        (-10i64..10).prop_map(|n| format!("A > {n}")),
        (-10i64..10).prop_map(|n| format!("A + K >= {n}")),
        (-40.0f64..40.0).prop_map(|f| format!("B < {f:.1}")),
        Just("C = 'a|b'".to_string()),
        Just("C IS NULL".to_string()),
        Just("C IS NOT NULL".to_string()),
        Just("A IN (1, 2, NULL)".to_string()),
        Just("A NOT IN (3, 4)".to_string()),
        (-10i64..0, 0i64..10).prop_map(|(lo, hi)| format!("A BETWEEN {lo} AND {hi}")),
        Just("C LIKE 'a%'".to_string()),
        Just("CASE WHEN A > 0 THEN 1 ELSE 0 END = 1".to_string()),
        (-10i64..10).prop_map(|n| format!("A > {n} AND B < 10.0")),
        (-10i64..10).prop_map(|n| format!("A = {n} OR C = 'a|t:b'")),
        Just("NOT A > 0".to_string()),
    ]
}

fn arb_plain_items() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("A, B, C".to_string()),
        Just("*".to_string()),
        Just("A + K AS s, C".to_string()),
        Just("A * 2 AS d, B".to_string()),
        Just("C, A".to_string()),
    ]
}

fn arb_agg_items() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("C, COUNT(*) AS n".to_string()),
        Just("C, SUM(A) AS s".to_string()),
        Just("C, AVG(B) AS m, MIN(A) AS lo".to_string()),
        Just("C, K, COUNT(*) AS n, MAX(B) AS hi".to_string()),
        Just("C, COUNT(DISTINCT A) AS n".to_string()),
    ]
}

fn arb_tail() -> impl Strategy<Value = String> {
    // ORDER BY / LIMIT suffix. Ordering by position 1 keeps the suffix
    // valid for every projection shape.
    prop_oneof![
        Just(String::new()),
        Just(" ORDER BY 1".to_string()),
        Just(" ORDER BY 1 DESC".to_string()),
        (1u64..8).prop_map(|n| format!(" ORDER BY 1 LIMIT {n}")),
        (0u64..8).prop_map(|n| format!(" LIMIT {n}")),
    ]
}

/// Single-table queries over T.
fn arb_single_table_query() -> impl Strategy<Value = String> {
    (
        (any::<bool>(), arb_plain_items(), arb_agg_items()),
        (
            proptest::option::of(arb_predicate()),
            prop_oneof![
                Just(None),
                Just(Some("C".to_string())),
                Just(Some("C, K".to_string())),
            ],
            any::<bool>(),
            arb_tail(),
        ),
    )
        .prop_map(|((distinct, plain, agg), (pred, group, having, tail))| {
            let mut sql = String::from("SELECT ");
            if distinct && group.is_none() {
                sql.push_str("DISTINCT ");
            }
            match &group {
                Some(g) => {
                    // Keep the projection consistent with the grouping.
                    if g == "C" {
                        sql.push_str(&agg);
                    } else {
                        sql.push_str("C, K, COUNT(*) AS n, SUM(A) AS s");
                    }
                }
                None => sql.push_str(&plain),
            }
            sql.push_str(" FROM T");
            if let Some(p) = &pred {
                sql.push_str(&format!(" WHERE {p}"));
            }
            if let Some(g) = &group {
                sql.push_str(&format!(" GROUP BY {g}"));
                if having {
                    sql.push_str(" HAVING COUNT(*) > 1");
                }
            }
            sql.push_str(&tail);
            sql
        })
}

/// Join queries over T and U.
fn arb_join_query() -> impl Strategy<Value = String> {
    (
        prop_oneof![Just("JOIN"), Just("LEFT JOIN"),],
        prop_oneof![
            // Equi-joins take the hash path; the rest fall back to the
            // nested loop.
            Just("T.K = U.K"),
            Just("T.A = U.E"),
            Just("T.K = U.K AND T.A = U.E"),
            Just("T.C = U.D"),
            Just("T.K < U.E"),
            Just("T.K = U.K AND T.A > 0"),
        ],
        prop_oneof![Just("T.A, U.E"), Just("T.C, U.D"), Just("T.K, U.K, T.A"),],
        proptest::option::of(arb_predicate()),
        any::<bool>(),
        arb_tail(),
    )
        .prop_map(|(kind, on, items, pred, grouped, tail)| {
            let mut sql = if grouped {
                format!("SELECT T.C, COUNT(*) AS n FROM T {kind} U ON {on}")
            } else {
                format!("SELECT {items} FROM T {kind} U ON {on}")
            };
            if let Some(p) = &pred {
                sql.push_str(&format!(" WHERE {p}"));
            }
            if grouped {
                sql.push_str(" GROUP BY T.C");
            }
            sql.push_str(&tail);
            sql
        })
}

/// Set operations and window functions.
fn arb_compound_query() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("SELECT C FROM T UNION SELECT D FROM U".to_string()),
        Just("SELECT C FROM T UNION ALL SELECT D FROM U ORDER BY 1".to_string()),
        Just("SELECT C FROM T EXCEPT SELECT D FROM U".to_string()),
        Just("SELECT C FROM T INTERSECT SELECT D FROM U".to_string()),
        Just("SELECT C, ROW_NUMBER() OVER (PARTITION BY C ORDER BY A) AS rn FROM T ORDER BY 1, 2"
            .to_string()),
        Just("SELECT C, RANK() OVER (ORDER BY A) AS r FROM T ORDER BY 1, 2".to_string()),
        Just("SELECT C, SUM(A) OVER (PARTITION BY C) AS s FROM T ORDER BY 1, 2".to_string()),
        Just(
            "WITH big AS (SELECT A, C FROM T WHERE A > 0) SELECT C, COUNT(*) AS n FROM big GROUP BY C"
                .to_string()
        ),
        Just("SELECT A FROM T WHERE A IN (SELECT E FROM U)".to_string()),
        Just("SELECT A FROM T WHERE EXISTS (SELECT 1 FROM U WHERE U.K = T.K)".to_string()),
        Just("SELECT (SELECT MAX(E) FROM U) AS m, A FROM T".to_string()),
        Just("SELECT x.C, x.n FROM (SELECT C, COUNT(*) AS n FROM T GROUP BY C) x ORDER BY 1"
            .to_string()),
    ]
}

// ---------------------------------------------------------------------
// The differential oracle
// ---------------------------------------------------------------------

/// Exact rendering of a result set: column names plus every value's
/// debug form (distinguishes `Integer(2)` from `Float(2.0)`, preserves
/// `-0.0` and `NaN`).
fn render(rs: &genedit_sql::ResultSet) -> String {
    let mut out = format!("{:?}\n", rs.columns);
    for row in &rs.rows {
        out.push_str(&format!("{row:?}\n"));
    }
    out
}

fn check_differential(db: &Database, sql: &str) -> Result<(), TestCaseError> {
    let vectorized = execute_sql(db, sql);
    let reference = execute_sql_reference(db, sql);
    match (vectorized, reference) {
        (Ok(v), Ok(r)) => {
            prop_assert_eq!(render(&v), render(&r), "engines diverged on: {}", sql);
        }
        (Err(_), Err(_)) => {} // both fail: pass (messages may differ)
        (Ok(v), Err(e)) => {
            return Err(TestCaseError::fail(format!(
                "vectorized succeeded ({} rows) but reference failed ({e}) on: {sql}",
                v.rows.len()
            )));
        }
        (Err(e), Ok(r)) => {
            return Err(TestCaseError::fail(format!(
                "reference succeeded ({} rows) but vectorized failed ({e}) on: {sql}",
                r.rows.len()
            )));
        }
    }
    Ok(())
}

fn arb_t_rows() -> impl Strategy<Value = Vec<TRow>> {
    prop::collection::vec(
        (
            arb_opt_int(),
            arb_opt_float(),
            arb_opt_text(),
            arb_opt_int(),
        ),
        0..25,
    )
}

fn arb_u_rows() -> impl Strategy<Value = Vec<URow>> {
    prop::collection::vec((arb_opt_int(), arb_opt_text(), arb_opt_int()), 0..15)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn single_table_queries_agree(
        t_rows in arb_t_rows(),
        sql in arb_single_table_query(),
    ) {
        let db = build_db(&t_rows, &[]);
        check_differential(&db, &sql)?;
    }

    #[test]
    fn join_queries_agree(
        t_rows in arb_t_rows(),
        u_rows in arb_u_rows(),
        sql in arb_join_query(),
    ) {
        let db = build_db(&t_rows, &u_rows);
        check_differential(&db, &sql)?;
    }

    #[test]
    fn compound_queries_agree(
        t_rows in arb_t_rows(),
        u_rows in arb_u_rows(),
        sql in arb_compound_query(),
    ) {
        let db = build_db(&t_rows, &u_rows);
        check_differential(&db, &sql)?;
    }
}

// ---------------------------------------------------------------------
// Directed NULL-semantics checks at the batch layer
// ---------------------------------------------------------------------

#[test]
fn null_group_keys_form_one_group_on_both_engines() {
    let db = build_db(
        &[
            (Some(1), None, None, Some(1)),
            (Some(2), None, None, Some(1)),
            (Some(3), None, Some("a".into()), Some(1)),
        ],
        &[],
    );
    let sql = "SELECT C, COUNT(*) AS n FROM T GROUP BY C ORDER BY 2 DESC";
    let v = execute_sql(&db, sql).expect("vectorized");
    let r = execute_sql_reference(&db, sql).expect("reference");
    assert_eq!(render(&v), render(&r));
    // NULL keys group together: one group of 2, one of 1.
    assert_eq!(v.rows.len(), 2);
    assert_eq!(v.rows[0][1], Value::Integer(2));
}

#[test]
fn null_join_keys_never_match_on_both_engines() {
    let db = build_db(
        &[
            (None, None, Some("l".into()), None),
            (Some(1), None, None, Some(7)),
        ],
        &[
            (None, Some("r".into()), Some(9)),
            (Some(7), Some("m".into()), Some(9)),
        ],
    );
    for sql in [
        "SELECT T.A, U.E FROM T JOIN U ON T.K = U.K",
        "SELECT T.A, U.E FROM T LEFT JOIN U ON T.K = U.K ORDER BY 1",
    ] {
        let v = execute_sql(&db, sql).expect("vectorized");
        let r = execute_sql_reference(&db, sql).expect("reference");
        assert_eq!(render(&v), render(&r), "diverged on {sql}");
    }
    // Inner join: only the K=7 pair matches; the NULL keys pair with nothing.
    let v = execute_sql(&db, "SELECT T.A FROM T JOIN U ON T.K = U.K").expect("run");
    assert_eq!(v.rows.len(), 1);
    assert_eq!(v.rows[0][0], Value::Integer(1));
}

#[test]
fn pipe_bearing_group_keys_agree_between_engines() {
    // ("a|t:b", "c") and ("a", "b|t:c") used to land in the same group
    // under string-joined keys.
    let db = build_db(
        &[
            (Some(1), None, Some("a|t:b".into()), Some(1)),
            (Some(2), None, Some("a".into()), Some(2)),
        ],
        &[
            (Some(1), Some("c".into()), Some(1)),
            (Some(2), Some("b|t:c".into()), Some(2)),
        ],
    );
    let sql = "SELECT T.C, U.D, COUNT(*) AS n FROM T JOIN U ON T.K = U.K \
               GROUP BY T.C, U.D ORDER BY 3 DESC, 1";
    let v = execute_sql(&db, sql).expect("vectorized");
    let r = execute_sql_reference(&db, sql).expect("reference");
    assert_eq!(render(&v), render(&r));
    // Two distinct groups, not one collided group of 2.
    assert_eq!(v.rows.len(), 2);
    assert!(v.rows.iter().all(|row| row[2] == Value::Integer(1)));
}
