//! Error types for the SQL engine.
//!
//! The error taxonomy mirrors the two classes of generation failure the
//! GenEdit paper's self-correction loop distinguishes (§2.1, §3):
//! *syntactic* errors (lexing/parsing) and *semantic* errors (binding,
//! typing, runtime evaluation). [`EngineError::is_syntactic`] and
//! [`EngineError::is_semantic`] expose that split to the pipeline.

use std::fmt;

/// Any error produced while lexing, parsing, binding, or executing SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The input could not be tokenized (e.g. an unterminated string).
    Lex { message: String, offset: usize },
    /// The token stream did not form a valid statement.
    Parse { message: String, offset: usize },
    /// A name (table, column, alias, function) failed to resolve.
    Binding { message: String },
    /// A value had the wrong type for an operation.
    Type { message: String },
    /// A runtime failure during evaluation (e.g. division by zero when
    /// strict mode is enabled, malformed CAST input).
    Execution { message: String },
    /// A feature of SQL that this engine deliberately does not implement.
    Unsupported { message: String },
}

impl EngineError {
    pub fn lex(message: impl Into<String>, offset: usize) -> Self {
        EngineError::Lex {
            message: message.into(),
            offset,
        }
    }

    pub fn parse(message: impl Into<String>, offset: usize) -> Self {
        EngineError::Parse {
            message: message.into(),
            offset,
        }
    }

    pub fn binding(message: impl Into<String>) -> Self {
        EngineError::Binding {
            message: message.into(),
        }
    }

    pub fn typing(message: impl Into<String>) -> Self {
        EngineError::Type {
            message: message.into(),
        }
    }

    pub fn execution(message: impl Into<String>) -> Self {
        EngineError::Execution {
            message: message.into(),
        }
    }

    pub fn unsupported(message: impl Into<String>) -> Self {
        EngineError::Unsupported {
            message: message.into(),
        }
    }

    /// True when the error would be caught by a SQL parser alone — the
    /// "syntactic error" class of the paper's self-correction loop.
    pub fn is_syntactic(&self) -> bool {
        matches!(self, EngineError::Lex { .. } | EngineError::Parse { .. })
    }

    /// True when the query parsed but failed name resolution, typing, or
    /// execution — the "semantic error" class.
    pub fn is_semantic(&self) -> bool {
        !self.is_syntactic()
    }

    /// The human-readable message, without the error-class prefix.
    pub fn message(&self) -> &str {
        match self {
            EngineError::Lex { message, .. }
            | EngineError::Parse { message, .. }
            | EngineError::Binding { message }
            | EngineError::Type { message }
            | EngineError::Execution { message }
            | EngineError::Unsupported { message } => message,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Lex { message, offset } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            EngineError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            EngineError::Binding { message } => write!(f, "binding error: {message}"),
            EngineError::Type { message } => write!(f, "type error: {message}"),
            EngineError::Execution { message } => write!(f, "execution error: {message}"),
            EngineError::Unsupported { message } => write!(f, "unsupported: {message}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenience alias used across the engine.
pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syntactic_vs_semantic_split() {
        assert!(EngineError::lex("bad char", 3).is_syntactic());
        assert!(EngineError::parse("expected FROM", 10).is_syntactic());
        assert!(!EngineError::parse("expected FROM", 10).is_semantic());
        assert!(EngineError::binding("no such column X").is_semantic());
        assert!(EngineError::typing("cannot add TEXT").is_semantic());
        assert!(EngineError::execution("bad cast").is_semantic());
        assert!(EngineError::unsupported("RECURSIVE").is_semantic());
    }

    #[test]
    fn display_includes_offset_for_syntax_errors() {
        let e = EngineError::parse("expected FROM", 17);
        let s = e.to_string();
        assert!(s.contains("17"), "{s}");
        assert!(s.contains("expected FROM"), "{s}");
    }

    #[test]
    fn message_strips_prefix() {
        assert_eq!(
            EngineError::binding("no such table T").message(),
            "no such table T"
        );
    }
}
