//! Scalar function implementations.
//!
//! The set covers what enterprise analytics SQL in the paper's domain needs,
//! most notably `TO_CHAR` with quarter patterns (Appendix A) and the
//! NULL-guarding `NULLIF`/`COALESCE` the paper's example leans on.

use crate::error::{EngineError, EngineResult};
use crate::value::{render_float, Date, Value};

/// Names the executor treats as aggregates rather than scalars.
pub const AGGREGATE_FUNCTIONS: &[&str] = &["COUNT", "SUM", "AVG", "MIN", "MAX", "GROUP_CONCAT"];

/// Names valid in a window (`OVER`) context that are *not* aggregates.
pub const RANKING_FUNCTIONS: &[&str] = &[
    "ROW_NUMBER",
    "RANK",
    "DENSE_RANK",
    "NTILE",
    "LAG",
    "LEAD",
    "FIRST_VALUE",
    "LAST_VALUE",
];

pub fn is_aggregate(name: &str) -> bool {
    AGGREGATE_FUNCTIONS
        .iter()
        .any(|f| name.eq_ignore_ascii_case(f))
}

pub fn is_ranking(name: &str) -> bool {
    RANKING_FUNCTIONS
        .iter()
        .any(|f| name.eq_ignore_ascii_case(f))
}

/// Evaluate a scalar function over already-evaluated arguments.
pub fn eval_scalar(name: &str, args: &[Value]) -> EngineResult<Value> {
    let arity = |n: usize| -> EngineResult<()> {
        if args.len() != n {
            Err(EngineError::typing(format!(
                "{name} expects {n} argument(s), got {}",
                args.len()
            )))
        } else {
            Ok(())
        }
    };

    match name.to_ascii_uppercase().as_str() {
        "ABS" => {
            arity(1)?;
            numeric_unary(name, &args[0], |f| f.abs(), |i| i.checked_abs())
        }
        "SIGN" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                v => {
                    let f = v.as_f64().ok_or_else(|| non_numeric(name, v))?;
                    Ok(Value::Integer(if f > 0.0 {
                        1
                    } else if f < 0.0 {
                        -1
                    } else {
                        0
                    }))
                }
            }
        }
        "ROUND" => {
            if args.is_empty() || args.len() > 2 {
                return Err(EngineError::typing("ROUND expects 1 or 2 arguments"));
            }
            if args[0].is_null() {
                return Ok(Value::Null);
            }
            let f = args[0]
                .as_f64()
                .ok_or_else(|| non_numeric(name, &args[0]))?;
            let digits = if args.len() == 2 {
                if args[1].is_null() {
                    return Ok(Value::Null);
                }
                args[1]
                    .as_i64()
                    .ok_or_else(|| non_numeric(name, &args[1]))?
            } else {
                0
            };
            let factor = 10f64.powi(digits as i32);
            Ok(Value::Float((f * factor).round() / factor))
        }
        "FLOOR" => {
            arity(1)?;
            numeric_unary(name, &args[0], |f| f.floor(), Some)
        }
        "CEIL" | "CEILING" => {
            arity(1)?;
            numeric_unary(name, &args[0], |f| f.ceil(), Some)
        }
        "SQRT" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                v => {
                    let f = v.as_f64().ok_or_else(|| non_numeric(name, v))?;
                    if f < 0.0 {
                        Ok(Value::Null)
                    } else {
                        Ok(Value::Float(f.sqrt()))
                    }
                }
            }
        }
        "POWER" | "POW" => {
            arity(2)?;
            if args[0].is_null() || args[1].is_null() {
                return Ok(Value::Null);
            }
            let base = args[0]
                .as_f64()
                .ok_or_else(|| non_numeric(name, &args[0]))?;
            let exp = args[1]
                .as_f64()
                .ok_or_else(|| non_numeric(name, &args[1]))?;
            Ok(Value::Float(base.powf(exp)))
        }
        "MOD" => {
            arity(2)?;
            if args[0].is_null() || args[1].is_null() {
                return Ok(Value::Null);
            }
            match (&args[0], &args[1]) {
                (Value::Integer(a), Value::Integer(b)) => {
                    if *b == 0 {
                        Ok(Value::Null)
                    } else {
                        Ok(Value::Integer(a % b))
                    }
                }
                (a, b) => {
                    let x = a.as_f64().ok_or_else(|| non_numeric(name, a))?;
                    let y = b.as_f64().ok_or_else(|| non_numeric(name, b))?;
                    if y == 0.0 {
                        Ok(Value::Null)
                    } else {
                        Ok(Value::Float(x % y))
                    }
                }
            }
        }
        "UPPER" => {
            arity(1)?;
            text_unary(&args[0], |s| s.to_uppercase())
        }
        "LOWER" => {
            arity(1)?;
            text_unary(&args[0], |s| s.to_lowercase())
        }
        "LENGTH" | "LEN" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Integer(v.to_string().chars().count() as i64)),
            }
        }
        "TRIM" => {
            arity(1)?;
            text_unary(&args[0], |s| s.trim().to_string())
        }
        "LTRIM" => {
            arity(1)?;
            text_unary(&args[0], |s| s.trim_start().to_string())
        }
        "RTRIM" => {
            arity(1)?;
            text_unary(&args[0], |s| s.trim_end().to_string())
        }
        "REPLACE" => {
            arity(3)?;
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let s = args[0].to_string();
            let from = args[1].to_string();
            let to = args[2].to_string();
            Ok(Value::Text(if from.is_empty() {
                s
            } else {
                s.replace(&from, &to)
            }))
        }
        "SUBSTR" | "SUBSTRING" => {
            if args.len() < 2 || args.len() > 3 {
                return Err(EngineError::typing("SUBSTR expects 2 or 3 arguments"));
            }
            if args[0].is_null() || args[1].is_null() {
                return Ok(Value::Null);
            }
            let s: Vec<char> = args[0].to_string().chars().collect();
            // SQL is 1-based; 0 behaves like 1.
            let start = args[1]
                .as_i64()
                .ok_or_else(|| non_numeric(name, &args[1]))?;
            let start_idx = if start <= 1 { 0 } else { (start - 1) as usize };
            let len = if args.len() == 3 {
                if args[2].is_null() {
                    return Ok(Value::Null);
                }
                let l = args[2]
                    .as_i64()
                    .ok_or_else(|| non_numeric(name, &args[2]))?;
                if l < 0 {
                    0
                } else {
                    l as usize
                }
            } else {
                usize::MAX
            };
            let out: String = s.iter().skip(start_idx).take(len).collect();
            Ok(Value::Text(out))
        }
        "INSTR" => {
            arity(2)?;
            if args[0].is_null() || args[1].is_null() {
                return Ok(Value::Null);
            }
            let hay = args[0].to_string();
            let needle = args[1].to_string();
            // 1-based position in characters; 0 when absent.
            match hay.find(&needle) {
                Some(byte_pos) => {
                    let char_pos = hay[..byte_pos].chars().count() as i64 + 1;
                    Ok(Value::Integer(char_pos))
                }
                None => Ok(Value::Integer(0)),
            }
        }
        "CONCAT" => {
            let mut out = String::new();
            for a in args {
                if !a.is_null() {
                    out.push_str(&a.to_string());
                }
            }
            Ok(Value::Text(out))
        }
        "COALESCE" => {
            for a in args {
                if !a.is_null() {
                    return Ok(a.clone());
                }
            }
            Ok(Value::Null)
        }
        "NULLIF" => {
            arity(2)?;
            if !args[0].is_null() && args[0].sql_eq(&args[1]) {
                Ok(Value::Null)
            } else {
                Ok(args[0].clone())
            }
        }
        "IIF" | "IF" => {
            arity(3)?;
            match args[0].as_bool()? {
                Some(true) => Ok(args[1].clone()),
                _ => Ok(args[2].clone()),
            }
        }
        "TO_CHAR" => {
            if args.is_empty() || args.len() > 2 {
                return Err(EngineError::typing("TO_CHAR expects 1 or 2 arguments"));
            }
            if args[0].is_null() {
                return Ok(Value::Null);
            }
            if args.len() == 1 {
                return Ok(Value::Text(args[0].to_string()));
            }
            if args[1].is_null() {
                return Ok(Value::Null);
            }
            let pattern = args[1].to_string();
            match &args[0] {
                Value::Date(d) => Ok(Value::Text(d.format_pattern(&pattern)?)),
                Value::Text(s) => {
                    // Accept ISO date strings for convenience.
                    let d = Date::parse(s)?;
                    Ok(Value::Text(d.format_pattern(&pattern)?))
                }
                other => Err(EngineError::typing(format!(
                    "TO_CHAR with a pattern requires a DATE, got {other}"
                ))),
            }
        }
        "DATE" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Date(d) => Ok(Value::Date(*d)),
                Value::Text(s) => Ok(Value::Date(Date::parse(s)?)),
                other => Err(EngineError::typing(format!(
                    "cannot convert {other} to DATE"
                ))),
            }
        }
        "YEAR" => date_part(&args[0], name, args.len(), |d| d.year as i64),
        "MONTH" => date_part(&args[0], name, args.len(), |d| d.month as i64),
        "DAY" => date_part(&args[0], name, args.len(), |d| d.day as i64),
        "QUARTER" => date_part(&args[0], name, args.len(), |d| d.quarter() as i64),
        other => Err(EngineError::binding(format!("unknown function {other}"))),
    }
}

fn non_numeric(func: &str, v: &Value) -> EngineError {
    EngineError::typing(format!("{func} requires a numeric argument, got {v}"))
}

fn numeric_unary(
    name: &str,
    v: &Value,
    float_op: impl Fn(f64) -> f64,
    int_op: impl Fn(i64) -> Option<i64>,
) -> EngineResult<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Integer(i) => match int_op(*i) {
            Some(r) => Ok(Value::Integer(r)),
            None => Ok(Value::Float(float_op(*i as f64))),
        },
        Value::Float(f) => Ok(Value::Float(float_op(*f))),
        other => Err(non_numeric(name, other)),
    }
}

fn text_unary(v: &Value, op: impl Fn(&str) -> String) -> EngineResult<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        other => Ok(Value::Text(op(&other.to_string()))),
    }
}

fn date_part(
    v: &Value,
    name: &str,
    arity: usize,
    part: impl Fn(&Date) -> i64,
) -> EngineResult<Value> {
    if arity != 1 {
        return Err(EngineError::typing(format!("{name} expects 1 argument")));
    }
    match v {
        Value::Null => Ok(Value::Null),
        Value::Date(d) => Ok(Value::Integer(part(d))),
        Value::Text(s) => {
            let d = Date::parse(s)?;
            Ok(Value::Integer(part(&d)))
        }
        other => Err(EngineError::typing(format!(
            "{name} requires a DATE, got {other}"
        ))),
    }
}

/// SQL LIKE with `%` and `_` wildcards, case-sensitive, no escape syntax.
pub fn sql_like(text: &str, pattern: &str) -> bool {
    fn matches(t: &[char], p: &[char]) -> bool {
        match (t.first(), p.first()) {
            (_, None) => t.is_empty(),
            (_, Some('%')) => {
                // Try consuming zero or more characters.
                if matches(t, &p[1..]) {
                    return true;
                }
                !t.is_empty() && matches(&t[1..], p)
            }
            (None, Some(_)) => false,
            (Some(_), Some('_')) => matches(&t[1..], &p[1..]),
            (Some(tc), Some(pc)) => tc == pc && matches(&t[1..], &p[1..]),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    matches(&t, &p)
}

pub fn render_value_for_concat(v: &Value) -> String {
    match v {
        Value::Float(f) => render_float(*f),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(name: &str, args: Vec<Value>) -> Value {
        eval_scalar(name, &args).unwrap()
    }

    #[test]
    fn abs_and_sign() {
        assert_eq!(call("ABS", vec![Value::Integer(-5)]).as_i64(), Some(5));
        assert_eq!(call("ABS", vec![Value::Float(-2.5)]).as_f64(), Some(2.5));
        assert!(call("ABS", vec![Value::Null]).is_null());
        assert_eq!(call("SIGN", vec![Value::Integer(-5)]).as_i64(), Some(-1));
        assert_eq!(call("SIGN", vec![Value::Integer(0)]).as_i64(), Some(0));
    }

    #[test]
    fn round_with_digits() {
        assert_eq!(
            call("ROUND", vec![Value::Float(2.567), Value::Integer(1)]).as_f64(),
            Some(2.6)
        );
        assert_eq!(call("ROUND", vec![Value::Float(2.4)]).as_f64(), Some(2.0));
    }

    #[test]
    fn nullif_matches_paper_usage() {
        // NULLIF(v.VIEWS_2023Q2, 0) from Appendix A: zero denominators
        // become NULL so the division yields NULL instead of an error.
        assert!(call("NULLIF", vec![Value::Integer(0), Value::Integer(0)]).is_null());
        assert_eq!(
            call("NULLIF", vec![Value::Integer(7), Value::Integer(0)]).as_i64(),
            Some(7)
        );
        assert!(call("NULLIF", vec![Value::Null, Value::Null]).is_null());
    }

    #[test]
    fn coalesce_first_non_null() {
        assert_eq!(
            call(
                "COALESCE",
                vec![Value::Null, Value::Null, Value::Integer(3)]
            )
            .as_i64(),
            Some(3)
        );
        assert!(call("COALESCE", vec![Value::Null]).is_null());
    }

    #[test]
    fn to_char_date_quarters() {
        let d = Value::Date(Date::new(2023, 5, 1).unwrap());
        assert_eq!(
            call("TO_CHAR", vec![d, Value::Text("YYYY\"Q\"Q".into())]),
            Value::Text("2023Q2".into())
        );
    }

    #[test]
    fn to_char_accepts_iso_text_dates() {
        assert_eq!(
            call(
                "TO_CHAR",
                vec![
                    Value::Text("2023-11-20".into()),
                    Value::Text("YYYY\"Q\"Q".into())
                ]
            ),
            Value::Text("2023Q4".into())
        );
    }

    #[test]
    fn string_functions() {
        assert_eq!(call("UPPER", vec!["abc".into()]), Value::Text("ABC".into()));
        assert_eq!(call("LENGTH", vec!["héllo".into()]).as_i64(), Some(5));
        assert_eq!(
            call(
                "SUBSTR",
                vec!["hello".into(), Value::Integer(2), Value::Integer(3)]
            ),
            Value::Text("ell".into())
        );
        assert_eq!(
            call("SUBSTR", vec!["hello".into(), Value::Integer(1)]),
            Value::Text("hello".into())
        );
        assert_eq!(
            call("REPLACE", vec!["aXbX".into(), "X".into(), "-".into()]),
            Value::Text("a-b-".into())
        );
        assert_eq!(
            call("INSTR", vec!["hello".into(), "ll".into()]).as_i64(),
            Some(3)
        );
        assert_eq!(
            call("INSTR", vec!["hello".into(), "z".into()]).as_i64(),
            Some(0)
        );
    }

    #[test]
    fn concat_skips_nulls() {
        assert_eq!(
            call("CONCAT", vec!["a".into(), Value::Null, "b".into()]),
            Value::Text("ab".into())
        );
    }

    #[test]
    fn date_parts() {
        let d = Value::Date(Date::new(2023, 11, 20).unwrap());
        assert_eq!(call("YEAR", vec![d.clone()]).as_i64(), Some(2023));
        assert_eq!(call("MONTH", vec![d.clone()]).as_i64(), Some(11));
        assert_eq!(call("QUARTER", vec![d]).as_i64(), Some(4));
    }

    #[test]
    fn division_helpers() {
        assert!(call("MOD", vec![Value::Integer(5), Value::Integer(0)]).is_null());
        assert_eq!(
            call("MOD", vec![Value::Integer(5), Value::Integer(3)]).as_i64(),
            Some(2)
        );
        assert!(call("SQRT", vec![Value::Float(-1.0)]).is_null());
    }

    #[test]
    fn unknown_function_is_binding_error() {
        let e = eval_scalar("FROBNICATE", &[]).unwrap_err();
        assert!(matches!(e, EngineError::Binding { .. }));
    }

    #[test]
    fn like_patterns() {
        assert!(sql_like("hello", "he%"));
        assert!(sql_like("hello", "%llo"));
        assert!(sql_like("hello", "h_llo"));
        assert!(sql_like("hello", "%"));
        assert!(!sql_like("hello", "H%")); // case-sensitive
        assert!(!sql_like("hello", "he"));
        assert!(sql_like("", "%"));
        assert!(!sql_like("", "_"));
        assert!(sql_like("a%b", "a%b"));
    }

    #[test]
    fn iif() {
        assert_eq!(
            call(
                "IIF",
                vec![Value::Boolean(true), Value::Integer(1), Value::Integer(2)]
            )
            .as_i64(),
            Some(1)
        );
        assert_eq!(
            call(
                "IIF",
                vec![Value::Null, Value::Integer(1), Value::Integer(2)]
            )
            .as_i64(),
            Some(2)
        );
    }
}
