//! Recursive-descent SQL parser.
//!
//! Entry points: [`parse_statement`] for a full statement and
//! [`parse_expression`] for a standalone scalar expression (used by the
//! knowledge-set decomposer when it round-trips clause fragments).

use crate::ast::*;
use crate::error::{EngineError, EngineResult};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::value::DataType;

/// Keywords that terminate an implicit alias (`FROM t x WHERE …`).
const RESERVED: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "HAVING",
    "ORDER",
    "LIMIT",
    "JOIN",
    "INNER",
    "LEFT",
    "RIGHT",
    "FULL",
    "OUTER",
    "CROSS",
    "ON",
    "UNION",
    "INTERSECT",
    "EXCEPT",
    "AND",
    "OR",
    "NOT",
    "IN",
    "BETWEEN",
    "LIKE",
    "IS",
    "NULL",
    "CASE",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
    "AS",
    "WITH",
    "DISTINCT",
    "ALL",
    "ASC",
    "DESC",
    "EXISTS",
    "CAST",
    "OVER",
    "PARTITION",
    "BY",
    "TRUE",
    "FALSE",
];

/// Parse a single SQL statement (a query, optionally `;`-terminated).
pub fn parse_statement(sql: &str) -> EngineResult<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let query = p.parse_query()?;
    p.eat_kind(&TokenKind::Semicolon);
    if let Some(tok) = p.peek() {
        return Err(EngineError::parse(
            format!("unexpected trailing token '{}'", tok.kind),
            tok.offset,
        ));
    }
    Ok(Statement::Query(query))
}

/// Parse a standalone scalar expression.
pub fn parse_expression(sql: &str) -> EngineResult<Expr> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.parse_expr()?;
    if let Some(tok) = p.peek() {
        return Err(EngineError::parse(
            format!("unexpected trailing token '{}'", tok.kind),
            tok.offset,
        ));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, n: usize) -> Option<&Token> {
        self.tokens.get(self.pos + n)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn offset(&self) -> usize {
        self.peek()
            .map(|t| t.offset)
            .unwrap_or_else(|| self.tokens.last().map(|t| t.offset + 1).unwrap_or(0))
    }

    fn err(&self, msg: impl Into<String>) -> EngineError {
        EngineError::parse(msg, self.offset())
    }

    /// Consume the next token if it is the given keyword.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().map(|t| t.kind.is_keyword(kw)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().map(|t| t.kind.is_keyword(kw)).unwrap_or(false)
    }

    fn expect_kw(&mut self, kw: &str) -> EngineResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {kw}, found {}",
                self.peek()
                    .map(|t| t.kind.to_string())
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if self.peek().map(|t| &t.kind == kind).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind) -> EngineResult<()> {
        if self.eat_kind(kind) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected '{kind}', found {}",
                self.peek()
                    .map(|t| t.kind.to_string())
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    /// Parse an identifier token (plain or quoted).
    fn parse_ident(&mut self) -> EngineResult<String> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            Some(TokenKind::QuotedIdent(s)) => {
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.err(format!(
                "expected identifier, found {}",
                other
                    .map(|k| k.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    fn parse_query(&mut self) -> EngineResult<Query> {
        let mut ctes = Vec::new();
        if self.eat_kw("WITH") {
            if self.peek_kw("RECURSIVE") {
                return Err(EngineError::unsupported("WITH RECURSIVE is not supported"));
            }
            loop {
                let name = self.parse_ident()?;
                self.expect_kw("AS")?;
                self.expect_kind(&TokenKind::LParen)?;
                let query = self.parse_query()?;
                self.expect_kind(&TokenKind::RParen)?;
                ctes.push(Cte {
                    name,
                    query: Box::new(query),
                });
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let body = self.parse_set_expr()?;

        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                order_by.push(self.parse_order_item()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let mut limit = None;
        if self.eat_kw("LIMIT") {
            match self.next().map(|t| t.kind) {
                Some(TokenKind::IntLit(n)) if n >= 0 => limit = Some(n as u64),
                _ => return Err(self.err("expected non-negative integer after LIMIT")),
            }
        }

        Ok(Query {
            ctes,
            body,
            order_by,
            limit,
        })
    }

    fn parse_order_item(&mut self) -> EngineResult<OrderItem> {
        let expr = self.parse_expr()?;
        let desc = if self.eat_kw("DESC") {
            true
        } else {
            self.eat_kw("ASC");
            false
        };
        Ok(OrderItem { expr, desc })
    }

    fn parse_set_expr(&mut self) -> EngineResult<SetExpr> {
        let mut left = self.parse_set_term()?;
        loop {
            let op = if self.peek_kw("UNION") {
                SetOp::Union
            } else if self.peek_kw("INTERSECT") {
                SetOp::Intersect
            } else if self.peek_kw("EXCEPT") {
                SetOp::Except
            } else {
                break;
            };
            self.pos += 1;
            let all = self.eat_kw("ALL");
            let right = self.parse_set_term()?;
            left = SetExpr::SetOp {
                op,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_set_term(&mut self) -> EngineResult<SetExpr> {
        if self.eat_kind(&TokenKind::LParen) {
            // Parenthesized set expression or select.
            let inner = self.parse_set_expr()?;
            self.expect_kind(&TokenKind::RParen)?;
            Ok(inner)
        } else {
            Ok(SetExpr::Select(Box::new(self.parse_select()?)))
        }
    }

    fn parse_select(&mut self) -> EngineResult<Select> {
        self.expect_kw("SELECT")?;
        let distinct = if self.eat_kw("DISTINCT") {
            true
        } else {
            self.eat_kw("ALL");
            false
        };

        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }

        let from = if self.eat_kw("FROM") {
            Some(self.parse_table_ref()?)
        } else {
            None
        };

        let selection = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let having = if self.eat_kw("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        Ok(Select {
            distinct,
            items,
            from,
            selection,
            group_by,
            having,
        })
    }

    fn parse_select_item(&mut self) -> EngineResult<SelectItem> {
        if self.eat_kind(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `ident.*`
        if let (Some(TokenKind::Ident(name)), Some(TokenKind::Dot), Some(TokenKind::Star)) = (
            self.peek().map(|t| t.kind.clone()),
            self.peek_at(1).map(|t| t.kind.clone()),
            self.peek_at(2).map(|t| t.kind.clone()),
        ) {
            self.pos += 3;
            return Ok(SelectItem::QualifiedWildcard(name));
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    /// `[AS] alias` where the implicit form stops at reserved keywords.
    fn parse_alias(&mut self) -> EngineResult<Option<String>> {
        if self.eat_kw("AS") {
            return Ok(Some(self.parse_ident()?));
        }
        match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Ident(s)) if !RESERVED.iter().any(|kw| s.eq_ignore_ascii_case(kw)) => {
                self.pos += 1;
                Ok(Some(s))
            }
            Some(TokenKind::QuotedIdent(s)) => {
                self.pos += 1;
                Ok(Some(s))
            }
            _ => Ok(None),
        }
    }

    // ------------------------------------------------------------------
    // FROM clause
    // ------------------------------------------------------------------

    fn parse_table_ref(&mut self) -> EngineResult<TableRef> {
        let mut left = self.parse_table_factor()?;
        loop {
            let kind = if self.peek_kw("JOIN") || self.peek_kw("INNER") {
                self.eat_kw("INNER");
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.peek_kw("LEFT") {
                self.pos += 1;
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Left
            } else if self.peek_kw("CROSS") {
                self.pos += 1;
                self.expect_kw("JOIN")?;
                JoinKind::Cross
            } else if self.peek_kw("RIGHT") || self.peek_kw("FULL") {
                return Err(EngineError::unsupported(
                    "RIGHT/FULL joins are not supported; rewrite with LEFT JOIN",
                ));
            } else if self.eat_kind(&TokenKind::Comma) {
                // Comma join = cross join.
                JoinKind::Cross
            } else {
                break;
            };
            let right = self.parse_table_factor()?;
            let on = if kind != JoinKind::Cross && self.eat_kw("ON") {
                Some(self.parse_expr()?)
            } else if kind != JoinKind::Cross {
                return Err(self.err("expected ON after JOIN (USING is not supported)"));
            } else {
                None
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
        Ok(left)
    }

    fn parse_table_factor(&mut self) -> EngineResult<TableRef> {
        if self.eat_kind(&TokenKind::LParen) {
            // Derived table.
            let query = self.parse_query()?;
            self.expect_kind(&TokenKind::RParen)?;
            self.eat_kw("AS");
            let alias = self
                .parse_ident()
                .map_err(|_| self.err("derived table requires an alias"))?;
            Ok(TableRef::Derived {
                query: Box::new(query),
                alias,
            })
        } else {
            let name = self.parse_ident()?;
            let alias = self.parse_alias()?;
            Ok(TableRef::Named { name, alias })
        }
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn parse_expr(&mut self) -> EngineResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> EngineResult<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("OR") {
            let right = self.parse_and()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> EngineResult<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("AND") {
            let right = self.parse_not()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> EngineResult<Expr> {
        // `NOT EXISTS (…)` folds into the Exists node rather than a Unary.
        if self.peek_kw("NOT")
            && self
                .peek_at(1)
                .map(|t| t.kind.is_keyword("EXISTS"))
                .unwrap_or(false)
            && self
                .peek_at(2)
                .map(|t| t.kind == TokenKind::LParen)
                .unwrap_or(false)
        {
            self.pos += 2;
            self.expect_kind(&TokenKind::LParen)?;
            let q = self.parse_query()?;
            self.expect_kind(&TokenKind::RParen)?;
            return Ok(Expr::Exists {
                subquery: Box::new(q),
                negated: true,
            });
        }
        if self.eat_kw("NOT") {
            let inner = self.parse_not()?;
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            })
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> EngineResult<Expr> {
        let left = self.parse_additive()?;
        // Postfix predicates: IS [NOT] NULL, [NOT] IN, [NOT] BETWEEN, [NOT] LIKE.
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = if self.peek_kw("NOT")
            && self
                .peek_at(1)
                .map(|t| {
                    t.kind.is_keyword("IN")
                        || t.kind.is_keyword("BETWEEN")
                        || t.kind.is_keyword("LIKE")
                })
                .unwrap_or(false)
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_kw("IN") {
            self.expect_kind(&TokenKind::LParen)?;
            if self.peek_kw("SELECT") || self.peek_kw("WITH") {
                let subquery = self.parse_query()?;
                self.expect_kind(&TokenKind::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(subquery),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_kw("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(self.err("expected IN, BETWEEN or LIKE after NOT"));
        }

        let op = match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Eq) => Some(BinaryOp::Eq),
            Some(TokenKind::NotEq) => Some(BinaryOp::NotEq),
            Some(TokenKind::Lt) => Some(BinaryOp::Lt),
            Some(TokenKind::LtEq) => Some(BinaryOp::LtEq),
            Some(TokenKind::Gt) => Some(BinaryOp::Gt),
            Some(TokenKind::GtEq) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> EngineResult<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Plus) => BinaryOp::Add,
                Some(TokenKind::Minus) => BinaryOp::Sub,
                Some(TokenKind::Concat) => BinaryOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> EngineResult<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Star) => BinaryOp::Mul,
                Some(TokenKind::Slash) => BinaryOp::Div,
                Some(TokenKind::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> EngineResult<Expr> {
        if self.eat_kind(&TokenKind::Minus) {
            let inner = self.parse_unary()?;
            // Fold negation into numeric literals so `-5` is one canonical
            // AST node; the printer relies on this for round-tripping.
            return Ok(match inner {
                Expr::Literal(Literal::Integer(v)) => Expr::Literal(Literal::Integer(-v)),
                Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat_kind(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> EngineResult<Expr> {
        let tok = match self.peek() {
            Some(t) => t.clone(),
            None => return Err(self.err("unexpected end of expression")),
        };
        match &tok.kind {
            TokenKind::IntLit(v) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Integer(*v)))
            }
            TokenKind::FloatLit(v) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Float(*v)))
            }
            TokenKind::StringLit(s) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::String(s.clone())))
            }
            TokenKind::LParen => {
                self.pos += 1;
                if self.peek_kw("SELECT") || self.peek_kw("WITH") {
                    let q = self.parse_query()?;
                    self.expect_kind(&TokenKind::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(q)));
                }
                let inner = self.parse_expr()?;
                self.expect_kind(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(_) | TokenKind::QuotedIdent(_) => self.parse_ident_expr(),
            other => Err(EngineError::parse(
                format!("unexpected token '{other}' in expression"),
                tok.offset,
            )),
        }
    }

    /// Expressions that start with an identifier: keyword constructs,
    /// function calls, or column references.
    fn parse_ident_expr(&mut self) -> EngineResult<Expr> {
        // Keyword constructs first.
        if self.eat_kw("NULL") {
            return Ok(Expr::Literal(Literal::Null));
        }
        if self.eat_kw("TRUE") {
            return Ok(Expr::Literal(Literal::Boolean(true)));
        }
        if self.eat_kw("FALSE") {
            return Ok(Expr::Literal(Literal::Boolean(false)));
        }
        if self.eat_kw("CASE") {
            return self.parse_case();
        }
        if self.eat_kw("CAST") {
            self.expect_kind(&TokenKind::LParen)?;
            let inner = self.parse_expr()?;
            self.expect_kw("AS")?;
            let ty_name = self.parse_ident()?;
            let ty = DataType::parse(&ty_name)
                .ok_or_else(|| self.err(format!("unknown type '{ty_name}' in CAST")))?;
            self.expect_kind(&TokenKind::RParen)?;
            return Ok(Expr::Cast {
                expr: Box::new(inner),
                ty,
            });
        }
        if self.peek_kw("EXISTS")
            && self
                .peek_at(1)
                .map(|t| t.kind == TokenKind::LParen)
                .unwrap_or(false)
        {
            self.pos += 1;
            self.expect_kind(&TokenKind::LParen)?;
            let q = self.parse_query()?;
            self.expect_kind(&TokenKind::RParen)?;
            return Ok(Expr::Exists {
                subquery: Box::new(q),
                negated: false,
            });
        }
        let name = self.parse_ident()?;

        // Function call?
        if self
            .peek()
            .map(|t| t.kind == TokenKind::LParen)
            .unwrap_or(false)
        {
            self.pos += 1;
            let mut call = FunctionCall::new(name, Vec::new());
            if self.eat_kind(&TokenKind::Star) {
                call.star = true;
                self.expect_kind(&TokenKind::RParen)?;
            } else if self.eat_kind(&TokenKind::RParen) {
                // zero-arg call
            } else {
                call.distinct = self.eat_kw("DISTINCT");
                loop {
                    call.args.push(self.parse_expr()?);
                    if !self.eat_kind(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect_kind(&TokenKind::RParen)?;
            }
            if self.eat_kw("OVER") {
                self.expect_kind(&TokenKind::LParen)?;
                let mut spec = WindowSpec {
                    partition_by: Vec::new(),
                    order_by: Vec::new(),
                };
                if self.eat_kw("PARTITION") {
                    self.expect_kw("BY")?;
                    loop {
                        spec.partition_by.push(self.parse_expr()?);
                        if !self.eat_kind(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                if self.eat_kw("ORDER") {
                    self.expect_kw("BY")?;
                    loop {
                        spec.order_by.push(self.parse_order_item()?);
                        if !self.eat_kind(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect_kind(&TokenKind::RParen)?;
                call.over = Some(spec);
            }
            return Ok(Expr::Function(call));
        }

        // Column reference, possibly qualified.
        if self.eat_kind(&TokenKind::Dot) {
            let col = self.parse_ident()?;
            Ok(Expr::Column {
                table: Some(name),
                name: col,
            })
        } else {
            Ok(Expr::Column { table: None, name })
        }
    }

    fn parse_case(&mut self) -> EngineResult<Expr> {
        let operand = if self.peek_kw("WHEN") {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let cond = self.parse_expr()?;
            self.expect_kw("THEN")?;
            let result = self.parse_expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN branch"));
        }
        let else_expr = if self.eat_kw("ELSE") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_expr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(sql: &str) -> Query {
        match parse_statement(sql) {
            Ok(Statement::Query(q)) => q,
            Err(e) => panic!("parse of {sql:?} failed: {e}"),
        }
    }

    #[test]
    fn minimal_select() {
        let q = parse_ok("SELECT 1");
        let s = q.as_select().unwrap();
        assert_eq!(s.items.len(), 1);
        assert!(s.from.is_none());
    }

    #[test]
    fn select_with_everything() {
        let q = parse_ok(
            "SELECT DISTINCT a, SUM(b) AS total FROM t \
             WHERE a > 1 AND b IS NOT NULL \
             GROUP BY a HAVING SUM(b) > 10 \
             ORDER BY total DESC, a LIMIT 5",
        );
        let s = q.as_select().unwrap();
        assert!(s.distinct);
        assert_eq!(s.items.len(), 2);
        assert!(s.selection.is_some());
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].desc);
        assert!(!q.order_by[1].desc);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn with_clause() {
        let q = parse_ok("WITH x AS (SELECT 1 AS a), y AS (SELECT a FROM x) SELECT * FROM y");
        assert_eq!(q.ctes.len(), 2);
        assert_eq!(q.ctes[0].name, "x");
        assert_eq!(q.ctes[1].name, "y");
    }

    #[test]
    fn joins() {
        let q = parse_ok(
            "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id CROSS JOIN d",
        );
        let s = q.as_select().unwrap();
        assert_eq!(s.from.as_ref().unwrap().join_count(), 3);
    }

    #[test]
    fn comma_join_is_cross() {
        let q = parse_ok("SELECT * FROM a, b WHERE a.id = b.id");
        match q.as_select().unwrap().from.as_ref().unwrap() {
            TableRef::Join {
                kind: JoinKind::Cross,
                ..
            } => {}
            other => panic!("expected cross join, got {other:?}"),
        }
    }

    #[test]
    fn join_without_on_fails() {
        assert!(parse_statement("SELECT * FROM a JOIN b").is_err());
    }

    #[test]
    fn right_join_unsupported() {
        let e = parse_statement("SELECT * FROM a RIGHT JOIN b ON a.x=b.x").unwrap_err();
        assert!(matches!(e, EngineError::Unsupported { .. }));
    }

    #[test]
    fn derived_table_requires_alias() {
        assert!(parse_statement("SELECT * FROM (SELECT 1)").is_err());
        assert!(parse_statement("SELECT * FROM (SELECT 1) t").is_ok());
        assert!(parse_statement("SELECT * FROM (SELECT 1) AS t").is_ok());
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        // Must parse as 1 + (2 * 3).
        match e {
            Expr::Binary {
                op: BinaryOp::Add,
                right,
                ..
            } => match *right {
                Expr::Binary {
                    op: BinaryOp::Mul, ..
                } => {}
                other => panic!("expected Mul on right, got {other:?}"),
            },
            other => panic!("expected Add at root, got {other:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let e = parse_expression("a = 1 OR b = 2 AND c = 3").unwrap();
        match e {
            Expr::Binary {
                op: BinaryOp::Or, ..
            } => {}
            other => panic!("expected Or at root, got {other:?}"),
        }
    }

    #[test]
    fn not_parses() {
        let e = parse_expression("NOT a = 1").unwrap();
        assert!(matches!(
            e,
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
    }

    #[test]
    fn in_list_and_subquery() {
        assert!(matches!(
            parse_expression("x IN (1, 2, 3)").unwrap(),
            Expr::InList { negated: false, .. }
        ));
        assert!(matches!(
            parse_expression("x NOT IN (SELECT y FROM t)").unwrap(),
            Expr::InSubquery { negated: true, .. }
        ));
    }

    #[test]
    fn between_and_like() {
        assert!(matches!(
            parse_expression("x BETWEEN 1 AND 10").unwrap(),
            Expr::Between { negated: false, .. }
        ));
        assert!(matches!(
            parse_expression("name NOT LIKE 'A%'").unwrap(),
            Expr::Like { negated: true, .. }
        ));
    }

    #[test]
    fn case_forms() {
        let searched = parse_expression("CASE WHEN a = 1 THEN 'x' ELSE 'y' END").unwrap();
        assert!(matches!(searched, Expr::Case { operand: None, .. }));
        let simple = parse_expression("CASE a WHEN 1 THEN 'x' WHEN 2 THEN 'y' END").unwrap();
        match simple {
            Expr::Case {
                operand: Some(_),
                branches,
                else_expr: None,
            } => {
                assert_eq!(branches.len(), 2)
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_expression("CASE END").is_err());
    }

    #[test]
    fn cast_parses() {
        let e = parse_expression("CAST(x AS FLOAT)").unwrap();
        assert!(matches!(
            e,
            Expr::Cast {
                ty: DataType::Float,
                ..
            }
        ));
        assert!(parse_expression("CAST(x AS WIBBLE)").is_err());
    }

    #[test]
    fn window_function_from_paper() {
        // Shape taken from Q_fin-perf in Appendix A.
        let e = parse_expression(
            "ROW_NUMBER() OVER (PARTITION BY f.COUNTRY ORDER BY (-1 * (a - b)) DESC)",
        )
        .unwrap();
        match e {
            Expr::Function(f) => {
                assert_eq!(f.name, "ROW_NUMBER");
                let spec = f.over.unwrap();
                assert_eq!(spec.partition_by.len(), 1);
                assert_eq!(spec.order_by.len(), 1);
                assert!(spec.order_by[0].desc);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn count_star_and_distinct() {
        let e = parse_expression("COUNT(*)").unwrap();
        assert!(matches!(e, Expr::Function(ref f) if f.star));
        let e = parse_expression("COUNT(DISTINCT x)").unwrap();
        assert!(matches!(e, Expr::Function(ref f) if f.distinct));
    }

    #[test]
    fn exists() {
        assert!(matches!(
            parse_expression("EXISTS (SELECT 1 FROM t)").unwrap(),
            Expr::Exists { negated: false, .. }
        ));
        assert!(matches!(
            parse_expression("NOT EXISTS (SELECT 1 FROM t)").unwrap(),
            Expr::Exists { negated: true, .. }
        ));
    }

    #[test]
    fn scalar_subquery() {
        assert!(matches!(
            parse_expression("(SELECT MAX(x) FROM t)").unwrap(),
            Expr::ScalarSubquery(_)
        ));
    }

    #[test]
    fn set_operations() {
        let q = parse_ok("SELECT a FROM t UNION ALL SELECT a FROM u ORDER BY a");
        match q.body {
            SetExpr::SetOp {
                op: SetOp::Union,
                all: true,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(q.order_by.len(), 1);
        parse_ok("SELECT a FROM t INTERSECT SELECT a FROM u");
        parse_ok("SELECT a FROM t EXCEPT SELECT a FROM u");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_statement("SELECT 1 GARBAGE MORE").is_err());
        assert!(parse_statement("SELECT 1;").is_ok());
    }

    #[test]
    fn implicit_alias_stops_at_keywords() {
        let q = parse_ok("SELECT a b FROM t WHERE a = 1");
        match &q.as_select().unwrap().items[0] {
            SelectItem::Expr { alias: Some(a), .. } => assert_eq!(a, "b"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn recursive_cte_unsupported() {
        let e = parse_statement("WITH RECURSIVE r AS (SELECT 1) SELECT * FROM r").unwrap_err();
        assert!(matches!(e, EngineError::Unsupported { .. }));
    }

    #[test]
    fn full_appendix_a_query_parses() {
        // The paper's Appendix A query, lightly normalized (balanced parens).
        let sql = r#"
        WITH FINANCIALS AS (
          SELECT ORG_NAME,
            SUM(CASE WHEN TO_CHAR(FIN_MONTH, 'YYYY"Q"Q') = '2023Q1' THEN REVENUE ELSE 0 END) AS REVENUE_2023Q1,
            SUM(CASE WHEN TO_CHAR(FIN_MONTH, 'YYYY"Q"Q') = '2023Q2' THEN REVENUE ELSE 0 END) AS REVENUE_2023Q2
          FROM SPORTS_FINANCIALS
          WHERE TO_CHAR(FIN_MONTH, 'YYYY"Q"Q') IN ('2023Q1', '2023Q2')
            AND COUNTRY = 'Canada'
            AND OWNERSHIP_FLAG_COLUMN = 'COC'
          GROUP BY ORG_NAME
        ),
        VIEWERSHIP AS (
          SELECT ORG_NAME,
            SUM(CASE WHEN TO_CHAR(VIEW_MONTH, 'YYYY"Q"Q') = '2023Q1' THEN VIEWS ELSE 0 END) AS VIEWS_2023Q1,
            SUM(CASE WHEN TO_CHAR(VIEW_MONTH, 'YYYY"Q"Q') = '2023Q2' THEN VIEWS ELSE 0 END) AS VIEWS_2023Q2
          FROM SPORTS_VIEWERSHIP
          WHERE TO_CHAR(VIEW_MONTH, 'YYYY"Q"Q') IN ('2023Q1', '2023Q2')
            AND COUNTRY = 'Canada'
          GROUP BY ORG_NAME
        ),
        CHANGE_IN_REVENUE AS (
          SELECT f.ORG_NAME,
            CAST(f.REVENUE_2023Q2 AS FLOAT) / NULLIF(v.VIEWS_2023Q2, 0) AS RPV,
            ROW_NUMBER() OVER (ORDER BY (-1 * (
              CAST(f.REVENUE_2023Q2 AS FLOAT) / NULLIF(v.VIEWS_2023Q2, 0) -
              CAST(f.REVENUE_2023Q1 AS FLOAT) / NULLIF(v.VIEWS_2023Q1, 0))) DESC) AS SPORT_RANK
          FROM FINANCIALS f
          JOIN VIEWERSHIP v ON f.ORG_NAME = v.ORG_NAME
        )
        SELECT SPORT_RANK, ORG_NAME, RPV
        FROM CHANGE_IN_REVENUE
        WHERE SPORT_RANK <= 5
        ORDER BY SPORT_RANK
        "#;
        let q = parse_ok(sql);
        assert_eq!(q.ctes.len(), 3);
    }
}
