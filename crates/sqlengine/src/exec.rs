//! Query execution.
//!
//! The executor is a straightforward materializing interpreter: FROM
//! resolution (nested-loop joins), WHERE filtering, grouping with
//! accumulator-based aggregates, window computation, projection, DISTINCT,
//! ORDER BY, LIMIT, and set operations. CTEs are materialized once in
//! definition order and visible to later CTEs and the main body, matching
//! the CTE-normal-form queries GenEdit generates (§3.1.2).

use crate::aggregate::Accumulator;
use crate::ast::*;
use crate::catalog::Database;
use crate::error::{EngineError, EngineResult};
use crate::eval::{
    collect_window_calls, contains_aggregate, eval_expr, ColMeta, EvalEnv, GroupView, Relation,
    Scope, WindowValues,
};
use crate::functions;
use crate::parser::parse_statement;
use crate::result::ResultSet;
use crate::value::Value;
use std::collections::HashMap;
use std::rc::Rc;

/// CTE name → materialized result, keyed by lowercase name.
pub type CteMap = HashMap<String, Rc<ResultSet>>;

/// Parse and execute a SQL string against a database.
pub fn execute_sql(db: &Database, sql: &str) -> EngineResult<ResultSet> {
    let stmt = parse_statement(sql)?;
    execute(db, &stmt)
}

/// Timing and output-size observations from one [`execute_sql_timed`]
/// call. `rows`/`columns` are zero when the statement failed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Time spent parsing the statement.
    pub parse: std::time::Duration,
    /// Time spent executing it (zero when parsing failed).
    pub execute: std::time::Duration,
    /// Rows in the result set.
    pub rows: usize,
    /// Columns in the result set.
    pub columns: usize,
}

impl ExecStats {
    /// Record into a metrics registry as `sql.<stage>.parse_ms` /
    /// `.execute_ms` histograms and a `sql.<stage>.rows` histogram.
    pub fn record(&self, metrics: &genedit_telemetry::MetricsRegistry, stage: &str) {
        metrics.observe_duration(&format!("sql.{stage}.parse_ms"), self.parse);
        metrics.observe_duration(&format!("sql.{stage}.execute_ms"), self.execute);
        metrics.observe(&format!("sql.{stage}.rows"), self.rows as f64);
    }
}

/// Like [`execute_sql`], also reporting parse/execute timings and result
/// size — the telemetry view of the execution-guided validation loop.
pub fn execute_sql_timed(db: &Database, sql: &str) -> (EngineResult<ResultSet>, ExecStats) {
    let mut stats = ExecStats::default();
    let t = std::time::Instant::now();
    let stmt = match parse_statement(sql) {
        Ok(stmt) => {
            stats.parse = t.elapsed();
            stmt
        }
        Err(e) => {
            stats.parse = t.elapsed();
            return (Err(e), stats);
        }
    };
    let t = std::time::Instant::now();
    let result = execute(db, &stmt);
    stats.execute = t.elapsed();
    if let Ok(rs) = &result {
        stats.rows = rs.row_count();
        stats.columns = rs.columns.len();
    }
    (result, stats)
}

/// Execute a parsed statement.
pub fn execute(db: &Database, stmt: &Statement) -> EngineResult<ResultSet> {
    match stmt {
        Statement::Query(q) => execute_query_with_outer(db, q, &CteMap::new(), None),
    }
}

/// Execute a query, optionally with an outer row scope for correlated
/// subqueries and a set of inherited CTEs.
pub fn execute_query_with_outer(
    db: &Database,
    query: &Query,
    inherited: &CteMap,
    outer: Option<&Scope<'_>>,
) -> EngineResult<ResultSet> {
    let mut ctes = inherited.clone();
    for cte in &query.ctes {
        // CTEs see previously defined CTEs but not the outer row scope.
        let result = execute_query_with_outer(db, &cte.query, &ctes, None)?;
        ctes.insert(cte.name.to_lowercase(), Rc::new(result));
    }

    match &query.body {
        SetExpr::Select(select) => {
            exec_select(db, select, &ctes, outer, &query.order_by, query.limit)
        }
        SetExpr::SetOp { .. } => {
            let mut rs = exec_set_expr(db, &query.body, &ctes, outer)?;
            sort_result_by_output(&mut rs, &query.order_by)?;
            if let Some(n) = query.limit {
                rs.rows.truncate(n as usize);
            }
            Ok(rs)
        }
    }
}

fn exec_set_expr(
    db: &Database,
    body: &SetExpr,
    ctes: &CteMap,
    outer: Option<&Scope<'_>>,
) -> EngineResult<ResultSet> {
    match body {
        SetExpr::Select(select) => exec_select(db, select, ctes, outer, &[], None),
        SetExpr::SetOp {
            op,
            all,
            left,
            right,
        } => {
            let l = exec_set_expr(db, left, ctes, outer)?;
            let r = exec_set_expr(db, right, ctes, outer)?;
            if l.columns.len() != r.columns.len() {
                return Err(EngineError::typing(format!(
                    "set operation arity mismatch: {} vs {} columns",
                    l.columns.len(),
                    r.columns.len()
                )));
            }
            let key = |row: &Vec<Value>| -> String {
                row.iter()
                    .map(Value::group_key)
                    .collect::<Vec<_>>()
                    .join("|")
            };
            let mut out = ResultSet::new(l.columns.clone());
            match (op, all) {
                (SetOp::Union, true) => {
                    out.rows = l.rows;
                    out.rows.extend(r.rows);
                }
                (SetOp::Union, false) => {
                    let mut seen = std::collections::HashSet::new();
                    for row in l.rows.into_iter().chain(r.rows) {
                        if seen.insert(key(&row)) {
                            out.rows.push(row);
                        }
                    }
                }
                (SetOp::Intersect, all) => {
                    let mut right_counts: HashMap<String, usize> = HashMap::new();
                    for row in &r.rows {
                        *right_counts.entry(key(row)).or_insert(0) += 1;
                    }
                    let mut emitted: HashMap<String, usize> = HashMap::new();
                    for row in l.rows {
                        let k = key(&row);
                        let avail = right_counts.get(&k).copied().unwrap_or(0);
                        let used = emitted.entry(k).or_insert(0);
                        let cap = if *all { avail } else { avail.min(1) };
                        if *used < cap {
                            *used += 1;
                            out.rows.push(row);
                        }
                    }
                }
                (SetOp::Except, all) => {
                    let mut right_counts: HashMap<String, usize> = HashMap::new();
                    for row in &r.rows {
                        *right_counts.entry(key(row)).or_insert(0) += 1;
                    }
                    let mut emitted: HashMap<String, usize> = HashMap::new();
                    for row in l.rows {
                        let k = key(&row);
                        let blocked = right_counts.get(&k).copied().unwrap_or(0);
                        let count = emitted.entry(k).or_insert(0);
                        *count += 1;
                        let keep = if *all {
                            *count > blocked
                        } else {
                            blocked == 0 && *count == 1
                        };
                        if keep {
                            out.rows.push(row);
                        }
                    }
                }
            }
            Ok(out)
        }
    }
}

/// One projection unit: a plain row or a group of rows.
struct Unit {
    /// Representative row index (first member), `usize::MAX` for an empty
    /// implicit group.
    rep: usize,
    members: Vec<usize>,
}

static EMPTY_ROW: &[Value] = &[];

fn exec_select(
    db: &Database,
    select: &Select,
    ctes: &CteMap,
    outer: Option<&Scope<'_>>,
    order_by: &[OrderItem],
    limit: Option<u64>,
) -> EngineResult<ResultSet> {
    let env = EvalEnv { db, ctes };

    // FROM.
    let rel = match &select.from {
        Some(tr) => resolve_from(db, tr, ctes, outer)?,
        None => Relation {
            cols: Vec::new(),
            rows: vec![Vec::new()],
        },
    };

    // WHERE.
    let mut kept: Vec<usize> = Vec::with_capacity(rel.rows.len());
    match &select.selection {
        Some(pred) => {
            for (i, row) in rel.rows.iter().enumerate() {
                let scope = Scope {
                    cols: &rel.cols,
                    row,
                    parent: outer,
                    group: None,
                    windows: None,
                    unit_index: 0,
                };
                if eval_expr(pred, &scope, &env)?.as_bool()? == Some(true) {
                    kept.push(i);
                }
            }
        }
        None => kept = (0..rel.rows.len()).collect(),
    }

    // Is this an aggregated query?
    let items_have_aggregates = select.items.iter().any(|item| match item {
        SelectItem::Expr { expr, .. } => contains_aggregate(expr),
        _ => false,
    });
    let aggregated = !select.group_by.is_empty()
        || items_have_aggregates
        || select
            .having
            .as_ref()
            .map(contains_aggregate)
            .unwrap_or(false)
        || select.having.is_some();

    // Build units.
    let mut units: Vec<Unit> = Vec::new();
    if aggregated {
        if select.group_by.is_empty() {
            units.push(Unit {
                rep: kept.first().copied().unwrap_or(usize::MAX),
                members: kept.clone(),
            });
        } else {
            let mut index: HashMap<String, usize> = HashMap::new();
            for &i in &kept {
                let scope = Scope {
                    cols: &rel.cols,
                    row: &rel.rows[i],
                    parent: outer,
                    group: None,
                    windows: None,
                    unit_index: 0,
                };
                let mut key_parts = Vec::with_capacity(select.group_by.len());
                for g in &select.group_by {
                    key_parts.push(eval_expr(g, &scope, &env)?.group_key());
                }
                let key = key_parts.join("|");
                match index.get(&key) {
                    Some(&u) => units[u].members.push(i),
                    None => {
                        index.insert(key, units.len());
                        units.push(Unit {
                            rep: i,
                            members: vec![i],
                        });
                    }
                }
            }
        }
        // HAVING.
        if let Some(having) = &select.having {
            let mut filtered = Vec::with_capacity(units.len());
            for unit in units {
                let scope = unit_scope(&rel, &unit, outer, None, 0, aggregated);
                if eval_expr(having, &scope, &env)?.as_bool()? == Some(true) {
                    filtered.push(unit);
                }
            }
            units = filtered;
        }
    } else {
        units = kept
            .iter()
            .map(|&i| Unit {
                rep: i,
                members: vec![i],
            })
            .collect();
    }

    // Window functions.
    let mut window_exprs: Vec<&Expr> = Vec::new();
    for item in &select.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect_window_calls(expr, &mut window_exprs);
        }
    }
    for o in order_by {
        collect_window_calls(&o.expr, &mut window_exprs);
    }
    let windows = compute_windows(&rel, &units, &window_exprs, outer, &env, aggregated)?;

    // Projection.
    let mut out_cols: Vec<String> = Vec::new();
    let mut out_rows: Vec<Vec<Value>> = Vec::with_capacity(units.len());
    let mut first = true;
    for (ui, unit) in units.iter().enumerate() {
        let scope = unit_scope(&rel, unit, outer, Some(&windows), ui, aggregated);
        let mut row: Vec<Value> = Vec::with_capacity(select.items.len());
        for item in &select.items {
            match item {
                SelectItem::Wildcard => {
                    if aggregated {
                        return Err(EngineError::typing(
                            "SELECT * is not allowed with GROUP BY / aggregates",
                        ));
                    }
                    if first {
                        out_cols.extend(rel.cols.iter().map(|c| c.name.clone()));
                    }
                    row.extend(rel.rows[unit.rep].iter().cloned());
                }
                SelectItem::QualifiedWildcard(q) => {
                    if aggregated {
                        return Err(EngineError::typing(
                            "qualified * is not allowed with GROUP BY / aggregates",
                        ));
                    }
                    let mut any = false;
                    for (ci, col) in rel.cols.iter().enumerate() {
                        if col
                            .qualifier
                            .as_deref()
                            .map(|cq| cq.eq_ignore_ascii_case(q))
                            .unwrap_or(false)
                        {
                            any = true;
                            if first {
                                out_cols.push(col.name.clone());
                            }
                            row.push(rel.rows[unit.rep][ci].clone());
                        }
                    }
                    if !any {
                        return Err(EngineError::binding(format!("no such table alias {q}")));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    if first {
                        out_cols.push(output_name(expr, alias.as_deref()));
                    }
                    row.push(eval_expr(expr, &scope, &env)?);
                }
            }
        }
        out_rows.push(row);
        first = false;
    }
    if units.is_empty() {
        // Still need output column names for empty results.
        for item in &select.items {
            match item {
                SelectItem::Wildcard => out_cols.extend(rel.cols.iter().map(|c| c.name.clone())),
                SelectItem::QualifiedWildcard(q) => {
                    for col in &rel.cols {
                        if col
                            .qualifier
                            .as_deref()
                            .map(|cq| cq.eq_ignore_ascii_case(q))
                            .unwrap_or(false)
                        {
                            out_cols.push(col.name.clone());
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    out_cols.push(output_name(expr, alias.as_deref()))
                }
            }
        }
    }

    // ORDER BY: compute sort keys aligned with projected rows.
    if !order_by.is_empty() {
        let mut keys: Vec<Vec<Value>> = vec![Vec::new(); out_rows.len()];
        for item in order_by {
            match order_key_source(item, &out_cols)? {
                OrderSource::OutputColumn(ci) => {
                    for (ri, row) in out_rows.iter().enumerate() {
                        keys[ri].push(row[ci].clone());
                    }
                }
                OrderSource::Expression => {
                    if select.distinct {
                        return Err(EngineError::typing(
                            "ORDER BY expression must appear in SELECT DISTINCT output",
                        ));
                    }
                    for (ui, unit) in units.iter().enumerate() {
                        let scope = unit_scope(&rel, unit, outer, Some(&windows), ui, aggregated);
                        keys[ui].push(eval_expr(&item.expr, &scope, &env)?);
                    }
                }
            }
        }
        let mut order: Vec<usize> = (0..out_rows.len()).collect();
        order.sort_by(|&a, &b| {
            for (k, item) in order_by.iter().enumerate() {
                let ord = keys[a][k].total_cmp(&keys[b][k]);
                let ord = if item.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(&b) // stable
        });
        let mut sorted = Vec::with_capacity(out_rows.len());
        for i in order {
            sorted.push(std::mem::take(&mut out_rows[i]));
        }
        out_rows = sorted;
    }

    // DISTINCT (after ORDER BY keeps the first occurrence in sort order).
    if select.distinct {
        let mut seen = std::collections::HashSet::new();
        out_rows.retain(|row| {
            let k: String = row
                .iter()
                .map(Value::group_key)
                .collect::<Vec<_>>()
                .join("|");
            seen.insert(k)
        });
    }

    if let Some(n) = limit {
        out_rows.truncate(n as usize);
    }

    Ok(ResultSet {
        columns: out_cols,
        rows: out_rows,
    })
}

fn unit_scope<'a>(
    rel: &'a Relation,
    unit: &'a Unit,
    outer: Option<&'a Scope<'a>>,
    windows: Option<&'a WindowValues>,
    unit_index: usize,
    aggregated: bool,
) -> Scope<'a> {
    let row: &[Value] = if unit.rep == usize::MAX {
        EMPTY_ROW
    } else {
        &rel.rows[unit.rep]
    };
    let cols: &[ColMeta] = if unit.rep == usize::MAX {
        &[]
    } else {
        &rel.cols
    };
    Scope {
        cols,
        row,
        parent: outer,
        group: if aggregated {
            Some(GroupView {
                rel,
                indices: &unit.members,
            })
        } else {
            None
        },
        windows,
        unit_index,
    }
}

fn output_name(expr: &Expr, alias: Option<&str>) -> String {
    if let Some(a) = alias {
        return a.to_string();
    }
    match expr {
        Expr::Column { name, .. } => name.clone(),
        other => other.to_string(),
    }
}

enum OrderSource {
    OutputColumn(usize),
    Expression,
}

fn order_key_source(item: &OrderItem, out_cols: &[String]) -> EngineResult<OrderSource> {
    match &item.expr {
        Expr::Literal(Literal::Integer(n)) => {
            let idx = *n - 1;
            if idx < 0 || idx as usize >= out_cols.len() {
                return Err(EngineError::binding(format!(
                    "ORDER BY position {n} is out of range"
                )));
            }
            Ok(OrderSource::OutputColumn(idx as usize))
        }
        Expr::Column { table: None, name } => {
            let matches: Vec<usize> = out_cols
                .iter()
                .enumerate()
                .filter(|(_, c)| c.eq_ignore_ascii_case(name))
                .map(|(i, _)| i)
                .collect();
            match matches.len() {
                1 => Ok(OrderSource::OutputColumn(matches[0])),
                _ => Ok(OrderSource::Expression),
            }
        }
        _ => Ok(OrderSource::Expression),
    }
}

// ----------------------------------------------------------------------
// FROM resolution
// ----------------------------------------------------------------------

fn resolve_from(
    db: &Database,
    tr: &TableRef,
    ctes: &CteMap,
    outer: Option<&Scope<'_>>,
) -> EngineResult<Relation> {
    match tr {
        TableRef::Named { name, alias } => {
            let qualifier = alias.clone().unwrap_or_else(|| name.clone());
            if let Some(rs) = ctes.get(&name.to_lowercase()) {
                let cols = rs
                    .columns
                    .iter()
                    .map(|c| ColMeta::new(Some(qualifier.clone()), c.clone()))
                    .collect();
                return Ok(Relation {
                    cols,
                    rows: rs.rows.clone(),
                });
            }
            let table = db
                .table(name)
                .ok_or_else(|| EngineError::binding(format!("no such table {name}")))?;
            let cols = table
                .columns
                .iter()
                .map(|c| ColMeta::new(Some(qualifier.clone()), c.name.clone()))
                .collect();
            Ok(Relation {
                cols,
                rows: table.rows.clone(),
            })
        }
        TableRef::Derived { query, alias } => {
            let rs = execute_query_with_outer(db, query, ctes, None)?;
            let cols = rs
                .columns
                .iter()
                .map(|c| ColMeta::new(Some(alias.clone()), c.clone()))
                .collect();
            Ok(Relation {
                cols,
                rows: rs.rows,
            })
        }
        TableRef::Join {
            left,
            right,
            kind,
            on,
        } => {
            let l = resolve_from(db, left, ctes, outer)?;
            let r = resolve_from(db, right, ctes, outer)?;
            join(db, ctes, outer, l, r, *kind, on.as_ref())
        }
    }
}

fn join(
    db: &Database,
    ctes: &CteMap,
    outer: Option<&Scope<'_>>,
    l: Relation,
    r: Relation,
    kind: JoinKind,
    on: Option<&Expr>,
) -> EngineResult<Relation> {
    let env = EvalEnv { db, ctes };
    let mut cols = l.cols.clone();
    cols.extend(r.cols.iter().cloned());
    let mut out = Relation::new(cols);

    match kind {
        JoinKind::Cross => {
            for lrow in &l.rows {
                for rrow in &r.rows {
                    let mut combined = lrow.clone();
                    combined.extend(rrow.iter().cloned());
                    out.rows.push(combined);
                }
            }
        }
        JoinKind::Inner | JoinKind::Left => {
            let pred = on.ok_or_else(|| EngineError::typing("JOIN requires an ON condition"))?;
            for lrow in &l.rows {
                let mut matched = false;
                for rrow in &r.rows {
                    let mut combined = lrow.clone();
                    combined.extend(rrow.iter().cloned());
                    let scope = Scope {
                        cols: &out.cols,
                        row: &combined,
                        parent: outer,
                        group: None,
                        windows: None,
                        unit_index: 0,
                    };
                    if eval_expr(pred, &scope, &env)?.as_bool()? == Some(true) {
                        matched = true;
                        out.rows.push(combined);
                    }
                }
                if kind == JoinKind::Left && !matched {
                    let mut combined = lrow.clone();
                    combined.extend(std::iter::repeat_n(Value::Null, r.cols.len()));
                    out.rows.push(combined);
                }
            }
        }
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// Window functions
// ----------------------------------------------------------------------

fn compute_windows(
    rel: &Relation,
    units: &[Unit],
    window_exprs: &[&Expr],
    outer: Option<&Scope<'_>>,
    env: &EvalEnv<'_>,
    aggregated: bool,
) -> EngineResult<WindowValues> {
    let mut out: WindowValues = HashMap::new();
    for wexpr in window_exprs {
        let key = wexpr.to_string();
        if out.contains_key(&key) {
            continue;
        }
        let call = match wexpr {
            Expr::Function(c) => c,
            _ => unreachable!("collect_window_calls only returns functions"),
        };
        let spec = call.over.as_ref().expect("window call has OVER");

        // Evaluate partition and order expressions per unit.
        let mut partition_keys: Vec<String> = Vec::with_capacity(units.len());
        let mut order_keys: Vec<Vec<Value>> = Vec::with_capacity(units.len());
        for (ui, unit) in units.iter().enumerate() {
            let scope = unit_scope(rel, unit, outer, None, ui, aggregated);
            let mut pk = Vec::with_capacity(spec.partition_by.len());
            for e in &spec.partition_by {
                pk.push(eval_expr(e, &scope, env)?.group_key());
            }
            partition_keys.push(pk.join("|"));
            let mut ok = Vec::with_capacity(spec.order_by.len());
            for o in &spec.order_by {
                ok.push(eval_expr(&o.expr, &scope, env)?);
            }
            order_keys.push(ok);
        }

        // Partition units.
        let mut partitions: HashMap<&str, Vec<usize>> = HashMap::new();
        for (ui, pk) in partition_keys.iter().enumerate() {
            partitions.entry(pk.as_str()).or_default().push(ui);
        }

        let mut values: Vec<Value> = vec![Value::Null; units.len()];
        for indices in partitions.values() {
            let mut sorted = indices.clone();
            sorted.sort_by(|&a, &b| {
                for (k, o) in spec.order_by.iter().enumerate() {
                    let ord = order_keys[a][k].total_cmp(&order_keys[b][k]);
                    let ord = if o.desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                a.cmp(&b)
            });

            let name = call.name.to_ascii_uppercase();
            match name.as_str() {
                "ROW_NUMBER" => {
                    for (pos, &ui) in sorted.iter().enumerate() {
                        values[ui] = Value::Integer(pos as i64 + 1);
                    }
                }
                "RANK" | "DENSE_RANK" => {
                    let mut rank = 0i64;
                    let mut dense = 0i64;
                    let mut prev: Option<&Vec<Value>> = None;
                    for (pos, &ui) in sorted.iter().enumerate() {
                        let tied = prev
                            .map(|p| {
                                p.len() == order_keys[ui].len()
                                    && p.iter()
                                        .zip(&order_keys[ui])
                                        .all(|(a, b)| a.total_cmp(b) == std::cmp::Ordering::Equal)
                            })
                            .unwrap_or(false);
                        if !tied {
                            rank = pos as i64 + 1;
                            dense += 1;
                        }
                        values[ui] = Value::Integer(if name == "RANK" { rank } else { dense });
                        prev = Some(&order_keys[ui]);
                    }
                }
                "NTILE" => {
                    let k = match call.args.first() {
                        Some(Expr::Literal(Literal::Integer(n))) if *n > 0 => *n as usize,
                        _ => {
                            return Err(EngineError::typing(
                                "NTILE requires a positive integer literal argument",
                            ))
                        }
                    };
                    let n = sorted.len();
                    for (pos, &ui) in sorted.iter().enumerate() {
                        // Standard NTILE distribution: earlier buckets get
                        // the remainder.
                        let bucket = (pos * k) / n.max(1);
                        values[ui] = Value::Integer(bucket as i64 + 1);
                    }
                }
                "LAG" | "LEAD" => {
                    // LAG/LEAD(expr [, offset [, default]]) within the
                    // partition's sort order.
                    if call.args.is_empty() || call.args.len() > 3 {
                        return Err(EngineError::typing(format!(
                            "{name} expects 1 to 3 arguments"
                        )));
                    }
                    let offset = match call.args.get(1) {
                        None => 1i64,
                        Some(Expr::Literal(Literal::Integer(n))) if *n >= 0 => *n,
                        _ => {
                            return Err(EngineError::typing(format!(
                                "{name} offset must be a non-negative integer literal"
                            )))
                        }
                    };
                    // Evaluate the carried expression for each unit first.
                    let mut carried = Vec::with_capacity(sorted.len());
                    for &ui in &sorted {
                        let scope = unit_scope(rel, &units[ui], outer, None, ui, aggregated);
                        carried.push(eval_expr(&call.args[0], &scope, env)?);
                    }
                    for (pos, &ui) in sorted.iter().enumerate() {
                        let source = if name == "LAG" {
                            pos.checked_sub(offset as usize)
                        } else {
                            pos.checked_add(offset as usize)
                                .filter(|p| *p < sorted.len())
                        };
                        values[ui] = match source {
                            Some(p) => carried[p].clone(),
                            None => match call.args.get(2) {
                                Some(default) => {
                                    let scope =
                                        unit_scope(rel, &units[ui], outer, None, ui, aggregated);
                                    eval_expr(default, &scope, env)?
                                }
                                None => Value::Null,
                            },
                        };
                    }
                }
                "FIRST_VALUE" | "LAST_VALUE" => {
                    if call.args.len() != 1 {
                        return Err(EngineError::typing(format!(
                            "{name} expects exactly one argument"
                        )));
                    }
                    // Whole-partition frame (no frame clauses), so
                    // LAST_VALUE sees the true partition end.
                    let pick = if name == "FIRST_VALUE" {
                        sorted.first()
                    } else {
                        sorted.last()
                    };
                    if let Some(&src) = pick {
                        let scope = unit_scope(rel, &units[src], outer, None, src, aggregated);
                        let v = eval_expr(&call.args[0], &scope, env)?;
                        for &ui in &sorted {
                            values[ui] = v.clone();
                        }
                    }
                }
                agg if functions::is_aggregate(agg) => {
                    // Aggregate over the whole partition (no frames).
                    let mut acc = Accumulator::for_function(agg, call.distinct, call.star)?;
                    for &ui in &sorted {
                        if call.star {
                            acc.update(&Value::Integer(1))?;
                        } else {
                            if call.args.len() != 1 {
                                return Err(EngineError::typing(format!(
                                    "window aggregate {agg} expects one argument"
                                )));
                            }
                            let scope = unit_scope(rel, &units[ui], outer, None, ui, aggregated);
                            let v = eval_expr(&call.args[0], &scope, env)?;
                            acc.update(&v)?;
                        }
                    }
                    let v = acc.finish();
                    for &ui in &sorted {
                        values[ui] = v.clone();
                    }
                }
                other => {
                    return Err(EngineError::binding(format!(
                        "unknown window function {other}"
                    )))
                }
            }
        }
        out.insert(key, values);
    }
    Ok(out)
}

/// Sort a finished result by output column names / positions only (used
/// for ORDER BY over set operations).
fn sort_result_by_output(rs: &mut ResultSet, order_by: &[OrderItem]) -> EngineResult<()> {
    if order_by.is_empty() {
        return Ok(());
    }
    let mut key_cols = Vec::with_capacity(order_by.len());
    for item in order_by {
        match order_key_source(item, &rs.columns)? {
            OrderSource::OutputColumn(ci) => key_cols.push((ci, item.desc)),
            OrderSource::Expression => {
                return Err(EngineError::typing(
                    "ORDER BY over a set operation must reference output columns",
                ))
            }
        }
    }
    rs.rows.sort_by(|a, b| {
        for &(ci, desc) in &key_cols {
            let ord = a[ci].total_cmp(&b[ci]);
            let ord = if desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Column, Table};
    use crate::value::{DataType, Date};

    fn test_db() -> Database {
        let mut db = Database::new("test");
        let mut orgs = Table::new(
            "ORGS",
            vec![
                Column::new("ID", DataType::Integer),
                Column::new("NAME", DataType::Text),
                Column::new("COUNTRY", DataType::Text),
                Column::new("OWNED", DataType::Text),
            ],
        );
        for (id, name, country, owned) in [
            (1, "Alpha", "Canada", "COC"),
            (2, "Beta", "Canada", "COC"),
            (3, "Gamma", "USA", "EXT"),
            (4, "Delta", "Canada", "EXT"),
            (5, "Epsilon", "Mexico", "COC"),
        ] {
            orgs.push_row(vec![
                Value::Integer(id),
                name.into(),
                country.into(),
                owned.into(),
            ])
            .unwrap();
        }
        db.add_table(orgs).unwrap();

        let mut fin = Table::new(
            "FINANCIALS",
            vec![
                Column::new("ORG_ID", DataType::Integer),
                Column::new("FIN_MONTH", DataType::Date),
                Column::new("REVENUE", DataType::Integer),
            ],
        );
        let rows = [
            (1, (2023, 2), 100),
            (1, (2023, 5), 150),
            (2, (2023, 2), 200),
            (2, (2023, 5), 180),
            (3, (2023, 2), 300),
            (3, (2023, 5), 330),
            (5, (2023, 5), 90),
        ];
        for (org, (y, m), rev) in rows {
            fin.push_row(vec![
                Value::Integer(org),
                Value::Date(Date::new(y, m, 1).unwrap()),
                Value::Integer(rev),
            ])
            .unwrap();
        }
        db.add_table(fin).unwrap();
        db
    }

    fn run(sql: &str) -> ResultSet {
        let db = test_db();
        execute_sql(&db, sql).unwrap_or_else(|e| panic!("{sql}: {e}"))
    }

    fn run_err(sql: &str) -> EngineError {
        let db = test_db();
        execute_sql(&db, sql).unwrap_err()
    }

    fn ints(rs: &ResultSet) -> Vec<i64> {
        rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect()
    }

    fn texts(rs: &ResultSet, col: usize) -> Vec<String> {
        rs.rows.iter().map(|r| r[col].to_string()).collect()
    }

    #[test]
    fn select_constant() {
        let rs = run("SELECT 1 + 2 AS x");
        assert_eq!(rs.columns, vec!["x"]);
        assert_eq!(ints(&rs), vec![3]);
    }

    #[test]
    fn timed_execution_reports_stats() {
        let db = test_db();
        let (result, stats) = execute_sql_timed(&db, "SELECT ID, NAME FROM ORGS");
        assert!(result.is_ok());
        assert_eq!(stats.rows, 5);
        assert_eq!(stats.columns, 2);
        assert!(stats.parse > std::time::Duration::ZERO);
        assert!(stats.execute > std::time::Duration::ZERO);

        // Parse failure: no execution time, no rows.
        let (result, stats) = execute_sql_timed(&db, "SELEC nope");
        assert!(result.is_err());
        assert_eq!(stats.execute, std::time::Duration::ZERO);
        assert_eq!(stats.rows, 0);

        // Binding failure: executed (and failed), zero-size output.
        let (result, stats) = execute_sql_timed(&db, "SELECT * FROM MISSING");
        assert!(result.is_err());
        assert_eq!((stats.rows, stats.columns), (0, 0));
    }

    #[test]
    fn exec_stats_record_into_registry() {
        let db = test_db();
        let metrics = genedit_telemetry::MetricsRegistry::new();
        let (_, stats) = execute_sql_timed(&db, "SELECT * FROM ORGS");
        stats.record(&metrics, "validate");
        let snap = metrics.snapshot();
        assert_eq!(snap.histograms["sql.validate.parse_ms"].count, 1);
        assert_eq!(snap.histograms["sql.validate.execute_ms"].count, 1);
        assert_eq!(snap.histograms["sql.validate.rows"].p50, 5.0);
    }

    #[test]
    fn where_filters() {
        let rs = run("SELECT NAME FROM ORGS WHERE COUNTRY = 'Canada' ORDER BY NAME");
        assert_eq!(texts(&rs, 0), vec!["Alpha", "Beta", "Delta"]);
    }

    #[test]
    fn wildcard_and_qualified_wildcard() {
        let rs = run("SELECT * FROM ORGS");
        assert_eq!(rs.columns.len(), 4);
        assert_eq!(rs.rows.len(), 5);
        let rs = run("SELECT o.* FROM ORGS o WHERE o.ID = 1");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.columns.len(), 4);
    }

    #[test]
    fn order_by_desc_and_limit() {
        let rs = run("SELECT ID FROM ORGS ORDER BY ID DESC LIMIT 2");
        assert_eq!(ints(&rs), vec![5, 4]);
    }

    #[test]
    fn order_by_position() {
        let rs = run("SELECT NAME, ID FROM ORGS ORDER BY 2 DESC LIMIT 1");
        assert_eq!(texts(&rs, 0), vec!["Epsilon"]);
    }

    #[test]
    fn order_by_alias() {
        let rs = run("SELECT ID * 10 AS tens FROM ORGS ORDER BY tens DESC LIMIT 1");
        assert_eq!(ints(&rs), vec![50]);
    }

    #[test]
    fn group_by_aggregates() {
        let rs = run("SELECT COUNTRY, COUNT(*) AS n, SUM(ID) AS total FROM ORGS \
             GROUP BY COUNTRY ORDER BY COUNTRY");
        assert_eq!(texts(&rs, 0), vec!["Canada", "Mexico", "USA"]);
        assert_eq!(
            rs.rows
                .iter()
                .map(|r| r[1].as_i64().unwrap())
                .collect::<Vec<_>>(),
            vec![3, 1, 1]
        );
        assert_eq!(
            rs.rows
                .iter()
                .map(|r| r[2].as_i64().unwrap())
                .collect::<Vec<_>>(),
            vec![7, 5, 3]
        );
    }

    #[test]
    fn implicit_whole_table_aggregate() {
        let rs = run("SELECT COUNT(*), MIN(ID), MAX(ID), AVG(ID) FROM ORGS");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0].as_i64(), Some(5));
        assert_eq!(rs.rows[0][1].as_i64(), Some(1));
        assert_eq!(rs.rows[0][2].as_i64(), Some(5));
        assert_eq!(rs.rows[0][3].as_f64(), Some(3.0));
    }

    #[test]
    fn aggregate_over_empty_table_yields_one_row() {
        let rs = run("SELECT COUNT(*) FROM ORGS WHERE ID > 1000");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0].as_i64(), Some(0));
    }

    #[test]
    fn group_by_on_empty_input_yields_no_rows() {
        let rs = run("SELECT COUNTRY, COUNT(*) FROM ORGS WHERE ID > 1000 GROUP BY COUNTRY");
        assert!(rs.rows.is_empty());
        assert_eq!(rs.columns.len(), 2);
    }

    #[test]
    fn having_filters_groups() {
        let rs = run("SELECT COUNTRY FROM ORGS GROUP BY COUNTRY HAVING COUNT(*) > 1");
        assert_eq!(texts(&rs, 0), vec!["Canada"]);
    }

    #[test]
    fn join_inner() {
        let rs = run(
            "SELECT o.NAME, f.REVENUE FROM ORGS o JOIN FINANCIALS f ON o.ID = f.ORG_ID \
             WHERE f.REVENUE > 250 ORDER BY f.REVENUE",
        );
        assert_eq!(texts(&rs, 0), vec!["Gamma", "Gamma"]);
    }

    #[test]
    fn join_left_pads_nulls() {
        let rs = run(
            "SELECT o.NAME, f.REVENUE FROM ORGS o LEFT JOIN FINANCIALS f ON o.ID = f.ORG_ID \
             WHERE f.REVENUE IS NULL",
        );
        // Delta (id 4) has no financials.
        assert_eq!(texts(&rs, 0), vec!["Delta"]);
    }

    #[test]
    fn cross_join_counts() {
        let rs = run("SELECT COUNT(*) FROM ORGS a CROSS JOIN ORGS b");
        assert_eq!(rs.rows[0][0].as_i64(), Some(25));
    }

    #[test]
    fn conditional_aggregation_paper_pattern() {
        // The paper's Q_fin-perf pattern: quarterly pivot via CASE in SUM.
        let rs = run(
            "SELECT o.NAME, \
               SUM(CASE WHEN TO_CHAR(f.FIN_MONTH, 'YYYY\"Q\"Q') = '2023Q1' THEN f.REVENUE ELSE 0 END) AS q1, \
               SUM(CASE WHEN TO_CHAR(f.FIN_MONTH, 'YYYY\"Q\"Q') = '2023Q2' THEN f.REVENUE ELSE 0 END) AS q2 \
             FROM ORGS o JOIN FINANCIALS f ON o.ID = f.ORG_ID \
             GROUP BY o.NAME ORDER BY o.NAME",
        );
        assert_eq!(texts(&rs, 0), vec!["Alpha", "Beta", "Epsilon", "Gamma"]);
        let q1: Vec<i64> = rs.rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
        let q2: Vec<i64> = rs.rows.iter().map(|r| r[2].as_i64().unwrap()).collect();
        assert_eq!(q1, vec![100, 200, 0, 300]);
        assert_eq!(q2, vec![150, 180, 90, 330]);
    }

    #[test]
    fn cte_pipeline() {
        let rs = run(
            "WITH canadian AS (SELECT ID, NAME FROM ORGS WHERE COUNTRY = 'Canada'), \
                  rich AS (SELECT c.NAME, SUM(f.REVENUE) AS total \
                           FROM canadian c JOIN FINANCIALS f ON c.ID = f.ORG_ID \
                           GROUP BY c.NAME) \
             SELECT NAME, total FROM rich ORDER BY total DESC",
        );
        assert_eq!(texts(&rs, 0), vec!["Beta", "Alpha"]);
    }

    #[test]
    fn cte_shadows_table() {
        let rs = run("WITH ORGS AS (SELECT 42 AS ID) SELECT ID FROM ORGS");
        assert_eq!(ints(&rs), vec![42]);
    }

    #[test]
    fn window_row_number() {
        let rs = run(
            "SELECT NAME, ROW_NUMBER() OVER (PARTITION BY COUNTRY ORDER BY ID) AS rn \
             FROM ORGS ORDER BY NAME",
        );
        let by_name: Vec<(String, i64)> = rs
            .rows
            .iter()
            .map(|r| (r[0].to_string(), r[1].as_i64().unwrap()))
            .collect();
        assert_eq!(
            by_name,
            vec![
                ("Alpha".into(), 1),
                ("Beta".into(), 2),
                ("Delta".into(), 3),
                ("Epsilon".into(), 1),
                ("Gamma".into(), 1),
            ]
        );
    }

    #[test]
    fn window_rank_with_ties() {
        let rs = run("SELECT OWNED, RANK() OVER (ORDER BY COUNTRY) AS r, \
                    DENSE_RANK() OVER (ORDER BY COUNTRY) AS d \
             FROM ORGS ORDER BY COUNTRY, OWNED");
        let ranks: Vec<i64> = rs.rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
        let dense: Vec<i64> = rs.rows.iter().map(|r| r[2].as_i64().unwrap()).collect();
        assert_eq!(ranks, vec![1, 1, 1, 4, 5]);
        assert_eq!(dense, vec![1, 1, 1, 2, 3]);
    }

    #[test]
    fn window_aggregate_over_partition() {
        let rs =
            run("SELECT NAME, SUM(ID) OVER (PARTITION BY COUNTRY) AS s FROM ORGS ORDER BY NAME");
        let sums: Vec<i64> = rs.rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
        // Canada: 1+2+4=7 (Alpha, Beta, Delta), Mexico 5, USA 3.
        assert_eq!(sums, vec![7, 7, 7, 5, 3]);
    }

    #[test]
    fn window_over_grouped_query() {
        let rs = run("SELECT COUNTRY, SUM(ID) AS s, \
                    RANK() OVER (ORDER BY SUM(ID) DESC) AS r \
             FROM ORGS GROUP BY COUNTRY ORDER BY r");
        assert_eq!(texts(&rs, 0), vec!["Canada", "Mexico", "USA"]);
    }

    #[test]
    fn distinct_dedupes() {
        let rs = run("SELECT DISTINCT COUNTRY FROM ORGS ORDER BY COUNTRY");
        assert_eq!(texts(&rs, 0), vec!["Canada", "Mexico", "USA"]);
    }

    #[test]
    fn count_distinct() {
        let rs = run("SELECT COUNT(DISTINCT COUNTRY) FROM ORGS");
        assert_eq!(rs.rows[0][0].as_i64(), Some(3));
    }

    #[test]
    fn in_subquery() {
        let rs = run(
            "SELECT NAME FROM ORGS WHERE ID IN (SELECT ORG_ID FROM FINANCIALS WHERE REVENUE > 250) ",
        );
        assert_eq!(texts(&rs, 0), vec!["Gamma"]);
    }

    #[test]
    fn not_in_subquery() {
        let rs = run(
            "SELECT NAME FROM ORGS WHERE ID NOT IN (SELECT ORG_ID FROM FINANCIALS) ORDER BY NAME",
        );
        assert_eq!(texts(&rs, 0), vec!["Delta"]);
    }

    #[test]
    fn correlated_exists() {
        let rs = run("SELECT NAME FROM ORGS o WHERE EXISTS \
             (SELECT 1 FROM FINANCIALS f WHERE f.ORG_ID = o.ID AND f.REVENUE > 250)");
        assert_eq!(texts(&rs, 0), vec!["Gamma"]);
    }

    #[test]
    fn scalar_subquery() {
        let rs = run("SELECT (SELECT MAX(REVENUE) FROM FINANCIALS) AS m");
        assert_eq!(rs.rows[0][0].as_i64(), Some(330));
    }

    #[test]
    fn correlated_scalar_subquery() {
        let rs = run(
            "SELECT NAME, (SELECT SUM(REVENUE) FROM FINANCIALS f WHERE f.ORG_ID = o.ID) AS t \
             FROM ORGS o ORDER BY NAME",
        );
        assert_eq!(rs.rows[0][1].as_i64(), Some(250)); // Alpha
        assert!(rs.rows[2][1].is_null()); // Delta: SUM of nothing is NULL
    }

    #[test]
    fn derived_table() {
        let rs = run("SELECT t.NAME FROM (SELECT NAME FROM ORGS WHERE COUNTRY = 'USA') AS t");
        assert_eq!(texts(&rs, 0), vec!["Gamma"]);
    }

    #[test]
    fn union_and_union_all() {
        let rs = run("SELECT COUNTRY FROM ORGS UNION SELECT COUNTRY FROM ORGS ORDER BY COUNTRY");
        assert_eq!(rs.rows.len(), 3);
        let rs = run("SELECT COUNTRY FROM ORGS UNION ALL SELECT COUNTRY FROM ORGS");
        assert_eq!(rs.rows.len(), 10);
    }

    #[test]
    fn intersect_and_except() {
        let rs = run("SELECT COUNTRY FROM ORGS WHERE OWNED = 'COC' \
             INTERSECT SELECT COUNTRY FROM ORGS WHERE OWNED = 'EXT'");
        assert_eq!(texts(&rs, 0), vec!["Canada"]);
        let rs =
            run("SELECT COUNTRY FROM ORGS EXCEPT SELECT COUNTRY FROM ORGS WHERE OWNED = 'EXT' ");
        let mut got = texts(&rs, 0);
        got.sort();
        assert_eq!(got, vec!["Mexico"]);
    }

    #[test]
    fn set_op_arity_mismatch() {
        let e = run_err("SELECT ID, NAME FROM ORGS UNION SELECT ID FROM ORGS");
        assert!(matches!(e, EngineError::Type { .. }));
    }

    #[test]
    fn unknown_table_is_binding_error() {
        let e = run_err("SELECT * FROM NOPE");
        assert!(matches!(e, EngineError::Binding { .. }));
        assert!(e.is_semantic());
    }

    #[test]
    fn unknown_column_is_binding_error() {
        let e = run_err("SELECT WIBBLE FROM ORGS");
        assert!(matches!(e, EngineError::Binding { .. }));
    }

    #[test]
    fn ambiguous_column_is_binding_error() {
        let e = run_err("SELECT ID FROM ORGS a JOIN ORGS b ON a.ID = b.ID");
        assert!(matches!(e, EngineError::Binding { .. }));
        assert!(e.to_string().contains("ambiguous"));
    }

    #[test]
    fn three_valued_logic_in_where() {
        // NULL comparisons must not satisfy WHERE.
        let rs = run(
            "SELECT o.NAME FROM ORGS o LEFT JOIN FINANCIALS f ON o.ID = f.ORG_ID \
             WHERE f.REVENUE > 0 OR f.REVENUE <= 0",
        );
        assert!(!texts(&rs, 0).contains(&"Delta".to_string()));
    }

    #[test]
    fn division_semantics() {
        let rs = run("SELECT 7 / 2, 7.0 / 2, 7 / 0, CAST(7 AS FLOAT) / 2");
        assert_eq!(rs.rows[0][0].as_i64(), Some(3)); // integer division
        assert_eq!(rs.rows[0][1].as_f64(), Some(3.5));
        assert!(rs.rows[0][2].is_null()); // divide by zero -> NULL
        assert_eq!(rs.rows[0][3].as_f64(), Some(3.5));
    }

    #[test]
    fn like_and_between() {
        let rs =
            run("SELECT NAME FROM ORGS WHERE NAME LIKE '%a' AND ID BETWEEN 1 AND 4 ORDER BY NAME");
        assert_eq!(texts(&rs, 0), vec!["Alpha", "Beta", "Delta", "Gamma"]);
    }

    #[test]
    fn case_without_else_is_null() {
        let rs = run("SELECT CASE WHEN 1 = 2 THEN 'x' END");
        assert!(rs.rows[0][0].is_null());
    }

    #[test]
    fn full_paper_query_shape_runs() {
        // A condensed Q_fin-perf: per-org RPV-style ratio change with
        // ranking, over the test data.
        let rs = run(
            "WITH F AS ( \
               SELECT ORG_ID, \
                 SUM(CASE WHEN TO_CHAR(FIN_MONTH, 'YYYY\"Q\"Q') = '2023Q1' THEN REVENUE ELSE 0 END) AS R1, \
                 SUM(CASE WHEN TO_CHAR(FIN_MONTH, 'YYYY\"Q\"Q') = '2023Q2' THEN REVENUE ELSE 0 END) AS R2 \
               FROM FINANCIALS GROUP BY ORG_ID \
             ), \
             D AS ( \
               SELECT o.NAME, CAST(f.R2 AS FLOAT) / NULLIF(f.R1, 0) AS growth, \
                      ROW_NUMBER() OVER (ORDER BY CAST(f.R2 AS FLOAT) / NULLIF(f.R1, 0) DESC) AS rnk \
               FROM F f JOIN ORGS o ON o.ID = f.ORG_ID \
               WHERE o.OWNED = 'COC' \
             ) \
             SELECT NAME, growth, rnk FROM D WHERE rnk <= 5 ORDER BY rnk",
        );
        // COC orgs with financials: Alpha (150/100=1.5), Beta (0.9),
        // Epsilon (90/0 -> NULL).
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[0][0].to_string(), "Alpha");
        assert!((rs.rows[0][1].as_f64().unwrap() - 1.5).abs() < 1e-9);
        assert_eq!(rs.rows[1][0].to_string(), "Beta");
        assert!(rs.rows[2][1].is_null()); // Epsilon's NULL growth ranks last? (nulls sort first asc; DESC -> last)
    }

    #[test]
    fn select_star_with_group_by_rejected() {
        let e = run_err("SELECT * FROM ORGS GROUP BY COUNTRY");
        assert!(matches!(e, EngineError::Type { .. }));
    }

    #[test]
    fn ranking_without_over_rejected() {
        let e = run_err("SELECT ROW_NUMBER() FROM ORGS");
        assert!(matches!(e, EngineError::Type { .. }));
    }

    #[test]
    fn group_concat() {
        let rs =
            run("SELECT COUNTRY, GROUP_CONCAT(NAME) FROM ORGS GROUP BY COUNTRY ORDER BY COUNTRY");
        assert_eq!(rs.rows[0][1].to_string(), "Alpha,Beta,Delta");
    }

    #[test]
    fn lag_and_lead_over_partition() {
        // Per-country revenue trail: LAG looks back in ID order.
        let rs = run(
            "SELECT ID, LAG(ID) OVER (PARTITION BY COUNTRY ORDER BY ID) AS prev, \
                    LEAD(ID) OVER (PARTITION BY COUNTRY ORDER BY ID) AS next \
             FROM ORGS ORDER BY ID",
        );
        // Canada: ids 1, 2, 4.
        let by_id: Vec<(i64, Option<i64>, Option<i64>)> = rs
            .rows
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64(), r[2].as_i64()))
            .collect();
        assert_eq!(by_id[0], (1, None, Some(2)));
        assert_eq!(by_id[1], (2, Some(1), Some(4)));
        assert_eq!(by_id[3], (4, Some(2), None));
        // Singleton partitions see NULL on both sides.
        assert_eq!(by_id[2], (3, None, None));
    }

    #[test]
    fn lag_with_offset_and_default() {
        let rs = run("SELECT ID, LAG(ID, 2, 0) OVER (ORDER BY ID) AS l2 FROM ORGS ORDER BY ID");
        let l2: Vec<i64> = rs.rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
        assert_eq!(l2, vec![0, 0, 1, 2, 3]);
    }

    #[test]
    fn first_and_last_value() {
        let rs = run(
            "SELECT COUNTRY, FIRST_VALUE(NAME) OVER (PARTITION BY COUNTRY ORDER BY ID) AS f, \
                    LAST_VALUE(NAME) OVER (PARTITION BY COUNTRY ORDER BY ID) AS l \
             FROM ORGS WHERE COUNTRY = 'Canada'",
        );
        for row in &rs.rows {
            assert_eq!(row[1].to_string(), "Alpha");
            assert_eq!(row[2].to_string(), "Delta");
        }
    }

    #[test]
    fn lag_requires_valid_offset() {
        let e = run_err("SELECT LAG(ID, ID) OVER (ORDER BY ID) FROM ORGS");
        assert!(matches!(e, EngineError::Type { .. }));
    }

    #[test]
    fn ntile_distribution() {
        let rs = run("SELECT ID, NTILE(2) OVER (ORDER BY ID) AS t FROM ORGS ORDER BY ID");
        let tiles: Vec<i64> = rs.rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
        assert_eq!(tiles, vec![1, 1, 1, 2, 2]);
    }

    #[test]
    fn having_without_group_by_gates_whole_table_aggregate() {
        // HAVING over the implicit single group: keeps or drops the one row.
        let rs = run("SELECT SUM(ID) FROM ORGS HAVING COUNT(*) > 3");
        assert_eq!(rs.rows.len(), 1);
        let rs = run("SELECT SUM(ID) FROM ORGS HAVING COUNT(*) > 99");
        assert!(rs.rows.is_empty());
    }

    #[test]
    fn group_by_expression_key() {
        // Grouping on a computed key, not just a column.
        let rs = run("SELECT ID % 2 AS parity, COUNT(*) FROM ORGS GROUP BY ID % 2 ORDER BY parity");
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][1].as_i64(), Some(2)); // even: 2, 4
        assert_eq!(rs.rows[1][1].as_i64(), Some(3)); // odd: 1, 3, 5
    }

    #[test]
    fn case_simple_form_with_null_operand_matches_nothing() {
        // NULL = anything is unknown, so only ELSE fires.
        let rs = run("SELECT CASE NULL WHEN NULL THEN 'eq' ELSE 'else' END");
        assert_eq!(rs.rows[0][0].to_string(), "else");
    }

    #[test]
    fn in_list_with_null_is_three_valued() {
        // 1 IN (2, NULL) is unknown → excluded by WHERE but distinct from
        // false under NOT.
        let rs = run("SELECT ID FROM ORGS WHERE ID IN (99, NULL)");
        assert!(rs.rows.is_empty());
        let rs = run("SELECT ID FROM ORGS WHERE NOT (ID IN (99, NULL))");
        assert!(rs.rows.is_empty(), "NOT unknown is still unknown");
        let rs = run("SELECT ID FROM ORGS WHERE ID IN (1, NULL)");
        assert_eq!(ints(&rs), vec![1]);
    }

    #[test]
    fn order_by_null_aggregates_sort_first_ascending() {
        let rs = run("SELECT o.NAME, SUM(f.REVENUE) AS s FROM ORGS o \
             LEFT JOIN FINANCIALS f ON o.ID = f.ORG_ID \
             GROUP BY o.NAME ORDER BY s, o.NAME");
        assert!(
            rs.rows[0][1].is_null(),
            "NULL total sorts first: {:?}",
            rs.rows[0]
        );
        assert_eq!(rs.rows[0][0].to_string(), "Delta");
    }

    #[test]
    fn nested_cte_shadowing_inner_wins() {
        let rs = run("WITH x AS (SELECT 1 AS v) \
             SELECT * FROM (WITH x AS (SELECT 2 AS v) SELECT v FROM x) AS inner_q");
        assert_eq!(ints(&rs), vec![2]);
    }

    #[test]
    fn limit_larger_than_rows_is_harmless() {
        let rs = run("SELECT ID FROM ORGS LIMIT 999");
        assert_eq!(rs.rows.len(), 5);
    }

    #[test]
    fn concat_operator_and_null_propagation() {
        let rs = run("SELECT 'a' || 'b' || 'c', 'a' || NULL");
        assert_eq!(rs.rows[0][0].to_string(), "abc");
        assert!(rs.rows[0][1].is_null());
    }

    #[test]
    fn distinct_on_multiple_columns() {
        let rs = run("SELECT DISTINCT COUNTRY, OWNED FROM ORGS");
        // (Canada,COC),(Canada,EXT),(USA,EXT),(Mexico,COC)
        assert_eq!(rs.rows.len(), 4);
    }

    #[test]
    fn union_mixed_numeric_types_compare_by_value() {
        // 1 (int) and 1.0 (float) are distinct under group_key — column
        // typing is preserved, as in the EX metric.
        let rs = run("SELECT 1 UNION SELECT 1.0");
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn where_on_window_output_requires_subquery() {
        // Window values are not visible in the same SELECT's WHERE; the
        // CTE workaround must work (how all gold queries rank-filter).
        let e = run_err("SELECT ROW_NUMBER() OVER (ORDER BY ID) AS r FROM ORGS WHERE r <= 2");
        assert!(e.is_semantic());
        let rs = run(
            "WITH w AS (SELECT ID, ROW_NUMBER() OVER (ORDER BY ID) AS r FROM ORGS) \
             SELECT ID FROM w WHERE r <= 2 ORDER BY ID",
        );
        assert_eq!(ints(&rs), vec![1, 2]);
    }

    #[test]
    fn limit_zero() {
        let rs = run("SELECT ID FROM ORGS LIMIT 0");
        assert!(rs.rows.is_empty());
        assert_eq!(rs.columns, vec!["ID"]);
    }
}
