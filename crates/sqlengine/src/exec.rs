//! Query execution: engine dispatch, set operations, and the vectorized
//! columnar planner.
//!
//! Two engines share one semantic contract. The default
//! [`Engine::Vectorized`] path resolves FROM clauses into columnar
//! [`DataChunk`] batches (hash joins for equi-joins), evaluates WHERE /
//! group keys / aggregate arguments batch-at-a-time, and falls back to
//! row-at-a-time evaluation for anything the batch evaluator cannot
//! lower — so results, fingerprints, and error behavior stay identical
//! to [`Engine::Reference`], the original materializing interpreter
//! (kept fully reachable in `reference`). CTEs are materialized once in
//! definition order and visible to later CTEs and the main body,
//! matching the CTE-normal-form queries GenEdit generates (§3.1.2).

use crate::aggregate::Accumulator;
use crate::array::{Array, DataChunk};
use crate::ast::*;
use crate::catalog::Database;
use crate::error::{EngineError, EngineResult};
use crate::eval::{
    collect_aggregate_calls, collect_unconditional_aggregates, collect_window_calls,
    contains_aggregate, eval_expr, AggValues, ColMeta, EvalEnv, Relation, Scope, WindowValues,
};
use crate::key::{key_elem, key_ref, row_key, KeyElem, KeyRef};
use crate::parser::parse_statement;
use crate::physical::{self, SqlCounters};
use crate::reference;
use crate::result::ResultSet;
use crate::value::Value;
use crate::vector::{self, Sel};
use crate::window::{compute_windows, unit_scope, Unit};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;

/// CTE name → materialized result, keyed by lowercase name.
pub type CteMap = HashMap<String, Arc<ResultSet>>;

// ----------------------------------------------------------------------
// Engine selection
// ----------------------------------------------------------------------

/// Which execution engine runs SELECT bodies on this thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Batch-at-a-time columnar execution (the default).
    Vectorized,
    /// The original row-at-a-time interpreter, kept as the semantic
    /// baseline for differential testing and benchmarking.
    Reference,
}

thread_local! {
    static ENGINE: Cell<Engine> = const { Cell::new(Engine::Vectorized) };
}

/// The engine SELECT bodies currently execute on (per thread).
pub fn current_engine() -> Engine {
    ENGINE.with(Cell::get)
}

/// Run `f` with `engine` selected on this thread, restoring the previous
/// selection afterwards.
pub fn with_engine<T>(engine: Engine, f: impl FnOnce() -> T) -> T {
    let prev = ENGINE.with(|e| e.replace(engine));
    let out = f();
    ENGINE.with(|e| e.set(prev));
    out
}

/// Parse and execute a SQL string on the reference row-at-a-time
/// interpreter, regardless of the thread's current engine selection.
pub fn execute_sql_reference(db: &Database, sql: &str) -> EngineResult<ResultSet> {
    with_engine(Engine::Reference, || execute_sql(db, sql))
}

/// Parse and execute a SQL string against a database.
pub fn execute_sql(db: &Database, sql: &str) -> EngineResult<ResultSet> {
    let stmt = parse_statement(sql)?;
    execute(db, &stmt)
}

/// Timing and output-size observations from one [`execute_sql_timed`]
/// call. `rows`/`columns` are zero when the statement failed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Time spent parsing the statement.
    pub parse: std::time::Duration,
    /// Time spent executing it (zero when parsing failed).
    pub execute: std::time::Duration,
    /// Rows in the result set.
    pub rows: usize,
    /// Columns in the result set.
    pub columns: usize,
    /// Columnar execution counters (all zero on the reference engine).
    pub counters: SqlCounters,
}

impl ExecStats {
    /// Record into a metrics registry as `sql.<stage>.parse_ms` /
    /// `.execute_ms` histograms, a `sql.<stage>.rows` histogram, and the
    /// columnar counters (`.batches`, `.rows_scanned`,
    /// `.join_build_ms` / `.join_probe_ms`).
    pub fn record(&self, metrics: &genedit_telemetry::MetricsRegistry, stage: &str) {
        metrics.observe_duration(&format!("sql.{stage}.parse_ms"), self.parse);
        metrics.observe_duration(&format!("sql.{stage}.execute_ms"), self.execute);
        metrics.observe(&format!("sql.{stage}.rows"), self.rows as f64);
        metrics.observe(
            &format!("sql.{stage}.batches"),
            self.counters.batches as f64,
        );
        metrics.observe(
            &format!("sql.{stage}.rows_scanned"),
            self.counters.rows_scanned as f64,
        );
        metrics.observe(
            &format!("sql.{stage}.join_build_ms"),
            self.counters.join_build_ns as f64 / 1e6,
        );
        metrics.observe(
            &format!("sql.{stage}.join_probe_ms"),
            self.counters.join_probe_ns as f64 / 1e6,
        );
    }
}

/// Like [`execute_sql`], also reporting parse/execute timings and result
/// size — the telemetry view of the execution-guided validation loop.
pub fn execute_sql_timed(db: &Database, sql: &str) -> (EngineResult<ResultSet>, ExecStats) {
    let mut stats = ExecStats::default();
    let t = std::time::Instant::now();
    let stmt = match parse_statement(sql) {
        Ok(stmt) => {
            stats.parse = t.elapsed();
            stmt
        }
        Err(e) => {
            stats.parse = t.elapsed();
            return (Err(e), stats);
        }
    };
    physical::take_counters(); // reset, so stats cover only this call
    let t = std::time::Instant::now();
    let result = execute(db, &stmt);
    stats.execute = t.elapsed();
    stats.counters = physical::take_counters();
    if let Ok(rs) = &result {
        stats.rows = rs.row_count();
        stats.columns = rs.columns.len();
    }
    (result, stats)
}

/// Execute a parsed statement.
pub fn execute(db: &Database, stmt: &Statement) -> EngineResult<ResultSet> {
    match stmt {
        Statement::Query(q) => execute_query_with_outer(db, q, &CteMap::new(), None),
    }
}

/// Execute a query, optionally with an outer row scope for correlated
/// subqueries and a set of inherited CTEs.
pub fn execute_query_with_outer(
    db: &Database,
    query: &Query,
    inherited: &CteMap,
    outer: Option<&Scope<'_>>,
) -> EngineResult<ResultSet> {
    let mut ctes = inherited.clone();
    for cte in &query.ctes {
        // CTEs see previously defined CTEs but not the outer row scope.
        let result = execute_query_with_outer(db, &cte.query, &ctes, None)?;
        ctes.insert(cte.name.to_lowercase(), Arc::new(result));
    }

    match &query.body {
        SetExpr::Select(select) => {
            exec_select(db, select, &ctes, outer, &query.order_by, query.limit)
        }
        SetExpr::SetOp { .. } => {
            let mut rs = exec_set_expr(db, &query.body, &ctes, outer)?;
            sort_result_by_output(&mut rs, &query.order_by)?;
            if let Some(n) = query.limit {
                rs.rows.truncate(n as usize);
            }
            Ok(rs)
        }
    }
}

/// Dispatch one SELECT body to the engine selected on this thread, so
/// subqueries and CTEs stay in-engine with their parent query.
fn exec_select(
    db: &Database,
    select: &Select,
    ctes: &CteMap,
    outer: Option<&Scope<'_>>,
    order_by: &[OrderItem],
    limit: Option<u64>,
) -> EngineResult<ResultSet> {
    match current_engine() {
        Engine::Vectorized => exec_select_vectorized(db, select, ctes, outer, order_by, limit),
        Engine::Reference => reference::exec_select(db, select, ctes, outer, order_by, limit),
    }
}

fn exec_set_expr(
    db: &Database,
    body: &SetExpr,
    ctes: &CteMap,
    outer: Option<&Scope<'_>>,
) -> EngineResult<ResultSet> {
    match body {
        SetExpr::Select(select) => exec_select(db, select, ctes, outer, &[], None),
        SetExpr::SetOp {
            op,
            all,
            left,
            right,
        } => {
            let l = exec_set_expr(db, left, ctes, outer)?;
            let r = exec_set_expr(db, right, ctes, outer)?;
            if l.columns.len() != r.columns.len() {
                return Err(EngineError::typing(format!(
                    "set operation arity mismatch: {} vs {} columns",
                    l.columns.len(),
                    r.columns.len()
                )));
            }
            let mut out = ResultSet::new(l.columns.clone());
            match (op, all) {
                (SetOp::Union, true) => {
                    out.rows = l.rows;
                    out.rows.extend(r.rows);
                }
                (SetOp::Union, false) => {
                    let mut seen: std::collections::HashSet<Vec<KeyElem>> =
                        std::collections::HashSet::new();
                    for row in l.rows.into_iter().chain(r.rows) {
                        if seen.insert(row_key(&row)) {
                            out.rows.push(row);
                        }
                    }
                }
                (SetOp::Intersect, all) => {
                    let mut right_counts: HashMap<Vec<KeyElem>, usize> = HashMap::new();
                    for row in &r.rows {
                        *right_counts.entry(row_key(row)).or_insert(0) += 1;
                    }
                    let mut emitted: HashMap<Vec<KeyElem>, usize> = HashMap::new();
                    for row in l.rows {
                        let k = row_key(&row);
                        let avail = right_counts.get(&k).copied().unwrap_or(0);
                        let used = emitted.entry(k).or_insert(0);
                        let cap = if *all { avail } else { avail.min(1) };
                        if *used < cap {
                            *used += 1;
                            out.rows.push(row);
                        }
                    }
                }
                (SetOp::Except, all) => {
                    let mut right_counts: HashMap<Vec<KeyElem>, usize> = HashMap::new();
                    for row in &r.rows {
                        *right_counts.entry(row_key(row)).or_insert(0) += 1;
                    }
                    let mut emitted: HashMap<Vec<KeyElem>, usize> = HashMap::new();
                    for row in l.rows {
                        let k = row_key(&row);
                        let blocked = right_counts.get(&k).copied().unwrap_or(0);
                        let count = emitted.entry(k).or_insert(0);
                        *count += 1;
                        let keep = if *all {
                            *count > blocked
                        } else {
                            blocked == 0 && *count == 1
                        };
                        if keep {
                            out.rows.push(row);
                        }
                    }
                }
            }
            Ok(out)
        }
    }
}

// ----------------------------------------------------------------------
// Vectorized SELECT
// ----------------------------------------------------------------------

fn exec_select_vectorized(
    db: &Database,
    select: &Select,
    ctes: &CteMap,
    outer: Option<&Scope<'_>>,
    order_by: &[OrderItem],
    limit: Option<u64>,
) -> EngineResult<ResultSet> {
    let env = EvalEnv { db, ctes };

    // FROM → columnar source.
    let source = match &select.from {
        Some(tr) => physical::resolve_from_columnar(db, tr, ctes, outer)?,
        None => physical::Source {
            cols: Vec::new(),
            chunk: DataChunk::unit(),
        },
    };
    let physical::Source { cols, chunk } = source;

    // WHERE → surviving row indices (`None` = keep everything). The
    // gather is deferred so the pure path can project straight off the
    // source columns under a selection vector. Batch evaluation when the
    // predicate lowers; otherwise the row path reproduces per-row errors
    // exactly.
    let keep: Option<Vec<u32>> = match &select.selection {
        None => None,
        Some(pred) => match vector::bind(pred, &cols, outer) {
            Some(v) => {
                let arr = vector::eval(&v, &chunk, Sel::All)?;
                let truth = vector::truth(&arr)?;
                Some(
                    truth
                        .iter()
                        .enumerate()
                        .filter(|&(_, &t)| t == Some(true))
                        .map(|(i, _)| i as u32)
                        .collect(),
                )
            }
            None => {
                let rows = chunk.to_rows();
                let mut keep: Vec<u32> = Vec::new();
                for (i, row) in rows.iter().enumerate() {
                    let scope = Scope {
                        cols: &cols,
                        row,
                        parent: outer,
                        group: None,
                        windows: None,
                        aggs: None,
                        unit_index: 0,
                    };
                    if eval_expr(pred, &scope, &env)?.as_bool()? == Some(true) {
                        keep.push(i as u32);
                    }
                }
                Some(keep)
            }
        },
    };

    // Is this an aggregated query?
    let items_have_aggregates = select.items.iter().any(|item| match item {
        SelectItem::Expr { expr, .. } => contains_aggregate(expr),
        _ => false,
    });
    let aggregated = !select.group_by.is_empty()
        || items_have_aggregates
        || select
            .having
            .as_ref()
            .map(contains_aggregate)
            .unwrap_or(false)
        || select.having.is_some();

    // Window calls.
    let mut window_exprs: Vec<&Expr> = Vec::new();
    for item in &select.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect_window_calls(expr, &mut window_exprs);
        }
    }
    for o in order_by {
        collect_window_calls(&o.expr, &mut window_exprs);
    }

    // Fully columnar path: no grouping, no windows, every projected and
    // ordering expression lowers to a batch expression.
    if !aggregated && window_exprs.is_empty() {
        if let Some(rs) = try_pure_path(
            select,
            &cols,
            &chunk,
            keep.as_deref(),
            outer,
            order_by,
            limit,
        )? {
            return Ok(rs);
        }
    }

    let filtered = match &keep {
        Some(k) => chunk.take(k),
        None => chunk,
    };

    // Fast aggregated path: group keys and every aggregate call lower,
    // so only representative rows ever need materializing.
    if aggregated && window_exprs.is_empty() && select.having.is_none() {
        if let Some(rs) = try_fast_agg(select, &cols, &filtered, outer, &env, order_by, limit)? {
            return Ok(rs);
        }
    }

    // Hybrid path: materialize the filtered batch and run the unit
    // pipeline, vectorizing group keys and aggregate arguments when they
    // lower and falling back per expression when they don't.
    let rel = Relation {
        cols,
        rows: filtered.to_rows(),
    };
    let kept: Vec<usize> = (0..rel.rows.len()).collect();

    let mut units: Vec<Unit> = Vec::new();
    if aggregated {
        if select.group_by.is_empty() {
            units.push(Unit {
                rep: kept.first().copied().unwrap_or(usize::MAX),
                members: kept.clone(),
            });
        } else {
            units = build_group_units(select, &rel, &filtered, &kept, outer, &env)?;
            physical::with_counters(|c| c.agg_groups += units.len() as u64);
        }
        // HAVING runs through the accumulator path (no pre-computed
        // aggregates), preserving the interpreter's per-unit laziness.
        if let Some(having) = &select.having {
            let mut survivors = Vec::with_capacity(units.len());
            for unit in units {
                let scope = unit_scope(&rel, &unit, outer, None, None, 0, aggregated);
                if eval_expr(having, &scope, &env)?.as_bool()? == Some(true) {
                    survivors.push(unit);
                }
            }
            units = survivors;
        }
    } else {
        units = kept
            .iter()
            .map(|&i| Unit {
                rep: i,
                members: vec![i],
            })
            .collect();
    }

    // Pre-compute unconditionally evaluated aggregates batch-at-a-time.
    let aggs = if aggregated {
        precompute_aggregates(select, order_by, &rel.cols, &filtered, &units, outer)?
    } else {
        AggValues::new()
    };

    let windows = compute_windows(&rel, &units, &window_exprs, outer, &env, aggregated)?;

    finish_select(
        select,
        &rel,
        &units,
        &windows,
        Some(&aggs),
        outer,
        &env,
        order_by,
        limit,
        aggregated,
    )
}

/// Build GROUP BY units with typed keys, evaluating the group
/// expressions batch-at-a-time when they lower.
fn build_group_units(
    select: &Select,
    rel: &Relation,
    chunk: &DataChunk,
    kept: &[usize],
    outer: Option<&Scope<'_>>,
    env: &EvalEnv<'_>,
) -> EngineResult<Vec<Unit>> {
    if let Some((units, _)) = vectorized_group_units(&select.group_by, &rel.cols, chunk, outer)? {
        return Ok(units);
    }

    // Row fallback: identical to the reference interpreter.
    let mut units: Vec<Unit> = Vec::new();
    let mut index: HashMap<Vec<KeyElem>, usize> = HashMap::new();
    for &i in kept {
        let scope = Scope {
            cols: &rel.cols,
            row: &rel.rows[i],
            parent: outer,
            group: None,
            windows: None,
            aggs: None,
            unit_index: 0,
        };
        let mut key = Vec::with_capacity(select.group_by.len());
        for g in &select.group_by {
            key.push(key_elem(&eval_expr(g, &scope, env)?));
        }
        match index.get(&key) {
            Some(&u) => units[u].members.push(i),
            None => {
                index.insert(key, units.len());
                units.push(Unit {
                    rep: i,
                    members: vec![i],
                });
            }
        }
    }
    Ok(units)
}

/// Group the chunk's rows by the batch-evaluated GROUP BY keys, in
/// first-occurrence order (matching the interpreter's unit order).
/// Also returns the per-row group id (`gids[i]` = unit index of row
/// `i`), which the fast aggregation path scans instead of per-unit
/// selection vectors. Returns `Ok(None)` when some group expression
/// does not lower.
#[allow(clippy::type_complexity)]
fn vectorized_group_units(
    group_by: &[Expr],
    cols: &[ColMeta],
    chunk: &DataChunk,
    outer: Option<&Scope<'_>>,
) -> EngineResult<Option<(Vec<Unit>, Vec<u32>)>> {
    let bound: Option<Vec<vector::VExpr>> = group_by
        .iter()
        .map(|g| vector::bind(g, cols, outer))
        .collect();
    let Some(vs) = bound else {
        return Ok(None);
    };
    let mut arrays: Vec<Arc<Array>> = Vec::with_capacity(vs.len());
    for v in &vs {
        arrays.push(vector::eval(v, chunk, Sel::All)?);
    }
    let mut units: Vec<Unit> = Vec::new();
    let mut gids: Vec<u32> = Vec::with_capacity(chunk.len());
    if let [a] = arrays.as_slice() {
        // Single-key grouping probes with borrowed keys: no allocation
        // per row at all.
        let mut index: HashMap<KeyRef<'_>, usize> = HashMap::new();
        for i in 0..chunk.len() {
            match index.entry(key_ref(a.at(i))) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    gids.push(*e.get() as u32);
                    units[*e.get()].members.push(i);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    gids.push(units.len() as u32);
                    e.insert(units.len());
                    units.push(Unit {
                        rep: i,
                        members: vec![i],
                    });
                }
            }
        }
        return Ok(Some((units, gids)));
    }
    let mut index: HashMap<Vec<KeyRef<'_>>, usize> = HashMap::new();
    for i in 0..chunk.len() {
        let key: Vec<KeyRef<'_>> = arrays.iter().map(|a| key_ref(a.at(i))).collect();
        match index.get(&key) {
            Some(&u) => {
                gids.push(u as u32);
                units[u].members.push(i);
            }
            None => {
                gids.push(units.len() as u32);
                index.insert(key, units.len());
                units.push(Unit {
                    rep: i,
                    members: vec![i],
                });
            }
        }
    }
    Ok(Some((units, gids)))
}

/// Pre-compute per-unit values for aggregate calls that the projection
/// and ORDER BY evaluate unconditionally. Conditionally evaluated calls
/// (short-circuited operands, CASE branches) keep the accumulator path
/// so their evaluation — and its errors — stays exactly as lazy as the
/// interpreter's.
fn precompute_aggregates(
    select: &Select,
    order_by: &[OrderItem],
    cols: &[ColMeta],
    chunk: &DataChunk,
    units: &[Unit],
    outer: Option<&Scope<'_>>,
) -> EngineResult<AggValues> {
    let mut calls: Vec<&Expr> = Vec::new();
    for item in &select.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect_unconditional_aggregates(expr, &mut calls);
        }
    }
    for o in order_by {
        collect_unconditional_aggregates(&o.expr, &mut calls);
    }

    let mut out = AggValues::new();
    for wexpr in calls {
        let key = wexpr.to_string();
        if out.contains_key(&key) {
            continue;
        }
        let Expr::Function(call) = wexpr else {
            continue;
        };
        if call.star {
            let mut vals = Vec::with_capacity(units.len());
            for unit in units {
                let mut acc = Accumulator::for_function(&call.name, call.distinct, true)?;
                for _ in &unit.members {
                    acc.update(&Value::Integer(1))?;
                }
                vals.push(acc.finish());
            }
            out.insert(key, vals);
            continue;
        }
        if call.args.len() != 1 {
            continue; // let the accumulator path raise the exact error
        }
        let Some(v) = vector::bind(&call.args[0], cols, outer) else {
            continue;
        };
        // Evaluate the argument once over every member of every unit.
        let sel: Vec<u32> = units
            .iter()
            .flat_map(|u| u.members.iter().map(|&i| i as u32))
            .collect();
        let arr = vector::eval(&v, chunk, Sel::Idx(&sel))?;
        let mut vals = Vec::with_capacity(units.len());
        let mut off = 0usize;
        for unit in units {
            let mut acc = Accumulator::for_function(&call.name, call.distinct, false)?;
            for k in 0..unit.members.len() {
                acc.update(&arr.get(off + k))?;
            }
            off += unit.members.len();
            vals.push(acc.finish());
        }
        out.insert(key, vals);
    }
    Ok(out)
}

/// Pre-compute aggregate values for the fast aggregated path by a
/// single scan over the chunk, routing each row to its group's
/// accumulator via `gids`. Per-group accumulation sequences are
/// identical to the interpreter's (each group sees its members in
/// ascending row order), so order-sensitive state — float summation,
/// DISTINCT insertion, overflow — matches exactly. Caller guarantees
/// every call is COUNT(*) or a one-argument call whose argument lowers.
fn precompute_aggregates_by_gid(
    calls: &[&Expr],
    cols: &[ColMeta],
    chunk: &DataChunk,
    units: &[Unit],
    gids: &[u32],
    outer: Option<&Scope<'_>>,
) -> EngineResult<AggValues> {
    let mut out = AggValues::new();
    for wexpr in calls {
        let key = wexpr.to_string();
        if out.contains_key(&key) {
            continue;
        }
        let Expr::Function(call) = *wexpr else {
            continue;
        };
        let mut accs: Vec<Accumulator> = Vec::with_capacity(units.len());
        for _ in units {
            accs.push(Accumulator::for_function(
                &call.name,
                call.distinct,
                call.star,
            )?);
        }
        if call.star {
            for &g in gids {
                accs[g as usize].update(&Value::Integer(1))?;
            }
        } else {
            let Some(v) = vector::bind(&call.args[0], cols, outer) else {
                continue;
            };
            let arr = vector::eval(&v, chunk, Sel::All)?;
            for (i, &g) in gids.iter().enumerate() {
                accs[g as usize].update(&arr.get(i))?;
            }
        }
        out.insert(key, accs.into_iter().map(Accumulator::finish).collect());
    }
    Ok(out)
}

/// The fast aggregated path: when the GROUP BY keys lower to batch
/// expressions and every aggregate call is unconditional and
/// batch-precomputable, the unit pipeline only ever reads representative
/// rows — every aggregate resolves from the pre-computed `AggValues`
/// before [`eval_expr`] would touch group members. So instead of
/// materializing the whole filtered batch row-major, gather just the
/// representatives (one row per group) and run [`finish_select`] on
/// that. Returns `Ok(None)` when a precondition fails, deferring to the
/// hybrid path. Caller guarantees: aggregated, no window calls, no
/// HAVING.
fn try_fast_agg(
    select: &Select,
    cols: &[ColMeta],
    chunk: &DataChunk,
    outer: Option<&Scope<'_>>,
    env: &EvalEnv<'_>,
    order_by: &[OrderItem],
    limit: Option<u64>,
) -> EngineResult<Option<ResultSet>> {
    // Every aggregate call must be unconditional — conditionally
    // evaluated calls (CASE branches, short-circuited operands) keep the
    // interpreter's lazy accumulator path, which needs full group
    // members. `uncond` is a sub-multiset of `all` by construction, so
    // equal lengths mean the sets coincide.
    let mut all_calls: Vec<&Expr> = Vec::new();
    let mut uncond: Vec<&Expr> = Vec::new();
    for item in &select.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect_aggregate_calls(expr, &mut all_calls);
            collect_unconditional_aggregates(expr, &mut uncond);
        }
    }
    for o in order_by {
        collect_aggregate_calls(&o.expr, &mut all_calls);
        collect_unconditional_aggregates(&o.expr, &mut uncond);
    }
    if all_calls.len() != uncond.len() {
        return Ok(None);
    }
    // Each call must be one precompute_aggregates handles: COUNT(*), or
    // exactly one argument that lowers to a batch expression.
    for call_expr in &all_calls {
        let Expr::Function(call) = *call_expr else {
            return Ok(None);
        };
        if call.star {
            continue;
        }
        if call.args.len() != 1 || vector::bind(&call.args[0], cols, outer).is_none() {
            return Ok(None);
        }
    }

    let (units, gids) = if select.group_by.is_empty() {
        // One implicit unit over every surviving row (rep = usize::MAX
        // projects the empty-group row, as in the interpreter).
        let units = vec![Unit {
            rep: if chunk.is_empty() { usize::MAX } else { 0 },
            members: (0..chunk.len()).collect(),
        }];
        (units, vec![0u32; chunk.len()])
    } else {
        match vectorized_group_units(&select.group_by, cols, chunk, outer)? {
            Some(ug) => ug,
            None => return Ok(None),
        }
    };

    let aggs = precompute_aggregates_by_gid(&all_calls, cols, chunk, &units, &gids, outer)?;
    // Safety net: if any call still missed the pre-computed map, the
    // accumulator path would aggregate over a representative-only group
    // and silently produce wrong values — fall back instead. (The
    // eligibility checks above make this unreachable.)
    if all_calls.iter().any(|c| !aggs.contains_key(&c.to_string())) {
        return Ok(None);
    }
    if !select.group_by.is_empty() {
        physical::with_counters(|c| c.agg_groups += units.len() as u64);
    }

    // Representative rows only, with units renumbered into the slim
    // relation. Unit order is preserved, so `unit_index` keeps matching
    // the pre-computed aggregate slots.
    let mut reps: Vec<u32> = Vec::with_capacity(units.len());
    let mut slim_units: Vec<Unit> = Vec::with_capacity(units.len());
    for u in &units {
        if u.rep == usize::MAX {
            slim_units.push(Unit {
                rep: usize::MAX,
                members: Vec::new(),
            });
        } else {
            let ri = reps.len();
            reps.push(u.rep as u32);
            slim_units.push(Unit {
                rep: ri,
                members: vec![ri],
            });
        }
    }
    let rel = Relation {
        cols: cols.to_vec(),
        rows: chunk.take(&reps).into_rows(),
    };
    let windows = WindowValues::new();
    finish_select(
        select,
        &rel,
        &slim_units,
        &windows,
        Some(&aggs),
        outer,
        env,
        order_by,
        limit,
        true,
    )
    .map(Some)
}

/// The fully columnar SELECT path: project column batches, then order /
/// dedup / limit by index. Returns `Ok(None)` when some expression does
/// not lower, sending the query to the hybrid path instead.
fn try_pure_path(
    select: &Select,
    cols_meta: &[ColMeta],
    chunk: &DataChunk,
    keep: Option<&[u32]>,
    outer: Option<&Scope<'_>>,
    order_by: &[OrderItem],
    limit: Option<u64>,
) -> EngineResult<Option<ResultSet>> {
    // `keep` is the WHERE survivor selection over `chunk` (None = all
    // rows). Projecting through it gathers only the columns the query
    // actually touches.
    let n = keep.map_or(chunk.len(), <[u32]>::len);
    let sel = keep.map_or(Sel::All, Sel::Idx);
    let source_col = |ci: usize| match keep {
        None => Arc::clone(&chunk.cols[ci]),
        Some(k) => Arc::new(chunk.cols[ci].gather(k)),
    };
    let mut out_cols: Vec<String> = Vec::new();
    let mut arrays: Vec<Arc<Array>> = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                for (ci, c) in cols_meta.iter().enumerate() {
                    out_cols.push(c.name.clone());
                    arrays.push(source_col(ci));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let mut any = false;
                for (ci, c) in cols_meta.iter().enumerate() {
                    if c.qualifier
                        .as_deref()
                        .map(|cq| cq.eq_ignore_ascii_case(q))
                        .unwrap_or(false)
                    {
                        any = true;
                        out_cols.push(c.name.clone());
                        arrays.push(source_col(ci));
                    }
                }
                // The interpreter only raises this when projecting a row.
                if !any && n > 0 {
                    return Err(EngineError::binding(format!("no such table alias {q}")));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let Some(v) = vector::bind(expr, cols_meta, outer) else {
                    return Ok(None);
                };
                out_cols.push(output_name(expr, alias.as_deref()));
                arrays.push(vector::eval(&v, chunk, sel)?);
            }
        }
    }

    // ORDER BY keys, aligned with output row positions.
    let mut order: Vec<usize> = (0..n).collect();
    if !order_by.is_empty() {
        let mut keys: Vec<Vec<Value>> = vec![Vec::new(); n];
        for item in order_by {
            match order_key_source(item, &out_cols)? {
                OrderSource::OutputColumn(ci) => {
                    for (ri, key) in keys.iter_mut().enumerate() {
                        key.push(arrays[ci].get(ri));
                    }
                }
                OrderSource::Expression => {
                    if select.distinct {
                        return Err(EngineError::typing(
                            "ORDER BY expression must appear in SELECT DISTINCT output",
                        ));
                    }
                    let Some(v) = vector::bind(&item.expr, cols_meta, outer) else {
                        return Ok(None);
                    };
                    let arr = vector::eval(&v, chunk, sel)?;
                    for (ri, key) in keys.iter_mut().enumerate() {
                        key.push(arr.get(ri));
                    }
                }
            }
        }
        order.sort_by(|&a, &b| {
            for (k, item) in order_by.iter().enumerate() {
                let ord = keys[a][k].total_cmp(&keys[b][k]);
                let ord = if item.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(&b) // stable
        });
    }

    // DISTINCT (after ORDER BY keeps the first occurrence in sort order).
    let mut final_idx: Vec<u32> = Vec::with_capacity(order.len());
    if select.distinct {
        let mut seen: std::collections::HashSet<Vec<KeyElem>> = std::collections::HashSet::new();
        for &ri in &order {
            let k: Vec<KeyElem> = arrays.iter().map(|a| key_elem(&a.get(ri))).collect();
            if seen.insert(k) {
                final_idx.push(ri as u32);
            }
        }
    } else {
        final_idx.extend(order.iter().map(|&i| i as u32));
    }
    if let Some(cap) = limit {
        final_idx.truncate(cap as usize);
    }

    let identity =
        final_idx.len() == n && final_idx.iter().enumerate().all(|(i, &v)| v == i as u32);
    let out_chunk = if identity {
        DataChunk::new(arrays, n)
    } else {
        let gathered = arrays
            .iter()
            .map(|a| Arc::new(a.gather(&final_idx)))
            .collect();
        DataChunk::new(gathered, final_idx.len())
    };
    Ok(Some(ResultSet::from_chunk(out_cols, out_chunk)))
}

// ----------------------------------------------------------------------
// Shared SELECT finishing: projection, ORDER BY, DISTINCT, LIMIT
// ----------------------------------------------------------------------

/// Project units and apply ORDER BY / DISTINCT / LIMIT. Shared verbatim
/// by the reference interpreter (`aggs: None`) and the hybrid vectorized
/// path (`aggs` carrying pre-computed per-unit aggregate values).
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_select(
    select: &Select,
    rel: &Relation,
    units: &[Unit],
    windows: &WindowValues,
    aggs: Option<&AggValues>,
    outer: Option<&Scope<'_>>,
    env: &EvalEnv<'_>,
    order_by: &[OrderItem],
    limit: Option<u64>,
    aggregated: bool,
) -> EngineResult<ResultSet> {
    // Projection.
    let mut out_cols: Vec<String> = Vec::new();
    let mut out_rows: Vec<Vec<Value>> = Vec::with_capacity(units.len());
    let mut first = true;
    for (ui, unit) in units.iter().enumerate() {
        let scope = unit_scope(rel, unit, outer, Some(windows), aggs, ui, aggregated);
        let mut row: Vec<Value> = Vec::with_capacity(select.items.len());
        for item in &select.items {
            match item {
                SelectItem::Wildcard => {
                    if aggregated {
                        return Err(EngineError::typing(
                            "SELECT * is not allowed with GROUP BY / aggregates",
                        ));
                    }
                    if first {
                        out_cols.extend(rel.cols.iter().map(|c| c.name.clone()));
                    }
                    row.extend(rel.rows[unit.rep].iter().cloned());
                }
                SelectItem::QualifiedWildcard(q) => {
                    if aggregated {
                        return Err(EngineError::typing(
                            "qualified * is not allowed with GROUP BY / aggregates",
                        ));
                    }
                    let mut any = false;
                    for (ci, col) in rel.cols.iter().enumerate() {
                        if col
                            .qualifier
                            .as_deref()
                            .map(|cq| cq.eq_ignore_ascii_case(q))
                            .unwrap_or(false)
                        {
                            any = true;
                            if first {
                                out_cols.push(col.name.clone());
                            }
                            row.push(rel.rows[unit.rep][ci].clone());
                        }
                    }
                    if !any {
                        return Err(EngineError::binding(format!("no such table alias {q}")));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    if first {
                        out_cols.push(output_name(expr, alias.as_deref()));
                    }
                    row.push(eval_expr(expr, &scope, env)?);
                }
            }
        }
        out_rows.push(row);
        first = false;
    }
    if units.is_empty() {
        // Still need output column names for empty results.
        for item in &select.items {
            match item {
                SelectItem::Wildcard => out_cols.extend(rel.cols.iter().map(|c| c.name.clone())),
                SelectItem::QualifiedWildcard(q) => {
                    for col in &rel.cols {
                        if col
                            .qualifier
                            .as_deref()
                            .map(|cq| cq.eq_ignore_ascii_case(q))
                            .unwrap_or(false)
                        {
                            out_cols.push(col.name.clone());
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    out_cols.push(output_name(expr, alias.as_deref()))
                }
            }
        }
    }

    // ORDER BY: compute sort keys aligned with projected rows.
    if !order_by.is_empty() {
        let mut keys: Vec<Vec<Value>> = vec![Vec::new(); out_rows.len()];
        for item in order_by {
            match order_key_source(item, &out_cols)? {
                OrderSource::OutputColumn(ci) => {
                    for (ri, row) in out_rows.iter().enumerate() {
                        keys[ri].push(row[ci].clone());
                    }
                }
                OrderSource::Expression => {
                    if select.distinct {
                        return Err(EngineError::typing(
                            "ORDER BY expression must appear in SELECT DISTINCT output",
                        ));
                    }
                    for (ui, unit) in units.iter().enumerate() {
                        let scope =
                            unit_scope(rel, unit, outer, Some(windows), aggs, ui, aggregated);
                        keys[ui].push(eval_expr(&item.expr, &scope, env)?);
                    }
                }
            }
        }
        let mut order: Vec<usize> = (0..out_rows.len()).collect();
        order.sort_by(|&a, &b| {
            for (k, item) in order_by.iter().enumerate() {
                let ord = keys[a][k].total_cmp(&keys[b][k]);
                let ord = if item.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(&b) // stable
        });
        let mut sorted = Vec::with_capacity(out_rows.len());
        for i in order {
            sorted.push(std::mem::take(&mut out_rows[i]));
        }
        out_rows = sorted;
    }

    // DISTINCT (after ORDER BY keeps the first occurrence in sort order).
    if select.distinct {
        let mut seen: std::collections::HashSet<Vec<KeyElem>> = std::collections::HashSet::new();
        out_rows.retain(|row| seen.insert(row_key(row)));
    }

    if let Some(n) = limit {
        out_rows.truncate(n as usize);
    }

    Ok(ResultSet {
        columns: out_cols,
        rows: out_rows,
    })
}

pub(crate) fn output_name(expr: &Expr, alias: Option<&str>) -> String {
    if let Some(a) = alias {
        return a.to_string();
    }
    match expr {
        Expr::Column { name, .. } => name.clone(),
        other => other.to_string(),
    }
}

pub(crate) enum OrderSource {
    OutputColumn(usize),
    Expression,
}

pub(crate) fn order_key_source(item: &OrderItem, out_cols: &[String]) -> EngineResult<OrderSource> {
    match &item.expr {
        Expr::Literal(Literal::Integer(n)) => {
            let idx = *n - 1;
            if idx < 0 || idx as usize >= out_cols.len() {
                return Err(EngineError::binding(format!(
                    "ORDER BY position {n} is out of range"
                )));
            }
            Ok(OrderSource::OutputColumn(idx as usize))
        }
        Expr::Column { table: None, name } => {
            let matches: Vec<usize> = out_cols
                .iter()
                .enumerate()
                .filter(|(_, c)| c.eq_ignore_ascii_case(name))
                .map(|(i, _)| i)
                .collect();
            match matches.len() {
                1 => Ok(OrderSource::OutputColumn(matches[0])),
                _ => Ok(OrderSource::Expression),
            }
        }
        _ => Ok(OrderSource::Expression),
    }
}

/// Sort a finished result by output column names / positions only (used
/// for ORDER BY over set operations).
fn sort_result_by_output(rs: &mut ResultSet, order_by: &[OrderItem]) -> EngineResult<()> {
    if order_by.is_empty() {
        return Ok(());
    }
    let mut key_cols = Vec::with_capacity(order_by.len());
    for item in order_by {
        match order_key_source(item, &rs.columns)? {
            OrderSource::OutputColumn(ci) => key_cols.push((ci, item.desc)),
            OrderSource::Expression => {
                return Err(EngineError::typing(
                    "ORDER BY over a set operation must reference output columns",
                ))
            }
        }
    }
    rs.rows.sort_by(|a, b| {
        for &(ci, desc) in &key_cols {
            let ord = a[ci].total_cmp(&b[ci]);
            let ord = if desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(())
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Column, Table};
    use crate::value::{DataType, Date};

    fn test_db() -> Database {
        let mut db = Database::new("test");
        let mut orgs = Table::new(
            "ORGS",
            vec![
                Column::new("ID", DataType::Integer),
                Column::new("NAME", DataType::Text),
                Column::new("COUNTRY", DataType::Text),
                Column::new("OWNED", DataType::Text),
            ],
        );
        for (id, name, country, owned) in [
            (1, "Alpha", "Canada", "COC"),
            (2, "Beta", "Canada", "COC"),
            (3, "Gamma", "USA", "EXT"),
            (4, "Delta", "Canada", "EXT"),
            (5, "Epsilon", "Mexico", "COC"),
        ] {
            orgs.push_row(vec![
                Value::Integer(id),
                name.into(),
                country.into(),
                owned.into(),
            ])
            .unwrap();
        }
        db.add_table(orgs).unwrap();

        let mut fin = Table::new(
            "FINANCIALS",
            vec![
                Column::new("ORG_ID", DataType::Integer),
                Column::new("FIN_MONTH", DataType::Date),
                Column::new("REVENUE", DataType::Integer),
            ],
        );
        let rows = [
            (1, (2023, 2), 100),
            (1, (2023, 5), 150),
            (2, (2023, 2), 200),
            (2, (2023, 5), 180),
            (3, (2023, 2), 300),
            (3, (2023, 5), 330),
            (5, (2023, 5), 90),
        ];
        for (org, (y, m), rev) in rows {
            fin.push_row(vec![
                Value::Integer(org),
                Value::Date(Date::new(y, m, 1).unwrap()),
                Value::Integer(rev),
            ])
            .unwrap();
        }
        db.add_table(fin).unwrap();
        db
    }

    fn run(sql: &str) -> ResultSet {
        let db = test_db();
        execute_sql(&db, sql).unwrap_or_else(|e| panic!("{sql}: {e}"))
    }

    fn run_err(sql: &str) -> EngineError {
        let db = test_db();
        execute_sql(&db, sql).unwrap_err()
    }

    fn ints(rs: &ResultSet) -> Vec<i64> {
        rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect()
    }

    fn texts(rs: &ResultSet, col: usize) -> Vec<String> {
        rs.rows.iter().map(|r| r[col].to_string()).collect()
    }

    #[test]
    fn select_constant() {
        let rs = run("SELECT 1 + 2 AS x");
        assert_eq!(rs.columns, vec!["x"]);
        assert_eq!(ints(&rs), vec![3]);
    }

    #[test]
    fn timed_execution_reports_stats() {
        let db = test_db();
        let (result, stats) = execute_sql_timed(&db, "SELECT ID, NAME FROM ORGS");
        assert!(result.is_ok());
        assert_eq!(stats.rows, 5);
        assert_eq!(stats.columns, 2);
        assert!(stats.parse > std::time::Duration::ZERO);
        assert!(stats.execute > std::time::Duration::ZERO);

        // Parse failure: no execution time, no rows.
        let (result, stats) = execute_sql_timed(&db, "SELEC nope");
        assert!(result.is_err());
        assert_eq!(stats.execute, std::time::Duration::ZERO);
        assert_eq!(stats.rows, 0);

        // Binding failure: executed (and failed), zero-size output.
        let (result, stats) = execute_sql_timed(&db, "SELECT * FROM MISSING");
        assert!(result.is_err());
        assert_eq!((stats.rows, stats.columns), (0, 0));
    }

    #[test]
    fn exec_stats_record_into_registry() {
        let db = test_db();
        let metrics = genedit_telemetry::MetricsRegistry::new();
        let (_, stats) = execute_sql_timed(&db, "SELECT * FROM ORGS");
        stats.record(&metrics, "validate");
        let snap = metrics.snapshot();
        assert_eq!(snap.histograms["sql.validate.parse_ms"].count, 1);
        assert_eq!(snap.histograms["sql.validate.execute_ms"].count, 1);
        assert_eq!(snap.histograms["sql.validate.rows"].p50, 5.0);
    }

    #[test]
    fn where_filters() {
        let rs = run("SELECT NAME FROM ORGS WHERE COUNTRY = 'Canada' ORDER BY NAME");
        assert_eq!(texts(&rs, 0), vec!["Alpha", "Beta", "Delta"]);
    }

    #[test]
    fn wildcard_and_qualified_wildcard() {
        let rs = run("SELECT * FROM ORGS");
        assert_eq!(rs.columns.len(), 4);
        assert_eq!(rs.rows.len(), 5);
        let rs = run("SELECT o.* FROM ORGS o WHERE o.ID = 1");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.columns.len(), 4);
    }

    #[test]
    fn order_by_desc_and_limit() {
        let rs = run("SELECT ID FROM ORGS ORDER BY ID DESC LIMIT 2");
        assert_eq!(ints(&rs), vec![5, 4]);
    }

    #[test]
    fn order_by_position() {
        let rs = run("SELECT NAME, ID FROM ORGS ORDER BY 2 DESC LIMIT 1");
        assert_eq!(texts(&rs, 0), vec!["Epsilon"]);
    }

    #[test]
    fn order_by_alias() {
        let rs = run("SELECT ID * 10 AS tens FROM ORGS ORDER BY tens DESC LIMIT 1");
        assert_eq!(ints(&rs), vec![50]);
    }

    #[test]
    fn group_by_aggregates() {
        let rs = run("SELECT COUNTRY, COUNT(*) AS n, SUM(ID) AS total FROM ORGS \
             GROUP BY COUNTRY ORDER BY COUNTRY");
        assert_eq!(texts(&rs, 0), vec!["Canada", "Mexico", "USA"]);
        assert_eq!(
            rs.rows
                .iter()
                .map(|r| r[1].as_i64().unwrap())
                .collect::<Vec<_>>(),
            vec![3, 1, 1]
        );
        assert_eq!(
            rs.rows
                .iter()
                .map(|r| r[2].as_i64().unwrap())
                .collect::<Vec<_>>(),
            vec![7, 5, 3]
        );
    }

    #[test]
    fn implicit_whole_table_aggregate() {
        let rs = run("SELECT COUNT(*), MIN(ID), MAX(ID), AVG(ID) FROM ORGS");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0].as_i64(), Some(5));
        assert_eq!(rs.rows[0][1].as_i64(), Some(1));
        assert_eq!(rs.rows[0][2].as_i64(), Some(5));
        assert_eq!(rs.rows[0][3].as_f64(), Some(3.0));
    }

    #[test]
    fn aggregate_over_empty_table_yields_one_row() {
        let rs = run("SELECT COUNT(*) FROM ORGS WHERE ID > 1000");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0].as_i64(), Some(0));
    }

    #[test]
    fn group_by_on_empty_input_yields_no_rows() {
        let rs = run("SELECT COUNTRY, COUNT(*) FROM ORGS WHERE ID > 1000 GROUP BY COUNTRY");
        assert!(rs.rows.is_empty());
        assert_eq!(rs.columns.len(), 2);
    }

    #[test]
    fn having_filters_groups() {
        let rs = run("SELECT COUNTRY FROM ORGS GROUP BY COUNTRY HAVING COUNT(*) > 1");
        assert_eq!(texts(&rs, 0), vec!["Canada"]);
    }

    #[test]
    fn join_inner() {
        let rs = run(
            "SELECT o.NAME, f.REVENUE FROM ORGS o JOIN FINANCIALS f ON o.ID = f.ORG_ID \
             WHERE f.REVENUE > 250 ORDER BY f.REVENUE",
        );
        assert_eq!(texts(&rs, 0), vec!["Gamma", "Gamma"]);
    }

    #[test]
    fn join_left_pads_nulls() {
        let rs = run(
            "SELECT o.NAME, f.REVENUE FROM ORGS o LEFT JOIN FINANCIALS f ON o.ID = f.ORG_ID \
             WHERE f.REVENUE IS NULL",
        );
        // Delta (id 4) has no financials.
        assert_eq!(texts(&rs, 0), vec!["Delta"]);
    }

    #[test]
    fn cross_join_counts() {
        let rs = run("SELECT COUNT(*) FROM ORGS a CROSS JOIN ORGS b");
        assert_eq!(rs.rows[0][0].as_i64(), Some(25));
    }

    #[test]
    fn conditional_aggregation_paper_pattern() {
        // The paper's Q_fin-perf pattern: quarterly pivot via CASE in SUM.
        let rs = run(
            "SELECT o.NAME, \
               SUM(CASE WHEN TO_CHAR(f.FIN_MONTH, 'YYYY\"Q\"Q') = '2023Q1' THEN f.REVENUE ELSE 0 END) AS q1, \
               SUM(CASE WHEN TO_CHAR(f.FIN_MONTH, 'YYYY\"Q\"Q') = '2023Q2' THEN f.REVENUE ELSE 0 END) AS q2 \
             FROM ORGS o JOIN FINANCIALS f ON o.ID = f.ORG_ID \
             GROUP BY o.NAME ORDER BY o.NAME",
        );
        assert_eq!(texts(&rs, 0), vec!["Alpha", "Beta", "Epsilon", "Gamma"]);
        let q1: Vec<i64> = rs.rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
        let q2: Vec<i64> = rs.rows.iter().map(|r| r[2].as_i64().unwrap()).collect();
        assert_eq!(q1, vec![100, 200, 0, 300]);
        assert_eq!(q2, vec![150, 180, 90, 330]);
    }

    #[test]
    fn cte_pipeline() {
        let rs = run(
            "WITH canadian AS (SELECT ID, NAME FROM ORGS WHERE COUNTRY = 'Canada'), \
                  rich AS (SELECT c.NAME, SUM(f.REVENUE) AS total \
                           FROM canadian c JOIN FINANCIALS f ON c.ID = f.ORG_ID \
                           GROUP BY c.NAME) \
             SELECT NAME, total FROM rich ORDER BY total DESC",
        );
        assert_eq!(texts(&rs, 0), vec!["Beta", "Alpha"]);
    }

    #[test]
    fn cte_shadows_table() {
        let rs = run("WITH ORGS AS (SELECT 42 AS ID) SELECT ID FROM ORGS");
        assert_eq!(ints(&rs), vec![42]);
    }

    #[test]
    fn window_row_number() {
        let rs = run(
            "SELECT NAME, ROW_NUMBER() OVER (PARTITION BY COUNTRY ORDER BY ID) AS rn \
             FROM ORGS ORDER BY NAME",
        );
        let by_name: Vec<(String, i64)> = rs
            .rows
            .iter()
            .map(|r| (r[0].to_string(), r[1].as_i64().unwrap()))
            .collect();
        assert_eq!(
            by_name,
            vec![
                ("Alpha".into(), 1),
                ("Beta".into(), 2),
                ("Delta".into(), 3),
                ("Epsilon".into(), 1),
                ("Gamma".into(), 1),
            ]
        );
    }

    #[test]
    fn window_rank_with_ties() {
        let rs = run("SELECT OWNED, RANK() OVER (ORDER BY COUNTRY) AS r, \
                    DENSE_RANK() OVER (ORDER BY COUNTRY) AS d \
             FROM ORGS ORDER BY COUNTRY, OWNED");
        let ranks: Vec<i64> = rs.rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
        let dense: Vec<i64> = rs.rows.iter().map(|r| r[2].as_i64().unwrap()).collect();
        assert_eq!(ranks, vec![1, 1, 1, 4, 5]);
        assert_eq!(dense, vec![1, 1, 1, 2, 3]);
    }

    #[test]
    fn window_aggregate_over_partition() {
        let rs =
            run("SELECT NAME, SUM(ID) OVER (PARTITION BY COUNTRY) AS s FROM ORGS ORDER BY NAME");
        let sums: Vec<i64> = rs.rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
        // Canada: 1+2+4=7 (Alpha, Beta, Delta), Mexico 5, USA 3.
        assert_eq!(sums, vec![7, 7, 7, 5, 3]);
    }

    #[test]
    fn window_over_grouped_query() {
        let rs = run("SELECT COUNTRY, SUM(ID) AS s, \
                    RANK() OVER (ORDER BY SUM(ID) DESC) AS r \
             FROM ORGS GROUP BY COUNTRY ORDER BY r");
        assert_eq!(texts(&rs, 0), vec!["Canada", "Mexico", "USA"]);
    }

    #[test]
    fn distinct_dedupes() {
        let rs = run("SELECT DISTINCT COUNTRY FROM ORGS ORDER BY COUNTRY");
        assert_eq!(texts(&rs, 0), vec!["Canada", "Mexico", "USA"]);
    }

    #[test]
    fn count_distinct() {
        let rs = run("SELECT COUNT(DISTINCT COUNTRY) FROM ORGS");
        assert_eq!(rs.rows[0][0].as_i64(), Some(3));
    }

    #[test]
    fn in_subquery() {
        let rs = run(
            "SELECT NAME FROM ORGS WHERE ID IN (SELECT ORG_ID FROM FINANCIALS WHERE REVENUE > 250) ",
        );
        assert_eq!(texts(&rs, 0), vec!["Gamma"]);
    }

    #[test]
    fn not_in_subquery() {
        let rs = run(
            "SELECT NAME FROM ORGS WHERE ID NOT IN (SELECT ORG_ID FROM FINANCIALS) ORDER BY NAME",
        );
        assert_eq!(texts(&rs, 0), vec!["Delta"]);
    }

    #[test]
    fn correlated_exists() {
        let rs = run("SELECT NAME FROM ORGS o WHERE EXISTS \
             (SELECT 1 FROM FINANCIALS f WHERE f.ORG_ID = o.ID AND f.REVENUE > 250)");
        assert_eq!(texts(&rs, 0), vec!["Gamma"]);
    }

    #[test]
    fn scalar_subquery() {
        let rs = run("SELECT (SELECT MAX(REVENUE) FROM FINANCIALS) AS m");
        assert_eq!(rs.rows[0][0].as_i64(), Some(330));
    }

    #[test]
    fn correlated_scalar_subquery() {
        let rs = run(
            "SELECT NAME, (SELECT SUM(REVENUE) FROM FINANCIALS f WHERE f.ORG_ID = o.ID) AS t \
             FROM ORGS o ORDER BY NAME",
        );
        assert_eq!(rs.rows[0][1].as_i64(), Some(250)); // Alpha
        assert!(rs.rows[2][1].is_null()); // Delta: SUM of nothing is NULL
    }

    #[test]
    fn derived_table() {
        let rs = run("SELECT t.NAME FROM (SELECT NAME FROM ORGS WHERE COUNTRY = 'USA') AS t");
        assert_eq!(texts(&rs, 0), vec!["Gamma"]);
    }

    #[test]
    fn union_and_union_all() {
        let rs = run("SELECT COUNTRY FROM ORGS UNION SELECT COUNTRY FROM ORGS ORDER BY COUNTRY");
        assert_eq!(rs.rows.len(), 3);
        let rs = run("SELECT COUNTRY FROM ORGS UNION ALL SELECT COUNTRY FROM ORGS");
        assert_eq!(rs.rows.len(), 10);
    }

    #[test]
    fn intersect_and_except() {
        let rs = run("SELECT COUNTRY FROM ORGS WHERE OWNED = 'COC' \
             INTERSECT SELECT COUNTRY FROM ORGS WHERE OWNED = 'EXT'");
        assert_eq!(texts(&rs, 0), vec!["Canada"]);
        let rs =
            run("SELECT COUNTRY FROM ORGS EXCEPT SELECT COUNTRY FROM ORGS WHERE OWNED = 'EXT' ");
        let mut got = texts(&rs, 0);
        got.sort();
        assert_eq!(got, vec!["Mexico"]);
    }

    #[test]
    fn set_op_arity_mismatch() {
        let e = run_err("SELECT ID, NAME FROM ORGS UNION SELECT ID FROM ORGS");
        assert!(matches!(e, EngineError::Type { .. }));
    }

    #[test]
    fn unknown_table_is_binding_error() {
        let e = run_err("SELECT * FROM NOPE");
        assert!(matches!(e, EngineError::Binding { .. }));
        assert!(e.is_semantic());
    }

    #[test]
    fn unknown_column_is_binding_error() {
        let e = run_err("SELECT WIBBLE FROM ORGS");
        assert!(matches!(e, EngineError::Binding { .. }));
    }

    #[test]
    fn ambiguous_column_is_binding_error() {
        let e = run_err("SELECT ID FROM ORGS a JOIN ORGS b ON a.ID = b.ID");
        assert!(matches!(e, EngineError::Binding { .. }));
        assert!(e.to_string().contains("ambiguous"));
    }

    #[test]
    fn three_valued_logic_in_where() {
        // NULL comparisons must not satisfy WHERE.
        let rs = run(
            "SELECT o.NAME FROM ORGS o LEFT JOIN FINANCIALS f ON o.ID = f.ORG_ID \
             WHERE f.REVENUE > 0 OR f.REVENUE <= 0",
        );
        assert!(!texts(&rs, 0).contains(&"Delta".to_string()));
    }

    #[test]
    fn division_semantics() {
        let rs = run("SELECT 7 / 2, 7.0 / 2, 7 / 0, CAST(7 AS FLOAT) / 2");
        assert_eq!(rs.rows[0][0].as_i64(), Some(3)); // integer division
        assert_eq!(rs.rows[0][1].as_f64(), Some(3.5));
        assert!(rs.rows[0][2].is_null()); // divide by zero -> NULL
        assert_eq!(rs.rows[0][3].as_f64(), Some(3.5));
    }

    #[test]
    fn like_and_between() {
        let rs =
            run("SELECT NAME FROM ORGS WHERE NAME LIKE '%a' AND ID BETWEEN 1 AND 4 ORDER BY NAME");
        assert_eq!(texts(&rs, 0), vec!["Alpha", "Beta", "Delta", "Gamma"]);
    }

    #[test]
    fn case_without_else_is_null() {
        let rs = run("SELECT CASE WHEN 1 = 2 THEN 'x' END");
        assert!(rs.rows[0][0].is_null());
    }

    #[test]
    fn full_paper_query_shape_runs() {
        // A condensed Q_fin-perf: per-org RPV-style ratio change with
        // ranking, over the test data.
        let rs = run(
            "WITH F AS ( \
               SELECT ORG_ID, \
                 SUM(CASE WHEN TO_CHAR(FIN_MONTH, 'YYYY\"Q\"Q') = '2023Q1' THEN REVENUE ELSE 0 END) AS R1, \
                 SUM(CASE WHEN TO_CHAR(FIN_MONTH, 'YYYY\"Q\"Q') = '2023Q2' THEN REVENUE ELSE 0 END) AS R2 \
               FROM FINANCIALS GROUP BY ORG_ID \
             ), \
             D AS ( \
               SELECT o.NAME, CAST(f.R2 AS FLOAT) / NULLIF(f.R1, 0) AS growth, \
                      ROW_NUMBER() OVER (ORDER BY CAST(f.R2 AS FLOAT) / NULLIF(f.R1, 0) DESC) AS rnk \
               FROM F f JOIN ORGS o ON o.ID = f.ORG_ID \
               WHERE o.OWNED = 'COC' \
             ) \
             SELECT NAME, growth, rnk FROM D WHERE rnk <= 5 ORDER BY rnk",
        );
        // COC orgs with financials: Alpha (150/100=1.5), Beta (0.9),
        // Epsilon (90/0 -> NULL).
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[0][0].to_string(), "Alpha");
        assert!((rs.rows[0][1].as_f64().unwrap() - 1.5).abs() < 1e-9);
        assert_eq!(rs.rows[1][0].to_string(), "Beta");
        assert!(rs.rows[2][1].is_null()); // Epsilon's NULL growth ranks last? (nulls sort first asc; DESC -> last)
    }

    #[test]
    fn select_star_with_group_by_rejected() {
        let e = run_err("SELECT * FROM ORGS GROUP BY COUNTRY");
        assert!(matches!(e, EngineError::Type { .. }));
    }

    #[test]
    fn ranking_without_over_rejected() {
        let e = run_err("SELECT ROW_NUMBER() FROM ORGS");
        assert!(matches!(e, EngineError::Type { .. }));
    }

    #[test]
    fn group_concat() {
        let rs =
            run("SELECT COUNTRY, GROUP_CONCAT(NAME) FROM ORGS GROUP BY COUNTRY ORDER BY COUNTRY");
        assert_eq!(rs.rows[0][1].to_string(), "Alpha,Beta,Delta");
    }

    #[test]
    fn lag_and_lead_over_partition() {
        // Per-country revenue trail: LAG looks back in ID order.
        let rs = run(
            "SELECT ID, LAG(ID) OVER (PARTITION BY COUNTRY ORDER BY ID) AS prev, \
                    LEAD(ID) OVER (PARTITION BY COUNTRY ORDER BY ID) AS next \
             FROM ORGS ORDER BY ID",
        );
        // Canada: ids 1, 2, 4.
        let by_id: Vec<(i64, Option<i64>, Option<i64>)> = rs
            .rows
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64(), r[2].as_i64()))
            .collect();
        assert_eq!(by_id[0], (1, None, Some(2)));
        assert_eq!(by_id[1], (2, Some(1), Some(4)));
        assert_eq!(by_id[3], (4, Some(2), None));
        // Singleton partitions see NULL on both sides.
        assert_eq!(by_id[2], (3, None, None));
    }

    #[test]
    fn lag_with_offset_and_default() {
        let rs = run("SELECT ID, LAG(ID, 2, 0) OVER (ORDER BY ID) AS l2 FROM ORGS ORDER BY ID");
        let l2: Vec<i64> = rs.rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
        assert_eq!(l2, vec![0, 0, 1, 2, 3]);
    }

    #[test]
    fn first_and_last_value() {
        let rs = run(
            "SELECT COUNTRY, FIRST_VALUE(NAME) OVER (PARTITION BY COUNTRY ORDER BY ID) AS f, \
                    LAST_VALUE(NAME) OVER (PARTITION BY COUNTRY ORDER BY ID) AS l \
             FROM ORGS WHERE COUNTRY = 'Canada'",
        );
        for row in &rs.rows {
            assert_eq!(row[1].to_string(), "Alpha");
            assert_eq!(row[2].to_string(), "Delta");
        }
    }

    #[test]
    fn lag_requires_valid_offset() {
        let e = run_err("SELECT LAG(ID, ID) OVER (ORDER BY ID) FROM ORGS");
        assert!(matches!(e, EngineError::Type { .. }));
    }

    #[test]
    fn ntile_distribution() {
        let rs = run("SELECT ID, NTILE(2) OVER (ORDER BY ID) AS t FROM ORGS ORDER BY ID");
        let tiles: Vec<i64> = rs.rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
        assert_eq!(tiles, vec![1, 1, 1, 2, 2]);
    }

    #[test]
    fn having_without_group_by_gates_whole_table_aggregate() {
        // HAVING over the implicit single group: keeps or drops the one row.
        let rs = run("SELECT SUM(ID) FROM ORGS HAVING COUNT(*) > 3");
        assert_eq!(rs.rows.len(), 1);
        let rs = run("SELECT SUM(ID) FROM ORGS HAVING COUNT(*) > 99");
        assert!(rs.rows.is_empty());
    }

    #[test]
    fn group_by_expression_key() {
        // Grouping on a computed key, not just a column.
        let rs = run("SELECT ID % 2 AS parity, COUNT(*) FROM ORGS GROUP BY ID % 2 ORDER BY parity");
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][1].as_i64(), Some(2)); // even: 2, 4
        assert_eq!(rs.rows[1][1].as_i64(), Some(3)); // odd: 1, 3, 5
    }

    #[test]
    fn case_simple_form_with_null_operand_matches_nothing() {
        // NULL = anything is unknown, so only ELSE fires.
        let rs = run("SELECT CASE NULL WHEN NULL THEN 'eq' ELSE 'else' END");
        assert_eq!(rs.rows[0][0].to_string(), "else");
    }

    #[test]
    fn in_list_with_null_is_three_valued() {
        // 1 IN (2, NULL) is unknown → excluded by WHERE but distinct from
        // false under NOT.
        let rs = run("SELECT ID FROM ORGS WHERE ID IN (99, NULL)");
        assert!(rs.rows.is_empty());
        let rs = run("SELECT ID FROM ORGS WHERE NOT (ID IN (99, NULL))");
        assert!(rs.rows.is_empty(), "NOT unknown is still unknown");
        let rs = run("SELECT ID FROM ORGS WHERE ID IN (1, NULL)");
        assert_eq!(ints(&rs), vec![1]);
    }

    #[test]
    fn order_by_null_aggregates_sort_first_ascending() {
        let rs = run("SELECT o.NAME, SUM(f.REVENUE) AS s FROM ORGS o \
             LEFT JOIN FINANCIALS f ON o.ID = f.ORG_ID \
             GROUP BY o.NAME ORDER BY s, o.NAME");
        assert!(
            rs.rows[0][1].is_null(),
            "NULL total sorts first: {:?}",
            rs.rows[0]
        );
        assert_eq!(rs.rows[0][0].to_string(), "Delta");
    }

    #[test]
    fn nested_cte_shadowing_inner_wins() {
        let rs = run("WITH x AS (SELECT 1 AS v) \
             SELECT * FROM (WITH x AS (SELECT 2 AS v) SELECT v FROM x) AS inner_q");
        assert_eq!(ints(&rs), vec![2]);
    }

    #[test]
    fn limit_larger_than_rows_is_harmless() {
        let rs = run("SELECT ID FROM ORGS LIMIT 999");
        assert_eq!(rs.rows.len(), 5);
    }

    #[test]
    fn concat_operator_and_null_propagation() {
        let rs = run("SELECT 'a' || 'b' || 'c', 'a' || NULL");
        assert_eq!(rs.rows[0][0].to_string(), "abc");
        assert!(rs.rows[0][1].is_null());
    }

    #[test]
    fn distinct_on_multiple_columns() {
        let rs = run("SELECT DISTINCT COUNTRY, OWNED FROM ORGS");
        // (Canada,COC),(Canada,EXT),(USA,EXT),(Mexico,COC)
        assert_eq!(rs.rows.len(), 4);
    }

    #[test]
    fn union_mixed_numeric_types_compare_by_value() {
        // 1 (int) and 1.0 (float) are distinct under group_key — column
        // typing is preserved, as in the EX metric.
        let rs = run("SELECT 1 UNION SELECT 1.0");
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn where_on_window_output_requires_subquery() {
        // Window values are not visible in the same SELECT's WHERE; the
        // CTE workaround must work (how all gold queries rank-filter).
        let e = run_err("SELECT ROW_NUMBER() OVER (ORDER BY ID) AS r FROM ORGS WHERE r <= 2");
        assert!(e.is_semantic());
        let rs = run(
            "WITH w AS (SELECT ID, ROW_NUMBER() OVER (ORDER BY ID) AS r FROM ORGS) \
             SELECT ID FROM w WHERE r <= 2 ORDER BY ID",
        );
        assert_eq!(ints(&rs), vec![1, 2]);
    }

    #[test]
    fn limit_zero() {
        let rs = run("SELECT ID FROM ORGS LIMIT 0");
        assert!(rs.rows.is_empty());
        assert_eq!(rs.columns, vec!["ID"]);
    }
}
