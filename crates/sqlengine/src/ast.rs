//! Abstract syntax tree for the supported SQL dialect.
//!
//! The dialect covers what the GenEdit paper's workloads need: common table
//! expressions (the paper rewrites every query into CTE form before
//! decomposition, §3.2.1), joins, aggregation with `CASE`-based conditional
//! aggregation, window functions (`ROW_NUMBER() OVER (PARTITION BY …)` as in
//! Appendix A), subqueries, and set operations.

use crate::value::DataType;
use serde::{Deserialize, Serialize};

/// A parsed SQL statement. Only queries are supported — GenEdit generates
/// read-only analytics SQL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    Query(Query),
}

/// A full query: optional WITH clause, set-expression body, and trailing
/// ORDER BY / LIMIT that apply to the whole body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    pub ctes: Vec<Cte>,
    pub body: SetExpr,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
}

impl Query {
    /// A query with just a body.
    pub fn simple(select: Select) -> Query {
        Query {
            ctes: Vec::new(),
            body: SetExpr::Select(Box::new(select)),
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// The top-level `Select` if the body is a plain select (no set ops).
    pub fn as_select(&self) -> Option<&Select> {
        match &self.body {
            SetExpr::Select(s) => Some(s),
            SetExpr::SetOp { .. } => None,
        }
    }
}

/// One `name AS (query)` entry of a WITH clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cte {
    pub name: String,
    pub query: Box<Query>,
}

/// Body of a query: a select or a set operation tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SetExpr {
    Select(Box<Select>),
    SetOp {
        op: SetOp,
        all: bool,
        left: Box<SetExpr>,
        right: Box<SetExpr>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SetOp {
    Union,
    Intersect,
    Except,
}

/// A single SELECT block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

/// An item of the SELECT list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// A table reference in FROM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TableRef {
    /// A base table or CTE by name.
    Named { name: String, alias: Option<String> },
    /// `(subquery) AS alias`
    Derived { query: Box<Query>, alias: String },
    /// A join of two table references.
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        on: Option<Expr>,
    },
}

impl TableRef {
    pub fn named(name: impl Into<String>) -> TableRef {
        TableRef::Named {
            name: name.into(),
            alias: None,
        }
    }

    pub fn aliased(name: impl Into<String>, alias: impl Into<String>) -> TableRef {
        TableRef::Named {
            name: name.into(),
            alias: Some(alias.into()),
        }
    }

    /// Number of joins in this reference tree.
    pub fn join_count(&self) -> usize {
        match self {
            TableRef::Named { .. } => 0,
            TableRef::Derived { query, .. } => query_join_count(query),
            TableRef::Join { left, right, .. } => 1 + left.join_count() + right.join_count(),
        }
    }
}

fn query_join_count(q: &Query) -> usize {
    let mut n = 0;
    if let SetExpr::Select(s) = &q.body {
        if let Some(from) = &s.from {
            n += from.join_count();
        }
    }
    for cte in &q.ctes {
        n += query_join_count(&cte.query);
    }
    n
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinKind {
    Inner,
    Left,
    Cross,
}

/// One expression of an ORDER BY list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

/// Scalar literal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    Null,
    Integer(i64),
    Float(f64),
    String(String),
    Boolean(bool),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnaryOp {
    Neg,
    Not,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Concat,
}

impl BinaryOp {
    /// Parsing/printing precedence; higher binds tighter.
    pub fn precedence(&self) -> u8 {
        match self {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => 4,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Concat => 5,
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 6,
        }
    }

    pub fn symbol(&self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Concat => "||",
        }
    }
}

/// A function call, possibly aggregate or window (`… OVER (…)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionCall {
    /// Uppercased function name.
    pub name: String,
    pub args: Vec<Expr>,
    /// `COUNT(*)`
    pub star: bool,
    /// `COUNT(DISTINCT x)`
    pub distinct: bool,
    pub over: Option<WindowSpec>,
}

impl FunctionCall {
    pub fn new(name: impl Into<String>, args: Vec<Expr>) -> FunctionCall {
        FunctionCall {
            name: name.into().to_ascii_uppercase(),
            args,
            star: false,
            distinct: false,
            over: None,
        }
    }
}

/// `OVER (PARTITION BY … ORDER BY …)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowSpec {
    pub partition_by: Vec<Expr>,
    pub order_by: Vec<OrderItem>,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    Literal(Literal),
    /// `name` or `table.name`
    Column {
        table: Option<String>,
        name: String,
    },
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    InSubquery {
        expr: Box<Expr>,
        subquery: Box<Query>,
        negated: bool,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    Cast {
        expr: Box<Expr>,
        ty: DataType,
    },
    Function(FunctionCall),
    Exists {
        subquery: Box<Query>,
        negated: bool,
    },
    ScalarSubquery(Box<Query>),
}

impl Expr {
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            table: None,
            name: name.into(),
        }
    }

    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            table: Some(table.into()),
            name: name.into(),
        }
    }

    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Integer(v))
    }

    pub fn float(v: f64) -> Expr {
        Expr::Literal(Literal::Float(v))
    }

    pub fn string(v: impl Into<String>) -> Expr {
        Expr::Literal(Literal::String(v.into()))
    }

    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::And, right)
    }

    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::Eq, right)
    }

    pub fn func(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Function(FunctionCall::new(name, args))
    }

    /// Printing/parsing precedence of this expression node; `u8::MAX` for
    /// atoms that never need parentheses.
    pub fn precedence(&self) -> u8 {
        match self {
            Expr::Binary { op, .. } => op.precedence(),
            Expr::Unary {
                op: UnaryOp::Not, ..
            } => 3,
            Expr::Unary {
                op: UnaryOp::Neg, ..
            } => 7,
            Expr::IsNull { .. }
            | Expr::InList { .. }
            | Expr::InSubquery { .. }
            | Expr::Between { .. }
            | Expr::Like { .. } => 4,
            _ => u8::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let e = Expr::and(
            Expr::eq(Expr::col("a"), Expr::int(1)),
            Expr::binary(Expr::col("b"), BinaryOp::Gt, Expr::float(2.5)),
        );
        match e {
            Expr::Binary {
                op: BinaryOp::And, ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn function_name_uppercased() {
        let f = FunctionCall::new("sum", vec![Expr::col("x")]);
        assert_eq!(f.name, "SUM");
    }

    #[test]
    fn precedence_ordering() {
        assert!(BinaryOp::Mul.precedence() > BinaryOp::Add.precedence());
        assert!(BinaryOp::Add.precedence() > BinaryOp::Eq.precedence());
        assert!(BinaryOp::Eq.precedence() > BinaryOp::And.precedence());
        assert!(BinaryOp::And.precedence() > BinaryOp::Or.precedence());
    }

    #[test]
    fn join_count_counts_nested() {
        let tr = TableRef::Join {
            left: Box::new(TableRef::named("a")),
            right: Box::new(TableRef::Join {
                left: Box::new(TableRef::named("b")),
                right: Box::new(TableRef::named("c")),
                kind: JoinKind::Inner,
                on: None,
            }),
            kind: JoinKind::Left,
            on: None,
        };
        assert_eq!(tr.join_count(), 2);
    }

    #[test]
    fn as_select_rejects_set_ops() {
        let q = Query {
            ctes: vec![],
            body: SetExpr::SetOp {
                op: SetOp::Union,
                all: false,
                left: Box::new(SetExpr::Select(Box::default())),
                right: Box::new(SetExpr::Select(Box::default())),
            },
            order_by: vec![],
            limit: None,
        };
        assert!(q.as_select().is_none());
        assert!(Query::simple(Select::default()).as_select().is_some());
    }
}
