//! Projection units and window-function computation, shared by the
//! vectorized planner and the row-at-a-time reference interpreter.
//!
//! A [`Unit`] is one projection unit — a plain row, or a group of rows
//! under aggregation. Window values are computed per unit with typed
//! partition keys ([`KeyElem`] tuples), so partition-by values containing
//! literal `|` characters can never alias one another.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::aggregate::Accumulator;
use crate::ast::{Expr, Literal};
use crate::error::{EngineError, EngineResult};
use crate::eval::{
    eval_expr, AggValues, ColMeta, EvalEnv, GroupView, Relation, Scope, WindowValues,
};
use crate::functions;
use crate::key::{key_elem, KeyElem};
use crate::value::Value;
use std::collections::HashMap;

/// One projection unit: a plain row or a group of rows.
pub(crate) struct Unit {
    /// Representative row index (first member), `usize::MAX` for an empty
    /// implicit group.
    pub rep: usize,
    /// Member row indices.
    pub members: Vec<usize>,
}

pub(crate) static EMPTY_ROW: &[Value] = &[];

/// Build the evaluation scope for one unit.
pub(crate) fn unit_scope<'a>(
    rel: &'a Relation,
    unit: &'a Unit,
    outer: Option<&'a Scope<'a>>,
    windows: Option<&'a WindowValues>,
    aggs: Option<&'a AggValues>,
    unit_index: usize,
    aggregated: bool,
) -> Scope<'a> {
    let row: &[Value] = if unit.rep == usize::MAX {
        EMPTY_ROW
    } else {
        &rel.rows[unit.rep]
    };
    let cols: &[ColMeta] = if unit.rep == usize::MAX {
        &[]
    } else {
        &rel.cols
    };
    Scope {
        cols,
        row,
        parent: outer,
        group: if aggregated {
            Some(GroupView {
                rel,
                indices: &unit.members,
            })
        } else {
            None
        },
        windows,
        aggs,
        unit_index,
    }
}

/// Compute every distinct window expression's per-unit values.
pub(crate) fn compute_windows(
    rel: &Relation,
    units: &[Unit],
    window_exprs: &[&Expr],
    outer: Option<&Scope<'_>>,
    env: &EvalEnv<'_>,
    aggregated: bool,
) -> EngineResult<WindowValues> {
    let mut out: WindowValues = HashMap::new();
    for wexpr in window_exprs {
        let key = wexpr.to_string();
        if out.contains_key(&key) {
            continue;
        }
        let Expr::Function(call) = wexpr else {
            continue; // collect_window_calls only returns functions
        };
        let Some(spec) = call.over.as_ref() else {
            continue; // and only ones carrying an OVER clause
        };

        // Evaluate partition and order expressions per unit.
        let mut partition_keys: Vec<Vec<KeyElem>> = Vec::with_capacity(units.len());
        let mut order_keys: Vec<Vec<Value>> = Vec::with_capacity(units.len());
        for (ui, unit) in units.iter().enumerate() {
            let scope = unit_scope(rel, unit, outer, None, None, ui, aggregated);
            let mut pk = Vec::with_capacity(spec.partition_by.len());
            for e in &spec.partition_by {
                pk.push(key_elem(&eval_expr(e, &scope, env)?));
            }
            partition_keys.push(pk);
            let mut ok = Vec::with_capacity(spec.order_by.len());
            for o in &spec.order_by {
                ok.push(eval_expr(&o.expr, &scope, env)?);
            }
            order_keys.push(ok);
        }

        // Partition units by typed key.
        let mut partitions: HashMap<Vec<KeyElem>, Vec<usize>> = HashMap::new();
        for (ui, pk) in partition_keys.into_iter().enumerate() {
            partitions.entry(pk).or_default().push(ui);
        }

        let mut values: Vec<Value> = vec![Value::Null; units.len()];
        for indices in partitions.values() {
            let mut sorted = indices.clone();
            sorted.sort_by(|&a, &b| {
                for (k, o) in spec.order_by.iter().enumerate() {
                    let ord = order_keys[a][k].total_cmp(&order_keys[b][k]);
                    let ord = if o.desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                a.cmp(&b)
            });

            let name = call.name.to_ascii_uppercase();
            match name.as_str() {
                "ROW_NUMBER" => {
                    for (pos, &ui) in sorted.iter().enumerate() {
                        values[ui] = Value::Integer(pos as i64 + 1);
                    }
                }
                "RANK" | "DENSE_RANK" => {
                    let mut rank = 0i64;
                    let mut dense = 0i64;
                    let mut prev: Option<&Vec<Value>> = None;
                    for (pos, &ui) in sorted.iter().enumerate() {
                        let tied = prev
                            .map(|p| {
                                p.len() == order_keys[ui].len()
                                    && p.iter()
                                        .zip(&order_keys[ui])
                                        .all(|(a, b)| a.total_cmp(b) == std::cmp::Ordering::Equal)
                            })
                            .unwrap_or(false);
                        if !tied {
                            rank = pos as i64 + 1;
                            dense += 1;
                        }
                        values[ui] = Value::Integer(if name == "RANK" { rank } else { dense });
                        prev = Some(&order_keys[ui]);
                    }
                }
                "NTILE" => {
                    let k = match call.args.first() {
                        Some(Expr::Literal(Literal::Integer(n))) if *n > 0 => *n as usize,
                        _ => {
                            return Err(EngineError::typing(
                                "NTILE requires a positive integer literal argument",
                            ))
                        }
                    };
                    let n = sorted.len();
                    for (pos, &ui) in sorted.iter().enumerate() {
                        // Standard NTILE distribution: earlier buckets get
                        // the remainder.
                        let bucket = (pos * k) / n.max(1);
                        values[ui] = Value::Integer(bucket as i64 + 1);
                    }
                }
                "LAG" | "LEAD" => {
                    // LAG/LEAD(expr [, offset [, default]]) within the
                    // partition's sort order.
                    if call.args.is_empty() || call.args.len() > 3 {
                        return Err(EngineError::typing(format!(
                            "{name} expects 1 to 3 arguments"
                        )));
                    }
                    let offset = match call.args.get(1) {
                        None => 1i64,
                        Some(Expr::Literal(Literal::Integer(n))) if *n >= 0 => *n,
                        _ => {
                            return Err(EngineError::typing(format!(
                                "{name} offset must be a non-negative integer literal"
                            )))
                        }
                    };
                    // Evaluate the carried expression for each unit first.
                    let mut carried = Vec::with_capacity(sorted.len());
                    for &ui in &sorted {
                        let scope = unit_scope(rel, &units[ui], outer, None, None, ui, aggregated);
                        carried.push(eval_expr(&call.args[0], &scope, env)?);
                    }
                    for (pos, &ui) in sorted.iter().enumerate() {
                        let source = if name == "LAG" {
                            pos.checked_sub(offset as usize)
                        } else {
                            pos.checked_add(offset as usize)
                                .filter(|p| *p < sorted.len())
                        };
                        values[ui] = match source {
                            Some(p) => carried[p].clone(),
                            None => match call.args.get(2) {
                                Some(default) => {
                                    let scope = unit_scope(
                                        rel, &units[ui], outer, None, None, ui, aggregated,
                                    );
                                    eval_expr(default, &scope, env)?
                                }
                                None => Value::Null,
                            },
                        };
                    }
                }
                "FIRST_VALUE" | "LAST_VALUE" => {
                    if call.args.len() != 1 {
                        return Err(EngineError::typing(format!(
                            "{name} expects exactly one argument"
                        )));
                    }
                    // Whole-partition frame (no frame clauses), so
                    // LAST_VALUE sees the true partition end.
                    let pick = if name == "FIRST_VALUE" {
                        sorted.first()
                    } else {
                        sorted.last()
                    };
                    if let Some(&src) = pick {
                        let scope =
                            unit_scope(rel, &units[src], outer, None, None, src, aggregated);
                        let v = eval_expr(&call.args[0], &scope, env)?;
                        for &ui in &sorted {
                            values[ui] = v.clone();
                        }
                    }
                }
                agg if functions::is_aggregate(agg) => {
                    // Aggregate over the whole partition (no frames).
                    let mut acc = Accumulator::for_function(agg, call.distinct, call.star)?;
                    for &ui in &sorted {
                        if call.star {
                            acc.update(&Value::Integer(1))?;
                        } else {
                            if call.args.len() != 1 {
                                return Err(EngineError::typing(format!(
                                    "window aggregate {agg} expects one argument"
                                )));
                            }
                            let scope =
                                unit_scope(rel, &units[ui], outer, None, None, ui, aggregated);
                            let v = eval_expr(&call.args[0], &scope, env)?;
                            acc.update(&v)?;
                        }
                    }
                    let v = acc.finish();
                    for &ui in &sorted {
                        values[ui] = v.clone();
                    }
                }
                other => {
                    return Err(EngineError::binding(format!(
                        "unknown window function {other}"
                    )))
                }
            }
        }
        out.insert(key, values);
    }
    Ok(out)
}
