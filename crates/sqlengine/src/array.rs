//! Columnar arrays and batches for the vectorized engine.
//!
//! An [`Array`] is one column of values in a typed layout with a validity
//! bitmap; a [`DataChunk`] is a batch of equal-length columns behind
//! `Arc` so operators can share columns without copying. Columns whose
//! values mix types (legal in this dynamically typed engine) degrade to
//! the [`Array::Any`] layout, which stores boxed [`Value`]s — semantics
//! never change, only the memory layout does.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::value::{Date, Value};
use std::sync::Arc;

/// A packed validity bitmap: bit `i` set means row `i` is non-NULL.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    bits: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// A bitmap of `len` entries, all set to `valid`.
    pub fn with_len(len: usize, valid: bool) -> Bitmap {
        let word = if valid { u64::MAX } else { 0 };
        Bitmap {
            bits: vec![word; len.div_ceil(64)],
            len,
        }
    }

    /// Append one entry.
    pub fn push(&mut self, valid: bool) {
        let (word, bit) = (self.len / 64, self.len % 64);
        if word == self.bits.len() {
            self.bits.push(0);
        }
        if valid {
            self.bits[word] |= 1 << bit;
        } else {
            self.bits[word] &= !(1 << bit);
        }
        self.len += 1;
    }

    /// Mark entry `i` valid.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.bits[i / 64] |= 1 << (i % 64);
    }

    /// Is entry `i` valid (non-NULL)?
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the bitmap empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of valid (non-NULL) entries.
    pub fn count_valid(&self) -> usize {
        let mut n: usize = 0;
        for (w, word) in self.bits.iter().enumerate() {
            let live = if (w + 1) * 64 <= self.len {
                *word
            } else {
                let tail = self.len - w * 64;
                if tail == 0 {
                    0
                } else {
                    *word & (u64::MAX >> (64 - tail))
                }
            };
            n += live.count_ones() as usize;
        }
        n
    }
}

/// A borrowed view of one array element — the alloc-free currency of the
/// element-wise kernels in [`crate::vector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a> {
    /// SQL NULL.
    Null,
    /// Integer element.
    Int(i64),
    /// Float element.
    Float(f64),
    /// Text element, borrowed from the array.
    Str(&'a str),
    /// Boolean element.
    Bool(bool),
    /// Date element.
    Date(Date),
}

impl<'a> ValueRef<'a> {
    /// Is this NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, ValueRef::Null)
    }

    /// Materialize into an owned [`Value`].
    pub fn to_value(self) -> Value {
        match self {
            ValueRef::Null => Value::Null,
            ValueRef::Int(i) => Value::Integer(i),
            ValueRef::Float(f) => Value::Float(f),
            ValueRef::Str(s) => Value::Text(s.to_string()),
            ValueRef::Bool(b) => Value::Boolean(b),
            ValueRef::Date(d) => Value::Date(d),
        }
    }

    /// Borrowing view of an owned [`Value`].
    pub fn from_value(v: &'a Value) -> ValueRef<'a> {
        match v {
            Value::Null => ValueRef::Null,
            Value::Integer(i) => ValueRef::Int(*i),
            Value::Float(f) => ValueRef::Float(*f),
            Value::Text(s) => ValueRef::Str(s),
            Value::Boolean(b) => ValueRef::Bool(*b),
            Value::Date(d) => ValueRef::Date(*d),
        }
    }
}

impl std::fmt::Display for ValueRef<'_> {
    /// Renders exactly like [`Value`]'s `Display`, so vectorized error
    /// messages and `||` concatenation match the row engine.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValueRef::Null => f.write_str("NULL"),
            ValueRef::Int(i) => write!(f, "{i}"),
            ValueRef::Float(x) => f.write_str(&crate::value::render_float(*x)),
            ValueRef::Str(s) => f.write_str(s),
            ValueRef::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
            ValueRef::Date(d) => write!(f, "{d}"),
        }
    }
}

/// One column of a batch in a typed layout.
///
/// Invalid (NULL) slots of the typed layouts hold an arbitrary default;
/// readers must consult the validity bitmap first (as [`Array::at`] does).
#[derive(Debug, Clone)]
pub enum Array {
    /// 64-bit integers.
    Int {
        /// Element storage; NULL slots hold 0.
        data: Vec<i64>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// 64-bit floats.
    Float {
        /// Element storage; NULL slots hold 0.0.
        data: Vec<f64>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// Strings.
    Str {
        /// Element storage; NULL slots hold "".
        data: Vec<String>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// Booleans.
    Bool {
        /// Element storage; NULL slots hold false.
        data: Vec<bool>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// Dates.
    Date {
        /// Element storage; NULL slots hold an arbitrary date.
        data: Vec<Date>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// Mixed-type fallback: boxed values, NULLs stored inline.
    Any(Vec<Value>),
}

impl Array {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Array::Int { data, .. } => data.len(),
            Array::Float { data, .. } => data.len(),
            Array::Str { data, .. } => data.len(),
            Array::Bool { data, .. } => data.len(),
            Array::Date { data, .. } => data.len(),
            Array::Any(v) => v.len(),
        }
    }

    /// Is the array empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is element `i` NULL?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            Array::Int { validity, .. }
            | Array::Float { validity, .. }
            | Array::Str { validity, .. }
            | Array::Bool { validity, .. }
            | Array::Date { validity, .. } => !validity.get(i),
            Array::Any(v) => v[i].is_null(),
        }
    }

    /// Borrowed view of element `i`.
    #[inline]
    pub fn at(&self, i: usize) -> ValueRef<'_> {
        match self {
            Array::Int { data, validity } => {
                if validity.get(i) {
                    ValueRef::Int(data[i])
                } else {
                    ValueRef::Null
                }
            }
            Array::Float { data, validity } => {
                if validity.get(i) {
                    ValueRef::Float(data[i])
                } else {
                    ValueRef::Null
                }
            }
            Array::Str { data, validity } => {
                if validity.get(i) {
                    ValueRef::Str(&data[i])
                } else {
                    ValueRef::Null
                }
            }
            Array::Bool { data, validity } => {
                if validity.get(i) {
                    ValueRef::Bool(data[i])
                } else {
                    ValueRef::Null
                }
            }
            Array::Date { data, validity } => {
                if validity.get(i) {
                    ValueRef::Date(data[i])
                } else {
                    ValueRef::Null
                }
            }
            Array::Any(v) => ValueRef::from_value(&v[i]),
        }
    }

    /// Owned copy of element `i`.
    pub fn get(&self, i: usize) -> Value {
        self.at(i).to_value()
    }

    /// New array of the elements at `indices`, in order. Typed layouts
    /// copy storage directly rather than routing every element through
    /// the builder's type dispatch.
    pub fn gather(&self, indices: &[u32]) -> Array {
        fn bits(validity: &Bitmap, indices: &[u32]) -> Bitmap {
            let mut v = Bitmap::with_len(indices.len(), false);
            for (o, &i) in indices.iter().enumerate() {
                if validity.get(i as usize) {
                    v.set(o);
                }
            }
            v
        }
        match self {
            Array::Int { data, validity } => Array::Int {
                data: indices.iter().map(|&i| data[i as usize]).collect(),
                validity: bits(validity, indices),
            },
            Array::Float { data, validity } => Array::Float {
                data: indices.iter().map(|&i| data[i as usize]).collect(),
                validity: bits(validity, indices),
            },
            Array::Str { data, validity } => Array::Str {
                data: indices.iter().map(|&i| data[i as usize].clone()).collect(),
                validity: bits(validity, indices),
            },
            Array::Bool { data, validity } => Array::Bool {
                data: indices.iter().map(|&i| data[i as usize]).collect(),
                validity: bits(validity, indices),
            },
            Array::Date { data, validity } => Array::Date {
                data: indices.iter().map(|&i| data[i as usize]).collect(),
                validity: bits(validity, indices),
            },
            Array::Any(values) => Array::Any(
                indices
                    .iter()
                    .map(|&i| values[i as usize].clone())
                    .collect(),
            ),
        }
    }

    /// Like [`Array::gather`], but `u32::MAX` entries produce NULL —
    /// used to pad the unmatched side of LEFT joins.
    pub fn gather_padded(&self, indices: &[u32]) -> Array {
        let mut b = ArrayBuilder::with_capacity(indices.len());
        for &i in indices {
            if i == u32::MAX {
                b.push_ref(ValueRef::Null);
            } else {
                b.push_ref(self.at(i as usize));
            }
        }
        b.finish()
    }

    /// Build an array from owned values.
    pub fn from_values(values: Vec<Value>) -> Array {
        let mut b = ArrayBuilder::with_capacity(values.len());
        for v in values {
            b.push(v);
        }
        b.finish()
    }
}

/// Incremental [`Array`] constructor.
///
/// The layout is decided by the first non-NULL value pushed; a later
/// value of a different type degrades the whole column to [`Array::Any`].
#[derive(Debug)]
pub enum ArrayBuilder {
    /// Nothing but NULLs seen so far.
    Untyped {
        /// NULL count.
        nulls: usize,
    },
    /// Integer layout.
    Int {
        /// Element storage.
        data: Vec<i64>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// Float layout.
    Float {
        /// Element storage.
        data: Vec<f64>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// String layout.
    Str {
        /// Element storage.
        data: Vec<String>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// Boolean layout.
    Bool {
        /// Element storage.
        data: Vec<bool>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// Date layout.
    Date {
        /// Element storage.
        data: Vec<Date>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// Mixed-type fallback.
    Any(Vec<Value>),
}

macro_rules! builder_start {
    ($nulls:expr, $variant:ident, $default:expr, $v:expr) => {{
        let mut data = Vec::with_capacity($nulls + 8);
        data.resize($nulls, $default);
        let mut validity = Bitmap::with_len($nulls, false);
        data.push($v);
        validity.push(true);
        ArrayBuilder::$variant { data, validity }
    }};
}

impl ArrayBuilder {
    /// An empty builder.
    pub fn new() -> ArrayBuilder {
        ArrayBuilder::Untyped { nulls: 0 }
    }

    /// An empty builder with room for `cap` elements.
    pub fn with_capacity(_cap: usize) -> ArrayBuilder {
        // Capacity is reserved lazily when the layout is decided.
        ArrayBuilder::new()
    }

    /// Number of elements pushed so far.
    pub fn len(&self) -> usize {
        match self {
            ArrayBuilder::Untyped { nulls } => *nulls,
            ArrayBuilder::Int { data, .. } => data.len(),
            ArrayBuilder::Float { data, .. } => data.len(),
            ArrayBuilder::Str { data, .. } => data.len(),
            ArrayBuilder::Bool { data, .. } => data.len(),
            ArrayBuilder::Date { data, .. } => data.len(),
            ArrayBuilder::Any(v) => v.len(),
        }
    }

    /// Is the builder empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one owned value.
    pub fn push(&mut self, v: Value) {
        match (&mut *self, v) {
            (ArrayBuilder::Untyped { nulls }, Value::Null) => *nulls += 1,
            (ArrayBuilder::Untyped { nulls }, Value::Integer(i)) => {
                *self = builder_start!(*nulls, Int, 0, i);
            }
            (ArrayBuilder::Untyped { nulls }, Value::Float(f)) => {
                *self = builder_start!(*nulls, Float, 0.0, f);
            }
            (ArrayBuilder::Untyped { nulls }, Value::Text(s)) => {
                *self = builder_start!(*nulls, Str, String::new(), s);
            }
            (ArrayBuilder::Untyped { nulls }, Value::Boolean(b)) => {
                *self = builder_start!(*nulls, Bool, false, b);
            }
            (ArrayBuilder::Untyped { nulls }, Value::Date(d)) => {
                *self = builder_start!(*nulls, Date, d, d);
            }
            (ArrayBuilder::Int { data, validity }, Value::Integer(i)) => {
                data.push(i);
                validity.push(true);
            }
            (ArrayBuilder::Int { data, validity }, Value::Null) => {
                data.push(0);
                validity.push(false);
            }
            (ArrayBuilder::Float { data, validity }, Value::Float(f)) => {
                data.push(f);
                validity.push(true);
            }
            (ArrayBuilder::Float { data, validity }, Value::Null) => {
                data.push(0.0);
                validity.push(false);
            }
            (ArrayBuilder::Str { data, validity }, Value::Text(s)) => {
                data.push(s);
                validity.push(true);
            }
            (ArrayBuilder::Str { data, validity }, Value::Null) => {
                data.push(String::new());
                validity.push(false);
            }
            (ArrayBuilder::Bool { data, validity }, Value::Boolean(b)) => {
                data.push(b);
                validity.push(true);
            }
            (ArrayBuilder::Bool { data, validity }, Value::Null) => {
                data.push(false);
                validity.push(false);
            }
            (ArrayBuilder::Date { data, validity }, Value::Date(d)) => {
                data.push(d);
                validity.push(true);
            }
            (ArrayBuilder::Date { data, validity }, Value::Null) => {
                // Reuse the first element as the placeholder; readers
                // never look at invalid slots.
                data.push(data[0]);
                validity.push(false);
            }
            (ArrayBuilder::Any(values), v) => values.push(v),
            (_, v) => {
                self.degrade();
                if let ArrayBuilder::Any(values) = self {
                    values.push(v);
                }
            }
        }
    }

    /// Append one borrowed value.
    pub fn push_ref(&mut self, v: ValueRef<'_>) {
        // Typed fast paths that avoid materializing a Value.
        match (&mut *self, v) {
            (ArrayBuilder::Int { data, validity }, ValueRef::Int(i)) => {
                data.push(i);
                validity.push(true);
                return;
            }
            (ArrayBuilder::Float { data, validity }, ValueRef::Float(f)) => {
                data.push(f);
                validity.push(true);
                return;
            }
            (ArrayBuilder::Untyped { nulls }, ValueRef::Null) => {
                *nulls += 1;
                return;
            }
            _ => {}
        }
        self.push(v.to_value());
    }

    fn degrade(&mut self) {
        let taken = std::mem::replace(self, ArrayBuilder::Any(Vec::new()));
        let values = array_to_values(taken.finish());
        *self = ArrayBuilder::Any(values);
    }

    /// Finalize into an [`Array`]. An all-NULL column finishes as
    /// [`Array::Any`] holding NULLs.
    pub fn finish(self) -> Array {
        match self {
            ArrayBuilder::Untyped { nulls } => Array::Any(vec![Value::Null; nulls]),
            ArrayBuilder::Int { data, validity } => Array::Int { data, validity },
            ArrayBuilder::Float { data, validity } => Array::Float { data, validity },
            ArrayBuilder::Str { data, validity } => Array::Str { data, validity },
            ArrayBuilder::Bool { data, validity } => Array::Bool { data, validity },
            ArrayBuilder::Date { data, validity } => Array::Date { data, validity },
            ArrayBuilder::Any(values) => Array::Any(values),
        }
    }
}

impl Default for ArrayBuilder {
    fn default() -> Self {
        ArrayBuilder::new()
    }
}

fn array_to_values(a: Array) -> Vec<Value> {
    match a {
        Array::Any(values) => values,
        Array::Int { data, validity } => data
            .into_iter()
            .enumerate()
            .map(|(i, x)| {
                if validity.get(i) {
                    Value::Integer(x)
                } else {
                    Value::Null
                }
            })
            .collect(),
        Array::Float { data, validity } => data
            .into_iter()
            .enumerate()
            .map(|(i, x)| {
                if validity.get(i) {
                    Value::Float(x)
                } else {
                    Value::Null
                }
            })
            .collect(),
        Array::Str { data, validity } => data
            .into_iter()
            .enumerate()
            .map(|(i, x)| {
                if validity.get(i) {
                    Value::Text(x)
                } else {
                    Value::Null
                }
            })
            .collect(),
        Array::Bool { data, validity } => data
            .into_iter()
            .enumerate()
            .map(|(i, x)| {
                if validity.get(i) {
                    Value::Boolean(x)
                } else {
                    Value::Null
                }
            })
            .collect(),
        Array::Date { data, validity } => data
            .into_iter()
            .enumerate()
            .map(|(i, x)| {
                if validity.get(i) {
                    Value::Date(x)
                } else {
                    Value::Null
                }
            })
            .collect(),
    }
}

/// Transpose borrowed row-major values into shared columns. `width`
/// disambiguates the zero-row case.
pub fn columns_from_rows(rows: &[Vec<Value>], width: usize) -> Vec<Arc<Array>> {
    let mut builders: Vec<ArrayBuilder> = (0..width)
        .map(|_| ArrayBuilder::with_capacity(rows.len()))
        .collect();
    for row in rows {
        for (b, v) in builders.iter_mut().zip(row.iter()) {
            b.push(v.clone());
        }
    }
    builders.into_iter().map(|b| Arc::new(b.finish())).collect()
}

/// A batch of equal-length columns. The row count is carried explicitly
/// so zero-column chunks (the `SELECT` with no `FROM` case) still have a
/// well-defined length.
#[derive(Debug, Clone)]
pub struct DataChunk {
    /// Columns, shared by reference between operators.
    pub cols: Vec<Arc<Array>>,
    len: usize,
}

impl DataChunk {
    /// A chunk from pre-built columns. All columns must have `len` rows.
    pub fn new(cols: Vec<Arc<Array>>, len: usize) -> DataChunk {
        debug_assert!(cols.iter().all(|c| c.len() == len));
        DataChunk { cols, len }
    }

    /// The zero-column, one-row chunk used for `SELECT` without `FROM`.
    pub fn unit() -> DataChunk {
        DataChunk {
            cols: Vec::new(),
            len: 1,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the chunk empty (zero rows)?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Owned copy of row `i`.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.get(i)).collect()
    }

    /// Transpose row-major values into columns, consuming the rows.
    /// `width` disambiguates the zero-row case.
    pub fn from_rows(rows: Vec<Vec<Value>>, width: usize) -> DataChunk {
        let len = rows.len();
        let mut builders: Vec<ArrayBuilder> = (0..width).map(|_| ArrayBuilder::new()).collect();
        for row in rows {
            for (b, v) in builders.iter_mut().zip(row) {
                b.push(v);
            }
        }
        DataChunk {
            cols: builders.into_iter().map(|b| Arc::new(b.finish())).collect(),
            len,
        }
    }

    /// Copy out row-major values (columns stay shared).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.len).map(|i| self.row(i)).collect()
    }

    /// Move out row-major values. Columns not shared elsewhere are
    /// transposed without cloning element payloads.
    pub fn into_rows(self) -> Vec<Vec<Value>> {
        let width = self.cols.len();
        let mut rows: Vec<Vec<Value>> = (0..self.len).map(|_| Vec::with_capacity(width)).collect();
        for col in self.cols {
            match Arc::try_unwrap(col) {
                Ok(array) => {
                    for (i, v) in array_to_values(array).into_iter().enumerate() {
                        rows[i].push(v);
                    }
                }
                Err(shared) => {
                    for (i, row) in rows.iter_mut().enumerate() {
                        row.push(shared.get(i));
                    }
                }
            }
        }
        rows
    }

    /// New chunk of the rows at `indices`, in order.
    pub fn take(&self, indices: &[u32]) -> DataChunk {
        DataChunk {
            cols: self
                .cols
                .iter()
                .map(|c| Arc::new(c.gather(indices)))
                .collect(),
            len: indices.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_push_get_count() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(b.count_valid(), (0..130).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn builder_typed_layout_with_nulls() {
        let a = Array::from_values(vec![
            Value::Null,
            Value::Integer(7),
            Value::Null,
            Value::Integer(9),
        ]);
        assert!(matches!(a, Array::Int { .. }));
        assert!(a.is_null(0));
        assert_eq!(a.get(1), Value::Integer(7));
        assert!(a.is_null(2));
        assert_eq!(a.get(3), Value::Integer(9));
    }

    #[test]
    fn builder_degrades_to_any_on_mixed_types() {
        let a = Array::from_values(vec![
            Value::Integer(1),
            Value::Text("x".into()),
            Value::Null,
            Value::Float(2.5),
        ]);
        assert!(matches!(a, Array::Any(_)));
        assert_eq!(a.get(0), Value::Integer(1));
        assert_eq!(a.get(1), Value::Text("x".into()));
        assert!(a.is_null(2));
        assert_eq!(a.get(3), Value::Float(2.5));
    }

    #[test]
    fn all_null_column_round_trips() {
        let a = Array::from_values(vec![Value::Null; 5]);
        assert_eq!(a.len(), 5);
        assert!((0..5).all(|i| a.is_null(i)));
    }

    #[test]
    fn gather_and_padded_gather() {
        let a = Array::from_values(vec![Value::Integer(10), Value::Null, Value::Integer(30)]);
        let g = a.gather(&[2, 0, 1]);
        assert_eq!(g.get(0), Value::Integer(30));
        assert_eq!(g.get(1), Value::Integer(10));
        assert!(g.is_null(2));
        let p = a.gather_padded(&[0, u32::MAX]);
        assert_eq!(p.get(0), Value::Integer(10));
        assert!(p.is_null(1), "u32::MAX pads NULL (LEFT join semantics)");
    }

    #[test]
    fn chunk_row_round_trip_preserves_value_identity() {
        let rows = vec![
            vec![Value::Integer(1), Value::Text("a|b".into()), Value::Null],
            vec![Value::Integer(2), Value::Null, Value::Float(0.5)],
        ];
        let chunk = DataChunk::from_rows(rows.clone(), 3);
        assert_eq!(chunk.len(), 2);
        assert_eq!(chunk.width(), 3);
        assert_eq!(chunk.to_rows(), rows);
        assert_eq!(chunk.into_rows(), rows);
    }

    #[test]
    fn unit_chunk_has_one_empty_row() {
        let c = DataChunk::unit();
        assert_eq!(c.len(), 1);
        assert_eq!(c.row(0), Vec::<Value>::new());
        assert_eq!(c.take(&[0, 0]).len(), 2);
    }

    #[test]
    fn float_bits_preserved_through_chunk() {
        // NaN and -0.0 must survive transposition bit-for-bit so result
        // fingerprints stay identical to the row engine.
        let rows = vec![vec![Value::Float(f64::NAN)], vec![Value::Float(-0.0)]];
        let chunk = DataChunk::from_rows(rows, 1);
        let out = chunk.into_rows();
        match (&out[0][0], &out[1][0]) {
            (Value::Float(a), Value::Float(b)) => {
                assert!(a.is_nan());
                assert_eq!(b.to_bits(), (-0.0f64).to_bits());
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
