//! # genedit-sql — in-memory SQL engine substrate
//!
//! A from-scratch SQL engine built as the execution substrate for the
//! GenEdit reproduction (CIDR 2025). It provides everything the paper's
//! Text-to-SQL pipeline needs from a warehouse:
//!
//! * a lexer/parser for an analytics dialect (CTEs, joins, aggregates,
//!   window functions, subqueries, set operations, `CASE`, `CAST`,
//!   `TO_CHAR` quarter formatting),
//! * a pretty-printer whose output round-trips through the parser,
//! * an interpreter with SQL NULL semantics, used to compute BIRD-style
//!   Execution Accuracy,
//! * error classification into *syntactic* vs *semantic* failures, which
//!   drives the pipeline's self-correction loop,
//! * static analysis (complexity scoring, referenced tables/columns) used
//!   by schema linking and the oracle model's reasoning-capacity model.
//!
//! ## Quick example
//!
//! ```
//! use genedit_sql::{Database, Table, Column, DataType, Value, execute_sql};
//!
//! let mut db = Database::new("demo");
//! let mut t = Table::new("nums", vec![Column::new("n", DataType::Integer)]);
//! for i in 1..=5 { t.push_row(vec![Value::Integer(i)]).unwrap(); }
//! db.add_table(t).unwrap();
//!
//! let rs = execute_sql(&db, "SELECT SUM(n) AS total FROM nums WHERE n > 1").unwrap();
//! assert_eq!(rs.rows[0][0].as_i64(), Some(14));
//! ```

pub mod aggregate;
pub mod analysis;
pub mod array;
pub mod ast;
pub mod catalog;
pub mod display;
pub mod error;
pub mod eval;
pub mod exec;
pub mod functions;
pub mod key;
pub mod lexer;
pub mod parser;
pub mod physical;
mod reference;
pub mod result;
pub mod value;
pub mod vector;
mod window;

pub use analysis::{complexity, referenced_columns, referenced_tables, ComplexityScore};
pub use array::{Array, ArrayBuilder, Bitmap, DataChunk, ValueRef};
pub use ast::{
    BinaryOp, Cte, Expr, FunctionCall, JoinKind, Literal, OrderItem, Query, Select, SelectItem,
    SetExpr, SetOp, Statement, TableRef, UnaryOp, WindowSpec,
};
pub use catalog::{Column, ColumnProfile, Database, Table};
pub use display::pretty;
pub use error::{EngineError, EngineResult};
pub use exec::{
    current_engine, execute, execute_sql, execute_sql_reference, execute_sql_timed, with_engine,
    Engine, ExecStats,
};
pub use key::{key_elem, row_key, KeyElem};
pub use parser::{parse_expression, parse_statement};
pub use physical::SqlCounters;
pub use result::ResultSet;
pub use value::{DataType, Date, Value};
