//! Columnar physical operators: batch scans, cross joins by index
//! gathering, and hash equi-joins with a nested-loop fallback.
//!
//! The hash-join planner is deliberately conservative: it only takes the
//! hash path when the ON clause is a pure conjunction of column
//! equalities AND the key columns' contents guarantee that every row
//! pair the nested loop would compare is comparable under
//! `Value::sql_cmp` with equality classes a hash key can represent.
//! Anything else falls back to the row-at-a-time nested loop, so join
//! results — including error behavior — are identical to the reference
//! interpreter in every case.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::array::{ArrayBuilder, DataChunk, ValueRef};
use crate::ast::{BinaryOp, Expr, JoinKind, TableRef};
use crate::catalog::Database;
use crate::error::{EngineError, EngineResult};
use crate::eval::{eval_expr, ColMeta, EvalEnv, Relation, Scope};
use crate::exec::{execute_query_with_outer, CteMap};
use crate::key::float_key_bits;
use crate::value::Value;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

// ----------------------------------------------------------------------
// Execution counters
// ----------------------------------------------------------------------

/// Per-query columnar execution counters, accumulated in a thread-local
/// and drained by `execute_sql_timed` into telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SqlCounters {
    /// Column batches materialized by scans.
    pub batches: u64,
    /// Rows read by base-table and CTE scans.
    pub rows_scanned: u64,
    /// Joins executed on the hash path.
    pub hash_joins: u64,
    /// Joins that fell back to the nested loop.
    pub nested_loop_joins: u64,
    /// Nanoseconds spent building join hash tables.
    pub join_build_ns: u64,
    /// Nanoseconds spent probing join hash tables.
    pub join_probe_ns: u64,
    /// Groups produced by hash aggregation.
    pub agg_groups: u64,
}

thread_local! {
    static COUNTERS: Cell<SqlCounters> = const { Cell::new(SqlCounters {
        batches: 0,
        rows_scanned: 0,
        hash_joins: 0,
        nested_loop_joins: 0,
        join_build_ns: 0,
        join_probe_ns: 0,
        agg_groups: 0,
    }) };
}

/// Drain (and reset) this thread's counters.
pub fn take_counters() -> SqlCounters {
    COUNTERS.with(|c| c.replace(SqlCounters::default()))
}

pub(crate) fn with_counters(f: impl FnOnce(&mut SqlCounters)) {
    COUNTERS.with(|c| {
        let mut v = c.get();
        f(&mut v);
        c.set(v);
    });
}

// ----------------------------------------------------------------------
// Sources
// ----------------------------------------------------------------------

/// A resolved FROM clause: column metadata plus a batch of rows.
pub struct Source {
    /// Column qualifiers and names, one per chunk column.
    pub cols: Vec<ColMeta>,
    /// The data, column-major.
    pub chunk: DataChunk,
}

impl Source {
    /// Materialize as a row-major [`Relation`] for interpreter fallback.
    pub fn to_relation(&self) -> Relation {
        Relation {
            cols: self.cols.clone(),
            rows: self.chunk.to_rows(),
        }
    }
}

fn chunk_from_row_refs(rows: &[Vec<Value>], width: usize) -> DataChunk {
    let mut builders: Vec<ArrayBuilder> = (0..width)
        .map(|_| ArrayBuilder::with_capacity(rows.len()))
        .collect();
    for row in rows {
        for (b, v) in builders.iter_mut().zip(row.iter()) {
            b.push(v.clone());
        }
    }
    let cols = builders
        .into_iter()
        .map(|b| Arc::new(b.finish()))
        .collect::<Vec<_>>();
    if cols.is_empty() {
        DataChunk::new(cols, rows.len())
    } else {
        let len = cols[0].len();
        DataChunk::new(cols, len)
    }
}

/// Resolve a FROM clause into a columnar [`Source`], joining as needed.
pub fn resolve_from_columnar(
    db: &Database,
    tr: &TableRef,
    ctes: &CteMap,
    outer: Option<&Scope<'_>>,
) -> EngineResult<Source> {
    match tr {
        TableRef::Named { name, alias } => {
            let qualifier = alias.clone().unwrap_or_else(|| name.clone());
            if let Some(rs) = ctes.get(&name.to_lowercase()) {
                let cols = rs
                    .columns
                    .iter()
                    .map(|c| ColMeta::new(Some(qualifier.clone()), c.clone()))
                    .collect();
                let chunk = chunk_from_row_refs(&rs.rows, rs.columns.len());
                with_counters(|c| {
                    c.batches += 1;
                    c.rows_scanned += chunk.len() as u64;
                });
                return Ok(Source { cols, chunk });
            }
            let table = db
                .table(name)
                .ok_or_else(|| EngineError::binding(format!("no such table {name}")))?;
            let cols = table
                .columns
                .iter()
                .map(|c| ColMeta::new(Some(qualifier.clone()), c.name.clone()))
                .collect();
            let chunk = DataChunk::new(table.columnar(), table.rows.len());
            with_counters(|c| {
                c.batches += 1;
                c.rows_scanned += chunk.len() as u64;
            });
            Ok(Source { cols, chunk })
        }
        TableRef::Derived { query, alias } => {
            let rs = execute_query_with_outer(db, query, ctes, None)?;
            let cols = rs
                .columns
                .iter()
                .map(|c| ColMeta::new(Some(alias.clone()), c.clone()))
                .collect();
            let width = rs.columns.len();
            Ok(Source {
                cols,
                chunk: DataChunk::from_rows(rs.rows, width),
            })
        }
        TableRef::Join {
            left,
            right,
            kind,
            on,
        } => {
            let l = resolve_from_columnar(db, left, ctes, outer)?;
            let r = resolve_from_columnar(db, right, ctes, outer)?;
            join_columnar(db, ctes, outer, l, r, *kind, on.as_ref())
        }
    }
}

// ----------------------------------------------------------------------
// Joins
// ----------------------------------------------------------------------

fn gather_sides(l: &Source, r: &Source, lidx: &[u32], ridx: &[u32], len: usize) -> DataChunk {
    let mut cols = Vec::with_capacity(l.cols.len() + r.cols.len());
    for c in &l.chunk.cols {
        cols.push(Arc::new(c.gather(lidx)));
    }
    for c in &r.chunk.cols {
        // `u32::MAX` marks LEFT-join padding: emit NULL.
        cols.push(Arc::new(c.gather_padded(ridx)));
    }
    DataChunk::new(cols, len)
}

/// Join two columnar sources, preserving the reference engine's
/// left-major row emission order exactly.
pub fn join_columnar(
    db: &Database,
    ctes: &CteMap,
    outer: Option<&Scope<'_>>,
    l: Source,
    r: Source,
    kind: JoinKind,
    on: Option<&Expr>,
) -> EngineResult<Source> {
    let mut cols = l.cols.clone();
    cols.extend(r.cols.iter().cloned());

    match kind {
        JoinKind::Cross => {
            let (n, m) = (l.chunk.len(), r.chunk.len());
            let mut lidx = Vec::with_capacity(n * m);
            let mut ridx = Vec::with_capacity(n * m);
            for li in 0..n as u32 {
                for ri in 0..m as u32 {
                    lidx.push(li);
                    ridx.push(ri);
                }
            }
            let chunk = gather_sides(&l, &r, &lidx, &ridx, n * m);
            Ok(Source { cols, chunk })
        }
        JoinKind::Inner | JoinKind::Left => {
            let pred = on.ok_or_else(|| EngineError::typing("JOIN requires an ON condition"))?;
            if let Some(pairs) = plan_hash_join(pred, &cols, l.cols.len(), &l, &r) {
                Ok(hash_join(l, r, cols, kind, &pairs))
            } else {
                nested_loop_join(db, ctes, outer, l, r, cols, kind, pred)
            }
        }
    }
}

/// One equi-join key column pair with its resolved key representation.
struct KeyPair {
    left: usize,
    right: usize,
    kind: KeyKind,
}

#[derive(Clone, Copy, PartialEq)]
enum KeyKind {
    /// Both sides all-integer: exact `i64` keys.
    Int,
    /// Numeric with floats involved: `f64` bits, NaN canonicalized and
    /// `-0.0` merged with `0.0` (matching `sql_cmp` equality).
    F64,
    /// Text and/or dates: dates render to their ISO string (matching
    /// `sql_cmp`'s Date↔Text comparison).
    Str,
    /// Both sides boolean.
    Bool,
}

#[derive(PartialEq, Eq, Hash)]
enum JKey {
    Int(i64),
    F64(u64),
    Str(String),
    Bool(bool),
}

/// What one key column contains (NULLs ignored).
#[derive(Default)]
struct ColContent {
    ints: bool,
    floats: bool,
    stringy: bool,
    bools: bool,
    /// An integer outside ±2^53, which `f64` cannot represent exactly.
    big_int: bool,
}

const F64_EXACT_INT: i64 = 1 << 53;

fn scan_content(src: &Source, col: usize) -> ColContent {
    let mut c = ColContent::default();
    let arr = &src.chunk.cols[col];
    for i in 0..arr.len() {
        match arr.at(i) {
            ValueRef::Null => {}
            ValueRef::Int(v) => {
                c.ints = true;
                if v.unsigned_abs() > F64_EXACT_INT as u64 {
                    c.big_int = true;
                }
            }
            ValueRef::Float(_) => c.floats = true,
            ValueRef::Str(_) | ValueRef::Date(_) => c.stringy = true,
            ValueRef::Bool(_) => c.bools = true,
        }
    }
    c
}

impl ColContent {
    fn empty(&self) -> bool {
        !(self.ints || self.floats || self.stringy || self.bools)
    }
    fn numeric_only(&self) -> bool {
        !(self.stringy || self.bools)
    }
    fn stringy_only(&self) -> bool {
        !(self.ints || self.floats || self.bools)
    }
    fn bool_only(&self) -> bool {
        !(self.ints || self.floats || self.stringy)
    }
}

/// Decide whether `pred` is a pure conjunction of column equalities whose
/// key columns support exact hash keys. Returns the key column pairs, or
/// `None` to fall back to the nested loop.
fn plan_hash_join(
    pred: &Expr,
    cols: &[ColMeta],
    left_width: usize,
    l: &Source,
    r: &Source,
) -> Option<Vec<KeyPair>> {
    let mut conjuncts = Vec::new();
    split_conjuncts(pred, &mut conjuncts);
    let mut pairs = Vec::with_capacity(conjuncts.len());
    for c in conjuncts {
        let Expr::Binary { left, op, right } = c else {
            return None;
        };
        if *op != BinaryOp::Eq {
            return None;
        }
        let a = resolve_one(left, cols)?;
        let b = resolve_one(right, cols)?;
        let (li, ri) = if a < left_width && b >= left_width {
            (a, b - left_width)
        } else if b < left_width && a >= left_width {
            (b, a - left_width)
        } else {
            return None; // both on one side, or correlated — fall back
        };
        let lc = scan_content(l, li);
        let rc = scan_content(r, ri);
        let kind = classify_pair(&lc, &rc)?;
        pairs.push(KeyPair {
            left: li,
            right: ri,
            kind,
        });
    }
    Some(pairs)
}

fn split_conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::Binary {
        left,
        op: BinaryOp::And,
        right,
    } = e
    {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(e);
    }
}

/// Resolve a column reference to exactly one combined-column index.
fn resolve_one(e: &Expr, cols: &[ColMeta]) -> Option<usize> {
    let Expr::Column { table, name } = e else {
        return None;
    };
    let mut found = None;
    for (i, c) in cols.iter().enumerate() {
        if c.matches(table.as_deref(), name) {
            if found.is_some() {
                return None;
            }
            found = Some(i);
        }
    }
    found
}

fn classify_pair(lc: &ColContent, rc: &ColContent) -> Option<KeyKind> {
    if lc.empty() && rc.empty() {
        return Some(KeyKind::Int);
    }
    if lc.numeric_only() && rc.numeric_only() {
        return if !lc.floats && !rc.floats {
            Some(KeyKind::Int)
        } else if !lc.big_int && !rc.big_int {
            // Floats in play: `sql_cmp` compares mixed numerics as f64,
            // and with no integer beyond ±2^53 the cast is injective, so
            // f64-bit keys reproduce its equality classes exactly.
            Some(KeyKind::F64)
        } else {
            None // Int↔Float equality is not transitive out here
        };
    }
    if lc.stringy_only() && rc.stringy_only() {
        return Some(KeyKind::Str);
    }
    if lc.bool_only() && rc.bool_only() {
        return Some(KeyKind::Bool);
    }
    // Cross-class contents could make the nested loop raise a
    // "cannot compare" error on some row pair; keep its semantics.
    None
}

fn f64_key_bits(f: f64) -> u64 {
    if f == 0.0 {
        0.0f64.to_bits() // merge -0.0 with 0.0, as sql_cmp equates them
    } else {
        float_key_bits(f)
    }
}

fn jkey(kind: KeyKind, v: ValueRef<'_>) -> Option<JKey> {
    match (kind, v) {
        (_, ValueRef::Null) => None,
        (KeyKind::Int, ValueRef::Int(i)) => Some(JKey::Int(i)),
        (KeyKind::F64, ValueRef::Int(i)) => Some(JKey::F64(f64_key_bits(i as f64))),
        (KeyKind::F64, ValueRef::Float(f)) => Some(JKey::F64(f64_key_bits(f))),
        (KeyKind::Str, ValueRef::Str(s)) => Some(JKey::Str(s.to_string())),
        (KeyKind::Str, ValueRef::Date(d)) => Some(JKey::Str(d.to_string())),
        (KeyKind::Bool, ValueRef::Bool(b)) => Some(JKey::Bool(b)),
        // Planner classification guarantees these never happen; treating
        // them as NULL (no match) keeps this total without panicking.
        _ => None,
    }
}

fn row_jkey(src: &Source, row: usize, pairs: &[KeyPair], right: bool) -> Option<Vec<JKey>> {
    let mut key = Vec::with_capacity(pairs.len());
    for p in pairs {
        let col = if right { p.right } else { p.left };
        key.push(jkey(p.kind, src.chunk.cols[col].at(row))?);
    }
    Some(key)
}

fn hash_join(
    l: Source,
    r: Source,
    cols: Vec<ColMeta>,
    kind: JoinKind,
    pairs: &[KeyPair],
) -> Source {
    let build_start = Instant::now();
    let mut table: HashMap<Vec<JKey>, Vec<u32>> = HashMap::with_capacity(r.chunk.len());
    for ri in 0..r.chunk.len() {
        if let Some(key) = row_jkey(&r, ri, pairs, true) {
            table.entry(key).or_default().push(ri as u32);
        }
    }
    let build_ns = build_start.elapsed().as_nanos() as u64;

    let probe_start = Instant::now();
    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    for li in 0..l.chunk.len() {
        let matches = row_jkey(&l, li, pairs, false).and_then(|k| table.get(&k));
        match matches {
            Some(ris) if !ris.is_empty() => {
                for &ri in ris {
                    lidx.push(li as u32);
                    ridx.push(ri);
                }
            }
            _ => {
                if kind == JoinKind::Left {
                    lidx.push(li as u32);
                    ridx.push(u32::MAX);
                }
            }
        }
    }
    let probe_ns = probe_start.elapsed().as_nanos() as u64;
    with_counters(|c| {
        c.hash_joins += 1;
        c.join_build_ns += build_ns;
        c.join_probe_ns += probe_ns;
    });

    let len = lidx.len();
    let chunk = gather_sides(&l, &r, &lidx, &ridx, len);
    Source { cols, chunk }
}

#[allow(clippy::too_many_arguments)]
fn nested_loop_join(
    db: &Database,
    ctes: &CteMap,
    outer: Option<&Scope<'_>>,
    l: Source,
    r: Source,
    cols: Vec<ColMeta>,
    kind: JoinKind,
    pred: &Expr,
) -> EngineResult<Source> {
    with_counters(|c| c.nested_loop_joins += 1);
    let env = EvalEnv { db, ctes };
    let lrows = l.chunk.to_rows();
    let rrows = r.chunk.to_rows();
    let mut out_rows = Vec::new();
    for lrow in &lrows {
        let mut matched = false;
        for rrow in &rrows {
            let mut combined = lrow.clone();
            combined.extend(rrow.iter().cloned());
            let scope = Scope {
                cols: &cols,
                row: &combined,
                parent: outer,
                group: None,
                windows: None,
                aggs: None,
                unit_index: 0,
            };
            if eval_expr(pred, &scope, &env)?.as_bool()? == Some(true) {
                matched = true;
                out_rows.push(combined);
            }
        }
        if kind == JoinKind::Left && !matched {
            let mut combined = lrow.clone();
            combined.extend(std::iter::repeat_n(Value::Null, r.cols.len()));
            out_rows.push(combined);
        }
    }
    let width = cols.len();
    Ok(Source {
        cols,
        chunk: DataChunk::from_rows(out_rows, width),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr as E;
    use crate::catalog::Table;

    fn src(names: &[&str], rows: Vec<Vec<Value>>) -> Source {
        let width = names.len();
        Source {
            cols: names
                .iter()
                .map(|n| ColMeta::new(Some("t".into()), n.to_string()))
                .collect(),
            chunk: DataChunk::from_rows(rows, width),
        }
    }

    fn src2(q: &str, names: &[&str], rows: Vec<Vec<Value>>) -> Source {
        let width = names.len();
        Source {
            cols: names
                .iter()
                .map(|n| ColMeta::new(Some(q.into()), n.to_string()))
                .collect(),
            chunk: DataChunk::from_rows(rows, width),
        }
    }

    fn run_join(l: Source, r: Source, kind: JoinKind, on: Expr) -> Vec<Vec<Value>> {
        let db = Database::new("test");
        let ctes = CteMap::new();
        let out =
            join_columnar(&db, &ctes, None, l, r, kind, Some(&on)).expect("join should succeed");
        out.chunk.to_rows()
    }

    fn i(v: i64) -> Value {
        Value::Integer(v)
    }
    fn t(s: &str) -> Value {
        Value::Text(s.into())
    }

    #[test]
    fn hash_join_matches_and_preserves_order() {
        take_counters();
        let l = src2(
            "l",
            &["k", "a"],
            vec![vec![i(1), t("x")], vec![i(2), t("y")], vec![i(1), t("z")]],
        );
        let r = src2(
            "r",
            &["k", "b"],
            vec![vec![i(1), t("p")], vec![i(3), t("q")], vec![i(1), t("s")]],
        );
        let on = E::eq(E::qcol("l", "k"), E::qcol("r", "k"));
        let rows = run_join(l, r, JoinKind::Inner, on);
        // Left-major order; right matches in right-row order.
        assert_eq!(
            rows,
            vec![
                vec![i(1), t("x"), i(1), t("p")],
                vec![i(1), t("x"), i(1), t("s")],
                vec![i(1), t("z"), i(1), t("p")],
                vec![i(1), t("z"), i(1), t("s")],
            ]
        );
        let c = take_counters();
        assert_eq!(c.hash_joins, 1);
        assert_eq!(c.nested_loop_joins, 0);
    }

    #[test]
    fn null_join_keys_never_match() {
        // NULL = NULL is unknown in SQL: rows with NULL keys must join
        // with nothing, on both the build and probe sides.
        let l = src2("l", &["k"], vec![vec![Value::Null], vec![i(1)]]);
        let r = src2("r", &["k"], vec![vec![Value::Null], vec![i(1)]]);
        let on = E::eq(E::qcol("l", "k"), E::qcol("r", "k"));
        let rows = run_join(l, r, JoinKind::Inner, on);
        assert_eq!(rows, vec![vec![i(1), i(1)]]);
    }

    #[test]
    fn left_join_pads_null_key_rows() {
        let l = src2("l", &["k"], vec![vec![Value::Null], vec![i(7)]]);
        let r = src2("r", &["k", "v"], vec![vec![i(1), t("a")]]);
        let on = E::eq(E::qcol("l", "k"), E::qcol("r", "k"));
        let rows = run_join(l, r, JoinKind::Left, on);
        assert_eq!(
            rows,
            vec![
                vec![Value::Null, Value::Null, Value::Null],
                vec![i(7), Value::Null, Value::Null],
            ]
        );
    }

    #[test]
    fn composite_keys_with_pipe_strings_do_not_collide() {
        // ("a|t:b", "c") vs ("a", "b|t:c") collided under string keys.
        let l = src2("l", &["k1", "k2"], vec![vec![t("a|t:b"), t("c")]]);
        let r = src2(
            "r",
            &["k1", "k2"],
            vec![vec![t("a"), t("b|t:c")], vec![t("a|t:b"), t("c")]],
        );
        let on = E::and(
            E::eq(E::qcol("l", "k1"), E::qcol("r", "k1")),
            E::eq(E::qcol("l", "k2"), E::qcol("r", "k2")),
        );
        let rows = run_join(l, r, JoinKind::Inner, on);
        assert_eq!(rows, vec![vec![t("a|t:b"), t("c"), t("a|t:b"), t("c")]]);
    }

    #[test]
    fn mixed_numeric_keys_match_as_f64() {
        // 1 (int) joins 1.0 (float), like sql_cmp's mixed comparison.
        let l = src2("l", &["k"], vec![vec![i(1)], vec![i(2)]]);
        let r = src2("r", &["k"], vec![vec![Value::Float(1.0)]]);
        let on = E::eq(E::qcol("l", "k"), E::qcol("r", "k"));
        let rows = run_join(l, r, JoinKind::Inner, on);
        assert_eq!(rows, vec![vec![i(1), Value::Float(1.0)]]);
    }

    #[test]
    fn huge_ints_with_floats_fall_back_to_nested_loop() {
        take_counters();
        let big = (1i64 << 53) + 1;
        let l = src2("l", &["k"], vec![vec![i(big)]]);
        let r = src2("r", &["k"], vec![vec![Value::Float(9007199254740992.0)]]);
        let on = E::eq(E::qcol("l", "k"), E::qcol("r", "k"));
        let rows = run_join(l, r, JoinKind::Inner, on);
        // Int(2^53+1) vs Float(2^53) compares equal as f64 in sql_cmp,
        // and the fallback nested loop reproduces exactly that.
        assert_eq!(rows.len(), 1);
        let c = take_counters();
        assert_eq!(c.nested_loop_joins, 1);
        assert_eq!(c.hash_joins, 0);
    }

    #[test]
    fn non_equi_predicate_uses_nested_loop() {
        take_counters();
        let l = src2("l", &["k"], vec![vec![i(1)], vec![i(5)]]);
        let r = src2("r", &["k"], vec![vec![i(3)]]);
        let on = Expr::Binary {
            left: Box::new(E::qcol("l", "k")),
            op: BinaryOp::Gt,
            right: Box::new(E::qcol("r", "k")),
        };
        let rows = run_join(l, r, JoinKind::Inner, on);
        assert_eq!(rows, vec![vec![i(5), i(3)]]);
        let c = take_counters();
        assert_eq!(c.nested_loop_joins, 1);
    }

    #[test]
    fn cross_join_is_left_major() {
        let db = Database::new("test");
        let ctes = CteMap::new();
        let l = src(&["a"], vec![vec![i(1)], vec![i(2)]]);
        let r = src2("u", &["b"], vec![vec![t("x")], vec![t("y")]]);
        let out = join_columnar(&db, &ctes, None, l, r, JoinKind::Cross, None).expect("cross join");
        assert_eq!(
            out.chunk.to_rows(),
            vec![
                vec![i(1), t("x")],
                vec![i(1), t("y")],
                vec![i(2), t("x")],
                vec![i(2), t("y")],
            ]
        );
    }

    #[test]
    fn scan_counts_rows_and_batches() {
        take_counters();
        let mut db = Database::new("test");
        let mut tbl = Table::new(
            "NUMS",
            vec![crate::catalog::Column::new(
                "N",
                crate::value::DataType::Integer,
            )],
        );
        for v in 0..5 {
            tbl.push_row(vec![i(v)]).expect("row arity");
        }
        db.add_table(tbl).expect("add table");
        let tr = TableRef::Named {
            name: "NUMS".into(),
            alias: None,
        };
        let srcr = resolve_from_columnar(&db, &tr, &CteMap::new(), None).expect("scan");
        assert_eq!(srcr.chunk.len(), 5);
        let c = take_counters();
        assert_eq!(c.batches, 1);
        assert_eq!(c.rows_scanned, 5);
    }
}
