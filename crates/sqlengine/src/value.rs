//! Runtime values and their SQL semantics.
//!
//! The engine is dynamically typed at execution time: every cell is a
//! [`Value`]. Comparison and arithmetic follow SQL conventions —
//! three-valued logic around NULL, numeric coercion between integers and
//! floats, lexicographic text ordering — which is what the Execution
//! Accuracy metric of the BIRD benchmark (paper §3.3.2) compares on.

use crate::error::{EngineError, EngineResult};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A calendar date. The engine supports dates as first-class values because
/// the paper's running example `Q_fin-perf` (Appendix A) groups financial
/// months into quarters with `TO_CHAR(FIN_MONTH, 'YYYY"Q"Q')`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    pub year: i32,
    pub month: u8,
    pub day: u8,
}

impl Date {
    /// Construct a date, validating month/day ranges (days are validated
    /// against the correct month length, including leap years).
    pub fn new(year: i32, month: u8, day: u8) -> EngineResult<Self> {
        if !(1..=12).contains(&month) {
            return Err(EngineError::execution(format!("invalid month {month}")));
        }
        let max_day = days_in_month(year, month);
        if day == 0 || day > max_day {
            return Err(EngineError::execution(format!(
                "invalid day {day} for {year}-{month:02}"
            )));
        }
        Ok(Date { year, month, day })
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> EngineResult<Self> {
        let parts: Vec<&str> = s.split('-').collect();
        if parts.len() != 3 {
            return Err(EngineError::execution(format!(
                "invalid date literal '{s}'"
            )));
        }
        let year: i32 = parts[0]
            .parse()
            .map_err(|_| EngineError::execution(format!("invalid year in '{s}'")))?;
        let month: u8 = parts[1]
            .parse()
            .map_err(|_| EngineError::execution(format!("invalid month in '{s}'")))?;
        let day: u8 = parts[2]
            .parse()
            .map_err(|_| EngineError::execution(format!("invalid day in '{s}'")))?;
        Date::new(year, month, day)
    }

    /// Quarter of the year, 1..=4.
    pub fn quarter(&self) -> u8 {
        (self.month - 1) / 3 + 1
    }

    /// Format using a (small) TO_CHAR-style pattern. Supported tokens:
    /// `YYYY`, `MM`, `DD`, `Q`, and double-quoted literals such as `"Q"`.
    pub fn format_pattern(&self, pattern: &str) -> EngineResult<String> {
        let mut out = String::with_capacity(pattern.len() + 4);
        let bytes = pattern.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if pattern[i..].starts_with("YYYY") {
                out.push_str(&format!("{:04}", self.year));
                i += 4;
            } else if pattern[i..].starts_with("MM") {
                out.push_str(&format!("{:02}", self.month));
                i += 2;
            } else if pattern[i..].starts_with("DD") {
                out.push_str(&format!("{:02}", self.day));
                i += 2;
            } else if bytes[i] == b'Q' {
                out.push_str(&self.quarter().to_string());
                i += 1;
            } else if bytes[i] == b'"' {
                // Literal text until the closing quote.
                let rest = &pattern[i + 1..];
                match rest.find('"') {
                    Some(end) => {
                        out.push_str(&rest[..end]);
                        i += end + 2;
                    }
                    None => {
                        return Err(EngineError::execution(format!(
                            "unterminated quoted literal in TO_CHAR pattern '{pattern}'"
                        )))
                    }
                }
            } else {
                out.push(bytes[i] as char);
                i += 1;
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Static type of a column, used by the catalog and schema descriptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Integer,
    Float,
    Text,
    Boolean,
    Date,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Integer => "INTEGER",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Boolean => "BOOLEAN",
            DataType::Date => "DATE",
        };
        f.write_str(s)
    }
}

impl DataType {
    /// Parse a type name as written in SQL (`CAST(x AS <type>)`).
    pub fn parse(name: &str) -> Option<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => Some(DataType::Integer),
            "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" => Some(DataType::Float),
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => Some(DataType::Text),
            "BOOL" | "BOOLEAN" => Some(DataType::Boolean),
            "DATE" => Some(DataType::Date),
            _ => None,
        }
    }
}

/// A runtime SQL value.
///
/// `PartialEq` here is *structural* (used by tests and the AST); SQL
/// equality with NULL semantics and numeric coercion is [`Value::sql_eq`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    Null,
    Integer(i64),
    Float(f64),
    Text(String),
    Boolean(bool),
    Date(Date),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Dynamic type of the value, `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Integer(_) => Some(DataType::Integer),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Boolean(_) => Some(DataType::Boolean),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// Numeric view used by arithmetic and aggregates. Booleans do not
    /// coerce to numbers (matching most warehouse dialects).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            _ => None,
        }
    }

    /// SQL truthiness: NULL propagates as `None` (unknown).
    pub fn as_bool(&self) -> EngineResult<Option<bool>> {
        match self {
            Value::Null => Ok(None),
            Value::Boolean(b) => Ok(Some(*b)),
            Value::Integer(i) => Ok(Some(*i != 0)),
            other => Err(EngineError::typing(format!(
                "value {other} is not a boolean"
            ))),
        }
    }

    /// SQL comparison. Returns `None` when either side is NULL (unknown),
    /// or an error for incomparable types.
    pub fn sql_cmp(&self, other: &Value) -> EngineResult<Option<Ordering>> {
        use Value::*;
        let ord = match (self, other) {
            (Null, _) | (_, Null) => return Ok(None),
            (Integer(a), Integer(b)) => a.cmp(b),
            (Float(a), Float(b)) => total_cmp_f64(*a, *b),
            (Integer(a), Float(b)) => total_cmp_f64(*a as f64, *b),
            (Float(a), Integer(b)) => total_cmp_f64(*a, *b as f64),
            (Text(a), Text(b)) => a.cmp(b),
            (Boolean(a), Boolean(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            // Dates compare with their ISO text form; useful because
            // generated data sometimes stores dates as text.
            (Date(a), Text(b)) => a.to_string().as_str().cmp(b.as_str()),
            (Text(a), Date(b)) => a.as_str().cmp(b.to_string().as_str()),
            (a, b) => return Err(EngineError::typing(format!("cannot compare {a} with {b}"))),
        };
        Ok(Some(ord))
    }

    /// Total ordering used for ORDER BY and result comparison: NULLs sort
    /// first, then by type-coerced comparison, falling back to a stable
    /// cross-type order so sorting never fails.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            _ => match self.sql_cmp(other) {
                Ok(Some(ord)) => ord,
                _ => type_rank(self).cmp(&type_rank(other)).then_with(|| {
                    // Same rank but incomparable should not happen; compare
                    // the rendered text for determinism.
                    self.to_string().cmp(&other.to_string())
                }),
            },
        }
    }

    /// Equality under SQL semantics (NULL = anything is unknown → false
    /// here; use `sql_cmp` when three-valued logic matters).
    pub fn sql_eq(&self, other: &Value) -> bool {
        matches!(self.sql_cmp(other), Ok(Some(Ordering::Equal)))
    }

    /// Key used for grouping / DISTINCT / result comparison, where SQL
    /// says NULLs *are* equal to each other.
    pub fn group_key(&self) -> String {
        match self {
            Value::Null => "∅".to_string(),
            Value::Integer(i) => format!("i:{i}"),
            // Render floats canonically so 2.0 groups with 2.0.
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
                    format!("f:{:.1}", f)
                } else {
                    format!("f:{f}")
                }
            }
            Value::Text(s) => format!("t:{s}"),
            Value::Boolean(b) => format!("b:{b}"),
            Value::Date(d) => format!("d:{d}"),
        }
    }

    /// CAST implementation.
    pub fn cast_to(&self, ty: DataType) -> EngineResult<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        let err = || EngineError::execution(format!("cannot cast {self} to {ty}"));
        Ok(match (self, ty) {
            (Value::Integer(i), DataType::Integer) => Value::Integer(*i),
            (Value::Integer(i), DataType::Float) => Value::Float(*i as f64),
            (Value::Integer(i), DataType::Text) => Value::Text(i.to_string()),
            (Value::Integer(i), DataType::Boolean) => Value::Boolean(*i != 0),
            (Value::Float(f), DataType::Float) => Value::Float(*f),
            (Value::Float(f), DataType::Integer) => Value::Integer(*f as i64),
            (Value::Float(f), DataType::Text) => Value::Text(render_float(*f)),
            (Value::Text(s), DataType::Text) => Value::Text(s.clone()),
            (Value::Text(s), DataType::Integer) => {
                Value::Integer(s.trim().parse::<i64>().map_err(|_| err())?)
            }
            (Value::Text(s), DataType::Float) => {
                Value::Float(s.trim().parse::<f64>().map_err(|_| err())?)
            }
            (Value::Text(s), DataType::Date) => Value::Date(Date::parse(s.trim())?),
            (Value::Text(s), DataType::Boolean) => match s.to_ascii_lowercase().as_str() {
                "true" | "t" | "1" => Value::Boolean(true),
                "false" | "f" | "0" => Value::Boolean(false),
                _ => return Err(err()),
            },
            (Value::Boolean(b), DataType::Boolean) => Value::Boolean(*b),
            (Value::Boolean(b), DataType::Integer) => Value::Integer(*b as i64),
            (Value::Boolean(b), DataType::Text) => Value::Text(b.to_string()),
            (Value::Date(d), DataType::Date) => Value::Date(*d),
            (Value::Date(d), DataType::Text) => Value::Text(d.to_string()),
            _ => return Err(err()),
        })
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Boolean(_) => 1,
        Value::Integer(_) | Value::Float(_) => 2,
        Value::Date(_) => 3,
        Value::Text(_) => 4,
    }
}

pub(crate) fn total_cmp_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or_else(|| {
        // NaNs sort last, deterministically.
        match (a.is_nan(), b.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => Ordering::Equal,
        }
    })
}

/// Render a float the way results display it (integral floats keep one
/// decimal place so FLOAT columns are visibly floats).
pub fn render_float(f: f64) -> String {
    if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Float(x) => f.write_str(&render_float(*x)),
            Value::Text(s) => f.write_str(s),
            Value::Boolean(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_validation() {
        assert!(Date::new(2023, 2, 29).is_err());
        assert!(Date::new(2024, 2, 29).is_ok()); // leap year
        assert!(Date::new(2023, 13, 1).is_err());
        assert!(Date::new(2023, 4, 31).is_err());
        assert!(Date::new(1900, 2, 29).is_err()); // century, not leap
        assert!(Date::new(2000, 2, 29).is_ok()); // 400-year leap
    }

    #[test]
    fn date_parse_and_display_round_trip() {
        let d = Date::parse("2023-06-15").unwrap();
        assert_eq!(d.to_string(), "2023-06-15");
        assert!(Date::parse("2023/06/15").is_err());
        assert!(Date::parse("garbage").is_err());
    }

    #[test]
    fn quarter_boundaries() {
        assert_eq!(Date::new(2023, 1, 1).unwrap().quarter(), 1);
        assert_eq!(Date::new(2023, 3, 31).unwrap().quarter(), 1);
        assert_eq!(Date::new(2023, 4, 1).unwrap().quarter(), 2);
        assert_eq!(Date::new(2023, 12, 31).unwrap().quarter(), 4);
    }

    #[test]
    fn to_char_pattern_from_paper() {
        // The exact pattern used by Q_fin-perf in Appendix A.
        let d = Date::new(2023, 5, 1).unwrap();
        assert_eq!(d.format_pattern("YYYY\"Q\"Q").unwrap(), "2023Q2");
        assert_eq!(d.format_pattern("YYYY-MM").unwrap(), "2023-05");
        assert_eq!(d.format_pattern("YYYY-MM-DD").unwrap(), "2023-05-01");
    }

    #[test]
    fn to_char_unterminated_quote_errors() {
        let d = Date::new(2023, 5, 1).unwrap();
        assert!(d.format_pattern("YYYY\"Q").is_err());
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Integer(1)).unwrap(), None);
        assert_eq!(Value::Integer(1).sql_cmp(&Value::Null).unwrap(), None);
        assert!(!Value::Null.sql_eq(&Value::Null));
    }

    #[test]
    fn numeric_coercion_in_comparison() {
        assert_eq!(
            Value::Integer(2).sql_cmp(&Value::Float(2.0)).unwrap(),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Integer(2)).unwrap(),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incomparable_types_error() {
        assert!(Value::Integer(1).sql_cmp(&Value::Text("a".into())).is_err());
        assert!(Value::Boolean(true).sql_cmp(&Value::Integer(1)).is_err());
    }

    #[test]
    fn total_cmp_sorts_nulls_first() {
        let mut vals = [Value::Integer(3), Value::Null, Value::Integer(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1].as_i64(), Some(1));
    }

    #[test]
    fn group_key_unifies_int_like_floats() {
        assert_eq!(Value::Float(2.0).group_key(), Value::Float(2.0).group_key());
        assert_ne!(Value::Integer(2).group_key(), Value::Float(2.0).group_key());
        assert_eq!(Value::Null.group_key(), Value::Null.group_key());
    }

    #[test]
    fn casts() {
        assert_eq!(
            Value::Text("42".into())
                .cast_to(DataType::Integer)
                .unwrap()
                .as_i64(),
            Some(42)
        );
        assert!(matches!(
            Value::Text("4.5".into()).cast_to(DataType::Float).unwrap(),
            Value::Float(f) if (f - 4.5).abs() < 1e-9
        ));
        assert!(Value::Text("x".into()).cast_to(DataType::Integer).is_err());
        assert!(Value::Null.cast_to(DataType::Integer).unwrap().is_null());
        assert_eq!(
            Value::Float(3.9)
                .cast_to(DataType::Integer)
                .unwrap()
                .as_i64(),
            Some(3) // truncation, as in SQLite/Snowflake CAST
        );
        assert!(matches!(
            Value::Text("2023-01-05".into())
                .cast_to(DataType::Date)
                .unwrap(),
            Value::Date(_)
        ));
    }

    #[test]
    fn bool_truthiness() {
        assert_eq!(Value::Boolean(true).as_bool().unwrap(), Some(true));
        assert_eq!(Value::Integer(0).as_bool().unwrap(), Some(false));
        assert_eq!(Value::Null.as_bool().unwrap(), None);
        assert!(Value::Text("x".into()).as_bool().is_err());
    }

    #[test]
    fn datatype_parse() {
        assert_eq!(DataType::parse("varchar"), Some(DataType::Text));
        assert_eq!(DataType::parse("BIGINT"), Some(DataType::Integer));
        assert_eq!(DataType::parse("bogus"), None);
    }

    #[test]
    fn float_rendering() {
        assert_eq!(render_float(2.0), "2.0");
        assert_eq!(render_float(2.5), "2.5");
    }
}
