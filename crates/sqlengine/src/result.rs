//! Query results and the Execution Accuracy (EX) comparison.
//!
//! BIRD's EX metric (paper §3.3.2) counts a prediction correct when its
//! result set is *identical* to the gold query's result set. Following the
//! official BIRD evaluator, rows are compared as an unordered multiset of
//! tuples (ordering only matters to the extent that an ORDER BY changes
//! which rows survive a LIMIT).

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A materialized query result.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ResultSet {
    /// Output column names (after aliasing).
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    pub fn new(columns: Vec<String>) -> ResultSet {
        ResultSet {
            columns,
            rows: Vec::new(),
        }
    }

    /// Build a result set from a columnar chunk (zero-copy where columns
    /// are unshared).
    pub fn from_chunk(columns: Vec<String>, chunk: crate::array::DataChunk) -> ResultSet {
        ResultSet {
            columns,
            rows: chunk.into_rows(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Canonical multiset fingerprint of the rows: each row rendered with
    /// [`Value::group_key`] (so `2.0 = 2.0` and NULLs match each other),
    /// then sorted. Two results with equal fingerprints are EX-equal.
    pub fn fingerprint(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(Value::group_key)
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect();
        keys.sort();
        keys
    }

    /// Execution-accuracy equality: same row multiset (column names are
    /// ignored, as in the BIRD evaluator).
    pub fn ex_equal(&self, other: &ResultSet) -> bool {
        self.rows.len() == other.rows.len() && self.fingerprint() == other.fingerprint()
    }

    /// Render as an aligned text table (used by the feedback-solver UI).
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        out.push('\n');
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} rows x {} cols", self.rows.len(), self.columns.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(cols: &[&str], rows: Vec<Vec<Value>>) -> ResultSet {
        ResultSet {
            columns: cols.iter().map(|s| s.to_string()).collect(),
            rows,
        }
    }

    #[test]
    fn ex_equal_ignores_row_order_and_column_names() {
        let a = rs(
            &["x"],
            vec![vec![Value::Integer(1)], vec![Value::Integer(2)]],
        );
        let b = rs(
            &["y"],
            vec![vec![Value::Integer(2)], vec![Value::Integer(1)]],
        );
        assert!(a.ex_equal(&b));
    }

    #[test]
    fn ex_equal_respects_multiset_semantics() {
        let a = rs(
            &["x"],
            vec![vec![Value::Integer(1)], vec![Value::Integer(1)]],
        );
        let b = rs(&["x"], vec![vec![Value::Integer(1)]]);
        assert!(!a.ex_equal(&b));
    }

    #[test]
    fn ex_equal_coerces_int_like_floats() {
        // 2.0 vs 2.0 from different computations must match, but a FLOAT
        // column does not silently equal an INTEGER column.
        let a = rs(&["x"], vec![vec![Value::Float(2.0)]]);
        let b = rs(&["x"], vec![vec![Value::Float(4.0 / 2.0)]]);
        assert!(a.ex_equal(&b));
        let c = rs(&["x"], vec![vec![Value::Integer(2)]]);
        assert!(!a.ex_equal(&c));
    }

    #[test]
    fn nulls_match_each_other() {
        let a = rs(&["x"], vec![vec![Value::Null]]);
        let b = rs(&["x"], vec![vec![Value::Null]]);
        assert!(a.ex_equal(&b));
    }

    #[test]
    fn table_rendering_aligns() {
        let t = rs(
            &["name", "n"],
            vec![
                vec!["alpha".into(), Value::Integer(1)],
                vec!["b".into(), Value::Integer(22)],
            ],
        )
        .to_table_string();
        assert!(t.contains("name"));
        assert!(t.lines().count() >= 4);
    }
}
