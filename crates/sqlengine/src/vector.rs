//! Batch-at-a-time expression evaluation over [`DataChunk`] columns.
//!
//! [`bind`] lowers an AST [`Expr`] into a [`VExpr`] whose column
//! references are resolved to chunk column indices; [`eval`] then
//! evaluates a [`VExpr`] for a whole selection of rows at once. Anything
//! [`bind`] cannot lower (subqueries, aggregates, window calls, columns
//! that would fail or be ambiguous to resolve) returns `None` and the
//! planner falls back to the row-at-a-time interpreter for that
//! expression, so error behavior matches the reference engine exactly.
//!
//! The evaluator replicates the interpreter's semantics precisely:
//! three-valued logic, `AND`/`OR` short-circuiting (the right side is
//! only evaluated for rows the left side did not decide), lazy `CASE`
//! branches and `IN` list items, and the scalar function library.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::array::{Array, ArrayBuilder, Bitmap, DataChunk, ValueRef};
use crate::ast::{BinaryOp, Expr, FunctionCall, UnaryOp};
use crate::error::{EngineError, EngineResult};
use crate::eval::{literal_value, ColMeta, Scope};
use crate::functions;
use crate::value::{total_cmp_f64, DataType, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// A bound (column-resolved) expression ready for vectorized evaluation.
#[derive(Debug, Clone)]
pub enum VExpr {
    /// A constant: literal, or an outer-scope column materialized at
    /// bind time (the outer row is fixed for one planner invocation).
    Lit(Value),
    /// Chunk column by index.
    Col(usize),
    /// Unary operator.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<VExpr>,
    },
    /// Binary operator.
    Binary {
        /// Left operand.
        left: Box<VExpr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<VExpr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<VExpr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (items…)`.
    InList {
        /// Probe expression.
        expr: Box<VExpr>,
        /// List items, evaluated lazily in order.
        list: Vec<VExpr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Probe expression.
        expr: Box<VExpr>,
        /// Lower bound.
        low: Box<VExpr>,
        /// Upper bound.
        high: Box<VExpr>,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Matched expression.
        expr: Box<VExpr>,
        /// Pattern expression.
        pattern: Box<VExpr>,
        /// `NOT LIKE`.
        negated: bool,
    },
    /// `CASE` in both simple and searched forms.
    Case {
        /// Simple-form operand.
        operand: Option<Box<VExpr>>,
        /// `WHEN … THEN …` branches.
        branches: Vec<(VExpr, VExpr)>,
        /// `ELSE` expression.
        else_expr: Option<Box<VExpr>>,
    },
    /// `CAST(expr AS ty)`.
    Cast {
        /// Operand.
        expr: Box<VExpr>,
        /// Target type.
        ty: DataType,
    },
    /// Scalar function call.
    Scalar {
        /// Uppercased function name.
        name: String,
        /// Arguments, evaluated eagerly in order.
        args: Vec<VExpr>,
    },
}

/// A row selection over a chunk: everything, or an explicit index list.
#[derive(Clone, Copy)]
pub enum Sel<'a> {
    /// All rows of the chunk, in order.
    All,
    /// The chunk rows at these indices, in order.
    Idx(&'a [u32]),
}

impl Sel<'_> {
    /// Number of selected rows.
    pub fn len(&self, chunk: &DataChunk) -> usize {
        match self {
            Sel::All => chunk.len(),
            Sel::Idx(idx) => idx.len(),
        }
    }

    /// Is the selection empty?
    pub fn is_empty(&self, chunk: &DataChunk) -> bool {
        self.len(chunk) == 0
    }

    /// Chunk row index for output position `pos`.
    #[inline]
    pub fn at(&self, pos: usize) -> u32 {
        match self {
            Sel::All => pos as u32,
            Sel::Idx(idx) => idx[pos],
        }
    }
}

/// Try to lower `expr` for vectorized evaluation against columns `cols`.
///
/// Returns `None` when the expression needs the row-at-a-time path:
/// subqueries, aggregates, window/ranking calls, unresolvable or
/// ambiguous columns. Columns that resolve in the `outer` scope become
/// constants (the outer row is fixed per invocation), which vectorizes
/// correlated predicates.
pub fn bind(expr: &Expr, cols: &[ColMeta], outer: Option<&Scope<'_>>) -> Option<VExpr> {
    match expr {
        Expr::Literal(l) => Some(VExpr::Lit(literal_value(l))),
        Expr::Column { table, name } => {
            let mut found: Option<usize> = None;
            for (i, c) in cols.iter().enumerate() {
                if c.matches(table.as_deref(), name) {
                    if found.is_some() {
                        return None; // ambiguous: fall back for the exact error
                    }
                    found = Some(i);
                }
            }
            match found {
                Some(i) => Some(VExpr::Col(i)),
                // Not a local column: an outer-scope hit is a per-
                // invocation constant; a miss falls back so the row path
                // raises the binding error (only if any row is evaluated).
                None => outer
                    .and_then(|o| o.resolve(table.as_deref(), name).ok())
                    .map(VExpr::Lit),
            }
        }
        Expr::Unary { op, expr } => Some(VExpr::Unary {
            op: *op,
            expr: Box::new(bind(expr, cols, outer)?),
        }),
        Expr::Binary { left, op, right } => Some(VExpr::Binary {
            left: Box::new(bind(left, cols, outer)?),
            op: *op,
            right: Box::new(bind(right, cols, outer)?),
        }),
        Expr::IsNull { expr, negated } => Some(VExpr::IsNull {
            expr: Box::new(bind(expr, cols, outer)?),
            negated: *negated,
        }),
        Expr::InList {
            expr,
            list,
            negated,
        } => Some(VExpr::InList {
            expr: Box::new(bind(expr, cols, outer)?),
            list: list
                .iter()
                .map(|e| bind(e, cols, outer))
                .collect::<Option<Vec<_>>>()?,
            negated: *negated,
        }),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Some(VExpr::Between {
            expr: Box::new(bind(expr, cols, outer)?),
            low: Box::new(bind(low, cols, outer)?),
            high: Box::new(bind(high, cols, outer)?),
            negated: *negated,
        }),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Some(VExpr::Like {
            expr: Box::new(bind(expr, cols, outer)?),
            pattern: Box::new(bind(pattern, cols, outer)?),
            negated: *negated,
        }),
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => Some(VExpr::Case {
            operand: match operand {
                Some(o) => Some(Box::new(bind(o, cols, outer)?)),
                None => None,
            },
            branches: branches
                .iter()
                .map(|(w, t)| Some((bind(w, cols, outer)?, bind(t, cols, outer)?)))
                .collect::<Option<Vec<_>>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(bind(e, cols, outer)?)),
                None => None,
            },
        }),
        Expr::Cast { expr, ty } => Some(VExpr::Cast {
            expr: Box::new(bind(expr, cols, outer)?),
            ty: *ty,
        }),
        Expr::Function(call) => bind_function(call, cols, outer),
        // Subqueries keep the interpreter's execution order and errors.
        Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_) => None,
    }
}

fn bind_function(
    call: &FunctionCall,
    cols: &[ColMeta],
    outer: Option<&Scope<'_>>,
) -> Option<VExpr> {
    // Window, aggregate, and ranking calls need unit/window context.
    if call.over.is_some()
        || functions::is_aggregate(&call.name)
        || functions::is_ranking(&call.name)
    {
        return None;
    }
    if call.star || call.distinct {
        return None;
    }
    Some(VExpr::Scalar {
        name: call.name.clone(),
        args: call
            .args
            .iter()
            .map(|a| bind(a, cols, outer))
            .collect::<Option<Vec<_>>>()?,
    })
}

// ----------------------------------------------------------------------
// Element-wise kernels, mirroring `Value` semantics on borrowed views.
// ----------------------------------------------------------------------

fn cmp_ref(a: ValueRef<'_>, b: ValueRef<'_>) -> EngineResult<Option<Ordering>> {
    use ValueRef::*;
    let ord = match (a, b) {
        (Null, _) | (_, Null) => return Ok(None),
        (Int(x), Int(y)) => x.cmp(&y),
        (Float(x), Float(y)) => total_cmp_f64(x, y),
        (Int(x), Float(y)) => total_cmp_f64(x as f64, y),
        (Float(x), Int(y)) => total_cmp_f64(x, y as f64),
        (Str(x), Str(y)) => x.cmp(y),
        (Bool(x), Bool(y)) => x.cmp(&y),
        (Date(x), Date(y)) => x.cmp(&y),
        (Date(x), Str(y)) => x.to_string().as_str().cmp(y),
        (Str(x), Date(y)) => x.cmp(y.to_string().as_str()),
        (x, y) => {
            return Err(EngineError::typing(format!("cannot compare {x} with {y}")));
        }
    };
    Ok(Some(ord))
}

fn eq_ref(a: ValueRef<'_>, b: ValueRef<'_>) -> bool {
    // Like `Value::sql_eq`: comparison errors are swallowed as "not equal".
    matches!(cmp_ref(a, b), Ok(Some(Ordering::Equal)))
}

fn bool_ref(v: ValueRef<'_>) -> EngineResult<Option<bool>> {
    match v {
        ValueRef::Null => Ok(None),
        ValueRef::Bool(b) => Ok(Some(b)),
        ValueRef::Int(i) => Ok(Some(i != 0)),
        other => Err(EngineError::typing(format!(
            "value {other} is not a boolean"
        ))),
    }
}

fn arith_ref(op: BinaryOp, l: ValueRef<'_>, r: ValueRef<'_>) -> EngineResult<Value> {
    use ValueRef::*;
    let type_err = || EngineError::typing(format!("cannot apply {} to {l} and {r}", op.symbol()));
    if let (Int(a), Int(b)) = (l, r) {
        return Ok(match op {
            BinaryOp::Add => a
                .checked_add(b)
                .map(Value::Integer)
                .unwrap_or(Value::Float(a as f64 + b as f64)),
            BinaryOp::Sub => a
                .checked_sub(b)
                .map(Value::Integer)
                .unwrap_or(Value::Float(a as f64 - b as f64)),
            BinaryOp::Mul => a
                .checked_mul(b)
                .map(Value::Integer)
                .unwrap_or(Value::Float(a as f64 * b as f64)),
            BinaryOp::Div => {
                if b == 0 {
                    Value::Null
                } else {
                    Value::Integer(a / b)
                }
            }
            BinaryOp::Mod => {
                if b == 0 {
                    Value::Null
                } else {
                    Value::Integer(a % b)
                }
            }
            _ => return Err(type_err()),
        });
    }
    let a = match l {
        Int(i) => i as f64,
        Float(f) => f,
        _ => return Err(type_err()),
    };
    let b = match r {
        Int(i) => i as f64,
        Float(f) => f,
        _ => return Err(type_err()),
    };
    Ok(match op {
        BinaryOp::Add => Value::Float(a + b),
        BinaryOp::Sub => Value::Float(a - b),
        BinaryOp::Mul => Value::Float(a * b),
        BinaryOp::Div => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Float(a / b)
            }
        }
        BinaryOp::Mod => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Float(a % b)
            }
        }
        _ => return Err(type_err()),
    })
}

// ----------------------------------------------------------------------
// Evaluation
// ----------------------------------------------------------------------

/// One evaluated operand: a column of results or a single constant.
/// Constants skip materializing an array of repeated values.
enum Operand {
    Arr(Arc<Array>),
    Const(Value),
}

impl Operand {
    #[inline]
    fn at(&self, pos: usize) -> ValueRef<'_> {
        match self {
            Operand::Arr(a) => a.at(pos),
            Operand::Const(v) => ValueRef::from_value(v),
        }
    }
}

fn operand(v: &VExpr, chunk: &DataChunk, sel: Sel<'_>) -> EngineResult<Operand> {
    match v {
        VExpr::Lit(val) => Ok(Operand::Const(val.clone())),
        other => Ok(Operand::Arr(eval(other, chunk, sel)?)),
    }
}

fn bool_array(data: Vec<bool>, validity: Bitmap) -> Arc<Array> {
    Arc::new(Array::Bool { data, validity })
}

/// SQL truthiness of each element: `Some(true)`/`Some(false)`/`None`
/// (unknown), with the same type errors `Value::as_bool` raises.
pub fn truth(arr: &Array) -> EngineResult<Vec<Option<bool>>> {
    let mut out = Vec::with_capacity(arr.len());
    for i in 0..arr.len() {
        out.push(bool_ref(arr.at(i))?);
    }
    Ok(out)
}

/// Evaluate a bound expression over the selected rows of `chunk`,
/// producing one output element per selected row, in selection order.
pub fn eval(v: &VExpr, chunk: &DataChunk, sel: Sel<'_>) -> EngineResult<Arc<Array>> {
    let n = sel.len(chunk);
    match v {
        VExpr::Lit(val) => {
            let mut b = ArrayBuilder::with_capacity(n);
            for _ in 0..n {
                b.push(val.clone());
            }
            Ok(Arc::new(b.finish()))
        }
        VExpr::Col(i) => match sel {
            Sel::All => Ok(Arc::clone(&chunk.cols[*i])),
            Sel::Idx(idx) => Ok(Arc::new(chunk.cols[*i].gather(idx))),
        },
        VExpr::Unary { op, expr } => {
            let arr = eval(expr, chunk, sel)?;
            let mut b = ArrayBuilder::with_capacity(n);
            match op {
                UnaryOp::Neg => {
                    for pos in 0..n {
                        match arr.at(pos) {
                            ValueRef::Null => b.push_ref(ValueRef::Null),
                            ValueRef::Int(i) => b.push_ref(ValueRef::Int(-i)),
                            ValueRef::Float(f) => b.push_ref(ValueRef::Float(-f)),
                            other => {
                                return Err(EngineError::typing(format!("cannot negate {other}")))
                            }
                        }
                    }
                }
                UnaryOp::Not => {
                    for pos in 0..n {
                        match bool_ref(arr.at(pos))? {
                            None => b.push_ref(ValueRef::Null),
                            Some(x) => b.push_ref(ValueRef::Bool(!x)),
                        }
                    }
                }
            }
            Ok(Arc::new(b.finish()))
        }
        VExpr::Binary { left, op, right } => eval_binary(left, *op, right, chunk, sel),
        VExpr::IsNull { expr, negated } => {
            let arr = eval(expr, chunk, sel)?;
            let mut data = Vec::with_capacity(n);
            for pos in 0..n {
                data.push(arr.is_null(pos) != *negated);
            }
            Ok(bool_array(data, Bitmap::with_len(n, true)))
        }
        VExpr::InList {
            expr,
            list,
            negated,
        } => {
            let varr = eval(expr, chunk, sel)?;
            let mut result: Vec<Value> = vec![Value::Null; n];
            let mut saw_null = vec![false; n];
            // NULL probes answer NULL without evaluating any list item
            // for that row (matching the interpreter's early return).
            let mut undecided: Vec<usize> = (0..n).filter(|&p| !varr.is_null(p)).collect();
            for item in list {
                if undecided.is_empty() {
                    break;
                }
                let isel: Vec<u32> = undecided.iter().map(|&p| sel.at(p)).collect();
                let iarr = eval(item, chunk, Sel::Idx(&isel))?;
                let mut still = Vec::with_capacity(undecided.len());
                for (j, &pos) in undecided.iter().enumerate() {
                    let iv = iarr.at(j);
                    if iv.is_null() {
                        saw_null[pos] = true;
                        still.push(pos);
                    } else if eq_ref(varr.at(pos), iv) {
                        result[pos] = Value::Boolean(!*negated);
                    } else {
                        still.push(pos);
                    }
                }
                undecided = still;
            }
            for pos in undecided {
                result[pos] = if saw_null[pos] {
                    Value::Null
                } else {
                    Value::Boolean(*negated)
                };
            }
            Ok(Arc::new(Array::from_values(result)))
        }
        VExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            // All three operands evaluate eagerly, like the interpreter.
            let varr = operand(expr, chunk, sel)?;
            let lo = operand(low, chunk, sel)?;
            let hi = operand(high, chunk, sel)?;
            let mut b = ArrayBuilder::with_capacity(n);
            for pos in 0..n {
                let v = varr.at(pos);
                let ge = match cmp_ref(v, lo.at(pos))? {
                    // Unknown lower comparison: the upper bound is never
                    // compared (it may be incomparable without erroring).
                    None => {
                        b.push_ref(ValueRef::Null);
                        continue;
                    }
                    Some(ord) => ord != Ordering::Less,
                };
                let le = match cmp_ref(v, hi.at(pos))? {
                    None => {
                        b.push_ref(ValueRef::Null);
                        continue;
                    }
                    Some(ord) => ord != Ordering::Greater,
                };
                b.push_ref(ValueRef::Bool((ge && le) != *negated));
            }
            Ok(Arc::new(b.finish()))
        }
        VExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let varr = operand(expr, chunk, sel)?;
            let parr = operand(pattern, chunk, sel)?;
            let mut b = ArrayBuilder::with_capacity(n);
            for pos in 0..n {
                let (v, p) = (varr.at(pos), parr.at(pos));
                if v.is_null() || p.is_null() {
                    b.push_ref(ValueRef::Null);
                    continue;
                }
                let m = match (v, p) {
                    (ValueRef::Str(s), ValueRef::Str(pat)) => functions::sql_like(s, pat),
                    _ => functions::sql_like(&v.to_string(), &p.to_string()),
                };
                b.push_ref(ValueRef::Bool(m != *negated));
            }
            Ok(Arc::new(b.finish()))
        }
        VExpr::Case {
            operand: case_operand,
            branches,
            else_expr,
        } => {
            let subject = match case_operand {
                Some(o) => Some(eval(o, chunk, sel)?),
                None => None,
            };
            let mut result: Vec<Value> = vec![Value::Null; n];
            let mut undecided: Vec<usize> = (0..n).collect();
            for (when, then) in branches {
                if undecided.is_empty() {
                    break;
                }
                let wsel: Vec<u32> = undecided.iter().map(|&p| sel.at(p)).collect();
                let warr = eval(when, chunk, Sel::Idx(&wsel))?;
                let mut matched: Vec<usize> = Vec::new();
                let mut still: Vec<usize> = Vec::with_capacity(undecided.len());
                for (j, &pos) in undecided.iter().enumerate() {
                    let hit = match &subject {
                        Some(s) => eq_ref(s.at(pos), warr.at(j)),
                        None => bool_ref(warr.at(j))? == Some(true),
                    };
                    if hit {
                        matched.push(pos);
                    } else {
                        still.push(pos);
                    }
                }
                if !matched.is_empty() {
                    let tsel: Vec<u32> = matched.iter().map(|&p| sel.at(p)).collect();
                    let tarr = eval(then, chunk, Sel::Idx(&tsel))?;
                    for (k, &pos) in matched.iter().enumerate() {
                        result[pos] = tarr.get(k);
                    }
                }
                undecided = still;
            }
            if !undecided.is_empty() {
                if let Some(e) = else_expr {
                    let esel: Vec<u32> = undecided.iter().map(|&p| sel.at(p)).collect();
                    let earr = eval(e, chunk, Sel::Idx(&esel))?;
                    for (k, &pos) in undecided.iter().enumerate() {
                        result[pos] = earr.get(k);
                    }
                }
            }
            Ok(Arc::new(Array::from_values(result)))
        }
        VExpr::Cast { expr, ty } => {
            let arr = eval(expr, chunk, sel)?;
            let mut b = ArrayBuilder::with_capacity(n);
            for pos in 0..n {
                b.push(arr.get(pos).cast_to(*ty)?);
            }
            Ok(Arc::new(b.finish()))
        }
        VExpr::Scalar { name, args } => {
            let mut arrs = Vec::with_capacity(args.len());
            for a in args {
                arrs.push(eval(a, chunk, sel)?);
            }
            let mut b = ArrayBuilder::with_capacity(n);
            let mut argv: Vec<Value> = Vec::with_capacity(args.len());
            for pos in 0..n {
                argv.clear();
                for a in &arrs {
                    argv.push(a.get(pos));
                }
                b.push(functions::eval_scalar(name, &argv)?);
            }
            Ok(Arc::new(b.finish()))
        }
    }
}

fn eval_binary(
    left: &VExpr,
    op: BinaryOp,
    right: &VExpr,
    chunk: &DataChunk,
    sel: Sel<'_>,
) -> EngineResult<Arc<Array>> {
    let n = sel.len(chunk);
    // AND/OR: three-valued logic, right side evaluated only for rows the
    // left side leaves undecided (matching per-row short-circuiting).
    if op == BinaryOp::And || op == BinaryOp::Or {
        let and = op == BinaryOp::And;
        let larr = eval(left, chunk, sel)?;
        let lt = truth(&larr)?;
        // AND decides on false, OR decides on true.
        let decided = |t: Option<bool>| t == Some(!and);
        let mut need: Vec<u32> = Vec::new();
        for (pos, &t) in lt.iter().enumerate() {
            if !decided(t) {
                need.push(sel.at(pos));
            }
        }
        let rarr = eval(right, chunk, Sel::Idx(&need))?;
        let rt = truth(&rarr)?;
        let mut data = Vec::with_capacity(n);
        let mut validity = Bitmap::new();
        let mut j = 0usize;
        for &t in &lt {
            if decided(t) {
                data.push(!and);
                validity.push(true);
                continue;
            }
            let r = rt[j];
            j += 1;
            let out = if and {
                match (t, r) {
                    (Some(true), Some(true)) => Some(true),
                    (_, Some(false)) => Some(false),
                    _ => None,
                }
            } else {
                match (t, r) {
                    (Some(false), Some(false)) => Some(false),
                    (_, Some(true)) => Some(true),
                    _ => None,
                }
            };
            data.push(out.unwrap_or(false));
            validity.push(out.is_some());
        }
        return Ok(bool_array(data, validity));
    }

    let l = operand(left, chunk, sel)?;
    let r = operand(right, chunk, sel)?;
    match op {
        BinaryOp::Eq
        | BinaryOp::NotEq
        | BinaryOp::Lt
        | BinaryOp::LtEq
        | BinaryOp::Gt
        | BinaryOp::GtEq => {
            let mut data = Vec::with_capacity(n);
            let mut validity = Bitmap::new();
            for pos in 0..n {
                match cmp_ref(l.at(pos), r.at(pos))? {
                    None => {
                        data.push(false);
                        validity.push(false);
                    }
                    Some(ord) => {
                        let b = match op {
                            BinaryOp::Eq => ord == Ordering::Equal,
                            BinaryOp::NotEq => ord != Ordering::Equal,
                            BinaryOp::Lt => ord == Ordering::Less,
                            BinaryOp::LtEq => ord != Ordering::Greater,
                            BinaryOp::Gt => ord == Ordering::Greater,
                            _ => ord != Ordering::Less,
                        };
                        data.push(b);
                        validity.push(true);
                    }
                }
            }
            Ok(bool_array(data, validity))
        }
        BinaryOp::Concat => {
            let mut b = ArrayBuilder::with_capacity(n);
            for pos in 0..n {
                let (x, y) = (l.at(pos), r.at(pos));
                if x.is_null() || y.is_null() {
                    b.push_ref(ValueRef::Null);
                } else {
                    // `ValueRef`'s Display matches `render_value_for_concat`.
                    b.push(Value::Text(format!("{x}{y}")));
                }
            }
            Ok(Arc::new(b.finish()))
        }
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
            let mut b = ArrayBuilder::with_capacity(n);
            for pos in 0..n {
                let (x, y) = (l.at(pos), r.at(pos));
                if x.is_null() || y.is_null() {
                    b.push_ref(ValueRef::Null);
                } else {
                    b.push(arith_ref(op, x, y)?);
                }
            }
            Ok(Arc::new(b.finish()))
        }
        BinaryOp::And | BinaryOp::Or => Err(EngineError::execution(
            "AND/OR handled by the short-circuit path",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;

    fn cols(names: &[&str]) -> Vec<ColMeta> {
        names
            .iter()
            .map(|n| ColMeta::new(Some("t".into()), n.to_string()))
            .collect()
    }

    fn chunk(rows: Vec<Vec<Value>>, width: usize) -> DataChunk {
        DataChunk::from_rows(rows, width)
    }

    fn eval_sql(sql: &str, names: &[&str], rows: Vec<Vec<Value>>) -> EngineResult<Vec<Value>> {
        let expr = parse_expression(sql).unwrap();
        let meta = cols(names);
        let width = names.len();
        let c = chunk(rows, width);
        let v = bind(&expr, &meta, None).expect("expression should bind");
        let arr = eval(&v, &c, Sel::All)?;
        Ok((0..arr.len()).map(|i| arr.get(i)).collect())
    }

    #[test]
    fn three_valued_comparison() {
        // NULL > 0 is unknown (NULL), not false.
        let out = eval_sql(
            "x > 0",
            &["x"],
            vec![
                vec![Value::Integer(1)],
                vec![Value::Null],
                vec![Value::Integer(-1)],
            ],
        )
        .unwrap();
        assert_eq!(
            out,
            vec![Value::Boolean(true), Value::Null, Value::Boolean(false)]
        );
    }

    #[test]
    fn and_or_three_valued_logic() {
        // NULL AND FALSE = FALSE, NULL AND TRUE = NULL,
        // NULL OR TRUE = TRUE, NULL OR FALSE = NULL.
        let rows = vec![vec![Value::Null]];
        for (sql, want) in [
            ("x > 0 AND 1 = 2", Value::Boolean(false)),
            ("x > 0 AND 1 = 1", Value::Null),
            ("x > 0 OR 1 = 1", Value::Boolean(true)),
            ("x > 0 OR 1 = 2", Value::Null),
        ] {
            let out = eval_sql(sql, &["x"], rows.clone()).unwrap();
            assert_eq!(out[0], want, "{sql}");
        }
    }

    #[test]
    fn and_short_circuit_skips_erroring_right_side() {
        // Rows where the left side is FALSE must not evaluate the right
        // side ('a' + 1 would be a type error).
        let out = eval_sql(
            "x > 10 AND y + 1 > 0",
            &["x", "y"],
            vec![vec![Value::Integer(1), Value::Text("a".into())]],
        )
        .unwrap();
        assert_eq!(out, vec![Value::Boolean(false)]);
        // …but rows where the left side passes do evaluate it and error.
        let err = eval_sql(
            "x > 0 AND y + 1 > 0",
            &["x", "y"],
            vec![vec![Value::Integer(1), Value::Text("a".into())]],
        );
        assert!(err.is_err());
    }

    #[test]
    fn in_list_with_null_is_three_valued() {
        let rows = vec![
            vec![Value::Integer(1)],
            vec![Value::Integer(99)],
            vec![Value::Null],
        ];
        let out = eval_sql("x IN (1, NULL)", &["x"], rows).unwrap();
        assert_eq!(out, vec![Value::Boolean(true), Value::Null, Value::Null]);
    }

    #[test]
    fn case_branches_evaluate_lazily() {
        // The THEN of a non-matching branch must not run (1/0 is fine —
        // NULL — but 'a' + 1 would error).
        let out = eval_sql(
            "CASE WHEN x > 0 THEN 'pos' WHEN y + 1 > 0 THEN 'other' ELSE 'neg' END",
            &["x", "y"],
            vec![vec![Value::Integer(5), Value::Text("a".into())]],
        )
        .unwrap();
        assert_eq!(out, vec![Value::Text("pos".into())]);
    }

    #[test]
    fn null_propagates_through_arithmetic_and_concat() {
        let rows = vec![vec![Value::Null, Value::Integer(3)]];
        assert_eq!(
            eval_sql("x + y", &["x", "y"], rows.clone()).unwrap(),
            vec![Value::Null]
        );
        assert_eq!(
            eval_sql("x || 'a'", &["x", "y"], rows).unwrap(),
            vec![Value::Null]
        );
    }

    #[test]
    fn between_null_bound_is_unknown() {
        let rows = vec![vec![Value::Integer(5)]];
        assert_eq!(
            eval_sql("x BETWEEN NULL AND 10", &["x"], rows).unwrap(),
            vec![Value::Null]
        );
    }

    #[test]
    fn scalar_functions_vectorize() {
        let out = eval_sql(
            "UPPER(x) || '-' || CAST(LENGTH(x) AS TEXT)",
            &["x"],
            vec![vec![Value::Text("ab".into())], vec![Value::Null]],
        )
        .unwrap();
        assert_eq!(out, vec![Value::Text("AB-2".into()), Value::Null]);
    }

    #[test]
    fn subqueries_and_aggregates_do_not_bind() {
        let meta = cols(&["x"]);
        for sql in [
            "(SELECT 1)",
            "EXISTS (SELECT 1)",
            "x IN (SELECT 1)",
            "SUM(x)",
            "ROW_NUMBER()",
        ] {
            let expr = parse_expression(sql).unwrap();
            assert!(bind(&expr, &meta, None).is_none(), "{sql}");
        }
    }

    #[test]
    fn unknown_column_does_not_bind() {
        let expr = parse_expression("nope + 1").unwrap();
        assert!(bind(&expr, &cols(&["x"]), None).is_none());
    }
}
