//! Expression evaluation over rows, groups, and window values.

use crate::aggregate::Accumulator;
use crate::ast::*;
use crate::catalog::Database;
use crate::error::{EngineError, EngineResult};
use crate::exec::{execute_query_with_outer, CteMap};
use crate::functions;
use crate::value::Value;
use std::collections::HashMap;

/// Metadata for one column of an intermediate relation.
#[derive(Debug, Clone, PartialEq)]
pub struct ColMeta {
    /// Table alias / CTE name / derived-table alias the column came from.
    pub qualifier: Option<String>,
    pub name: String,
}

impl ColMeta {
    pub fn new(qualifier: Option<String>, name: impl Into<String>) -> ColMeta {
        ColMeta {
            qualifier,
            name: name.into(),
        }
    }

    pub(crate) fn matches(&self, table: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match table {
            None => true,
            Some(t) => self
                .qualifier
                .as_deref()
                .map(|q| q.eq_ignore_ascii_case(t))
                .unwrap_or(false),
        }
    }
}

/// An intermediate relation during execution.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    pub cols: Vec<ColMeta>,
    pub rows: Vec<Vec<Value>>,
}

impl Relation {
    pub fn new(cols: Vec<ColMeta>) -> Relation {
        Relation {
            cols,
            rows: Vec::new(),
        }
    }
}

/// Group membership view used when evaluating aggregate calls.
#[derive(Debug, Clone, Copy)]
pub struct GroupView<'a> {
    pub rel: &'a Relation,
    pub indices: &'a [usize],
}

/// Per-row window values, keyed by the display form of the window call.
pub type WindowValues = HashMap<String, Vec<Value>>;

/// Per-unit aggregate values pre-computed by the vectorized planner,
/// keyed by the display form of the aggregate call.
pub type AggValues = HashMap<String, Vec<Value>>;

/// The evaluation environment for one row (or one group).
#[derive(Clone, Copy)]
pub struct Scope<'a> {
    pub cols: &'a [ColMeta],
    pub row: &'a [Value],
    /// Enclosing query's scope, for correlated subqueries.
    pub parent: Option<&'a Scope<'a>>,
    /// Set when evaluating in grouped context; aggregates draw from here.
    pub group: Option<GroupView<'a>>,
    /// Pre-computed window-function values for the current unit list.
    pub windows: Option<&'a WindowValues>,
    /// Pre-computed aggregate values for the current unit list; consulted
    /// before falling back to the [`GroupView`] accumulator path.
    pub aggs: Option<&'a AggValues>,
    /// Index of the current unit into each window value vector.
    pub unit_index: usize,
}

impl<'a> Scope<'a> {
    pub fn row_scope(cols: &'a [ColMeta], row: &'a [Value]) -> Scope<'a> {
        Scope {
            cols,
            row,
            parent: None,
            group: None,
            windows: None,
            aggs: None,
            unit_index: 0,
        }
    }

    pub(crate) fn resolve(&self, table: Option<&str>, name: &str) -> EngineResult<Value> {
        let matches: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, c)| c.matches(table, name))
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => Ok(self.row[matches[0]].clone()),
            0 => match self.parent {
                Some(p) => p.resolve(table, name),
                None => Err(EngineError::binding(format!(
                    "no such column {}{name}",
                    table.map(|t| format!("{t}.")).unwrap_or_default()
                ))),
            },
            _ => Err(EngineError::binding(format!(
                "ambiguous column reference {}{name}",
                table.map(|t| format!("{t}.")).unwrap_or_default()
            ))),
        }
    }
}

/// External state needed by subquery evaluation.
pub struct EvalEnv<'a> {
    pub db: &'a Database,
    pub ctes: &'a CteMap,
}

/// Evaluate `expr` in `scope`.
pub fn eval_expr(expr: &Expr, scope: &Scope<'_>, env: &EvalEnv<'_>) -> EngineResult<Value> {
    match expr {
        Expr::Literal(l) => Ok(literal_value(l)),
        Expr::Column { table, name } => scope.resolve(table.as_deref(), name),
        Expr::Unary { op, expr } => {
            let v = eval_expr(expr, scope, env)?;
            match op {
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Integer(i) => Ok(Value::Integer(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(EngineError::typing(format!("cannot negate {other}"))),
                },
                UnaryOp::Not => match v.as_bool()? {
                    None => Ok(Value::Null),
                    Some(b) => Ok(Value::Boolean(!b)),
                },
            }
        }
        Expr::Binary { left, op, right } => eval_binary(left, *op, right, scope, env),
        Expr::IsNull { expr, negated } => {
            let v = eval_expr(expr, scope, env)?;
            Ok(Value::Boolean(v.is_null() != *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_expr(expr, scope, env)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval_expr(item, scope, env)?;
                if iv.is_null() {
                    saw_null = true;
                } else if v.sql_eq(&iv) {
                    return Ok(Value::Boolean(!*negated));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Boolean(*negated))
            }
        }
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => {
            let v = eval_expr(expr, scope, env)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let result = execute_query_with_outer(env.db, subquery, env.ctes, Some(scope))?;
            if result.columns.len() != 1 {
                return Err(EngineError::typing(
                    "IN subquery must return exactly one column",
                ));
            }
            let mut saw_null = false;
            for row in &result.rows {
                if row[0].is_null() {
                    saw_null = true;
                } else if v.sql_eq(&row[0]) {
                    return Ok(Value::Boolean(!*negated));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Boolean(*negated))
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_expr(expr, scope, env)?;
            let lo = eval_expr(low, scope, env)?;
            let hi = eval_expr(high, scope, env)?;
            let ge = match v.sql_cmp(&lo)? {
                None => return Ok(Value::Null),
                Some(ord) => ord != std::cmp::Ordering::Less,
            };
            let le = match v.sql_cmp(&hi)? {
                None => return Ok(Value::Null),
                Some(ord) => ord != std::cmp::Ordering::Greater,
            };
            Ok(Value::Boolean((ge && le) != *negated))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_expr(expr, scope, env)?;
            let p = eval_expr(pattern, scope, env)?;
            if v.is_null() || p.is_null() {
                return Ok(Value::Null);
            }
            let m = functions::sql_like(&v.to_string(), &p.to_string());
            Ok(Value::Boolean(m != *negated))
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            match operand {
                Some(op_expr) => {
                    let subject = eval_expr(op_expr, scope, env)?;
                    for (when, then) in branches {
                        let w = eval_expr(when, scope, env)?;
                        if subject.sql_eq(&w) {
                            return eval_expr(then, scope, env);
                        }
                    }
                }
                None => {
                    for (when, then) in branches {
                        let w = eval_expr(when, scope, env)?;
                        if w.as_bool()? == Some(true) {
                            return eval_expr(then, scope, env);
                        }
                    }
                }
            }
            match else_expr {
                Some(e) => eval_expr(e, scope, env),
                None => Ok(Value::Null),
            }
        }
        Expr::Cast { expr, ty } => {
            let v = eval_expr(expr, scope, env)?;
            v.cast_to(*ty)
        }
        Expr::Function(call) => eval_function(expr, call, scope, env),
        Expr::Exists { subquery, negated } => {
            let result = execute_query_with_outer(env.db, subquery, env.ctes, Some(scope))?;
            Ok(Value::Boolean(result.rows.is_empty() == *negated))
        }
        Expr::ScalarSubquery(subquery) => {
            let result = execute_query_with_outer(env.db, subquery, env.ctes, Some(scope))?;
            if result.columns.len() != 1 {
                return Err(EngineError::typing(
                    "scalar subquery must return exactly one column",
                ));
            }
            match result.rows.len() {
                0 => Ok(Value::Null),
                1 => Ok(result.rows[0][0].clone()),
                n => Err(EngineError::execution(format!(
                    "scalar subquery returned {n} rows"
                ))),
            }
        }
    }
}

fn eval_function(
    whole: &Expr,
    call: &FunctionCall,
    scope: &Scope<'_>,
    env: &EvalEnv<'_>,
) -> EngineResult<Value> {
    // Window call: value was pre-computed by the executor.
    if call.over.is_some() {
        let key = whole.to_string();
        let windows = scope.windows.ok_or_else(|| {
            EngineError::execution(format!(
                "window function {} used outside a windowed projection",
                call.name
            ))
        })?;
        let values = windows
            .get(&key)
            .ok_or_else(|| EngineError::execution(format!("window values missing for {key}")))?;
        return Ok(values[scope.unit_index].clone());
    }

    // Aggregate call: use the planner's pre-computed value when present,
    // otherwise draw from the current group.
    if functions::is_aggregate(&call.name) {
        if let Some(aggs) = scope.aggs {
            if let Some(values) = aggs.get(&whole.to_string()) {
                return Ok(values[scope.unit_index].clone());
            }
        }
        let group = scope.group.ok_or_else(|| {
            EngineError::typing(format!(
                "aggregate {} is not allowed in this context",
                call.name
            ))
        })?;
        let mut acc = Accumulator::for_function(&call.name, call.distinct, call.star)?;
        for &idx in group.indices {
            let row = &group.rel.rows[idx];
            let inner = Scope {
                cols: &group.rel.cols,
                row,
                parent: scope.parent,
                group: None,
                windows: None,
                aggs: None,
                unit_index: 0,
            };
            if call.star {
                acc.update(&Value::Integer(1))?;
            } else {
                if call.args.len() != 1 {
                    return Err(EngineError::typing(format!(
                        "aggregate {} expects exactly one argument",
                        call.name
                    )));
                }
                let v = eval_expr(&call.args[0], &inner, env)?;
                acc.update(&v)?;
            }
        }
        return Ok(acc.finish());
    }

    if functions::is_ranking(&call.name) {
        return Err(EngineError::typing(format!(
            "{} requires an OVER clause",
            call.name
        )));
    }

    // Plain scalar function.
    let mut args = Vec::with_capacity(call.args.len());
    for a in &call.args {
        args.push(eval_expr(a, scope, env)?);
    }
    functions::eval_scalar(&call.name, &args)
}

fn eval_binary(
    left: &Expr,
    op: BinaryOp,
    right: &Expr,
    scope: &Scope<'_>,
    env: &EvalEnv<'_>,
) -> EngineResult<Value> {
    // AND/OR get three-valued logic with short-circuiting.
    if op == BinaryOp::And {
        let l = eval_expr(left, scope, env)?.as_bool()?;
        if l == Some(false) {
            return Ok(Value::Boolean(false));
        }
        let r = eval_expr(right, scope, env)?.as_bool()?;
        return Ok(match (l, r) {
            (Some(true), Some(true)) => Value::Boolean(true),
            (_, Some(false)) => Value::Boolean(false),
            _ => Value::Null,
        });
    }
    if op == BinaryOp::Or {
        let l = eval_expr(left, scope, env)?.as_bool()?;
        if l == Some(true) {
            return Ok(Value::Boolean(true));
        }
        let r = eval_expr(right, scope, env)?.as_bool()?;
        return Ok(match (l, r) {
            (Some(false), Some(false)) => Value::Boolean(false),
            (_, Some(true)) => Value::Boolean(true),
            _ => Value::Null,
        });
    }

    let l = eval_expr(left, scope, env)?;
    let r = eval_expr(right, scope, env)?;

    match op {
        BinaryOp::Eq
        | BinaryOp::NotEq
        | BinaryOp::Lt
        | BinaryOp::LtEq
        | BinaryOp::Gt
        | BinaryOp::GtEq => {
            let ord = match l.sql_cmp(&r)? {
                None => return Ok(Value::Null),
                Some(o) => o,
            };
            use std::cmp::Ordering::*;
            let b = match op {
                BinaryOp::Eq => ord == Equal,
                BinaryOp::NotEq => ord != Equal,
                BinaryOp::Lt => ord == Less,
                BinaryOp::LtEq => ord != Greater,
                BinaryOp::Gt => ord == Greater,
                BinaryOp::GtEq => ord != Less,
                _ => unreachable!(),
            };
            Ok(Value::Boolean(b))
        }
        BinaryOp::Concat => {
            if l.is_null() || r.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Text(format!(
                    "{}{}",
                    functions::render_value_for_concat(&l),
                    functions::render_value_for_concat(&r)
                )))
            }
        }
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            arith(op, &l, &r)
        }
        BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
    }
}

fn arith(op: BinaryOp, l: &Value, r: &Value) -> EngineResult<Value> {
    let type_err = || EngineError::typing(format!("cannot apply {} to {l} and {r}", op.symbol()));
    match (l, r) {
        (Value::Integer(a), Value::Integer(b)) => Ok(match op {
            BinaryOp::Add => a
                .checked_add(*b)
                .map(Value::Integer)
                .unwrap_or(Value::Float(*a as f64 + *b as f64)),
            BinaryOp::Sub => a
                .checked_sub(*b)
                .map(Value::Integer)
                .unwrap_or(Value::Float(*a as f64 - *b as f64)),
            BinaryOp::Mul => a
                .checked_mul(*b)
                .map(Value::Integer)
                .unwrap_or(Value::Float(*a as f64 * *b as f64)),
            // Integer division truncates, like SQLite; zero divisor → NULL
            // so division never aborts a whole analytics query.
            BinaryOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Integer(a / b)
                }
            }
            BinaryOp::Mod => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Integer(a % b)
                }
            }
            _ => unreachable!(),
        }),
        _ => {
            let a = l.as_f64().ok_or_else(type_err)?;
            let b = r.as_f64().ok_or_else(type_err)?;
            Ok(match op {
                BinaryOp::Add => Value::Float(a + b),
                BinaryOp::Sub => Value::Float(a - b),
                BinaryOp::Mul => Value::Float(a * b),
                BinaryOp::Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a / b)
                    }
                }
                BinaryOp::Mod => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a % b)
                    }
                }
                _ => unreachable!(),
            })
        }
    }
}

pub fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Null => Value::Null,
        Literal::Integer(v) => Value::Integer(*v),
        Literal::Float(v) => Value::Float(*v),
        Literal::String(s) => Value::Text(s.clone()),
        Literal::Boolean(b) => Value::Boolean(*b),
    }
}

/// Does this expression contain an aggregate call (not counting window
/// calls and not descending into subqueries)?
pub fn contains_aggregate(expr: &Expr) -> bool {
    match expr {
        Expr::Function(call) => {
            if call.over.is_none() && functions::is_aggregate(&call.name) {
                return true;
            }
            // Window-call arguments may contain aggregates
            // (e.g. RANK() OVER (ORDER BY SUM(x))).
            if let Some(spec) = &call.over {
                if spec.partition_by.iter().any(contains_aggregate)
                    || spec.order_by.iter().any(|o| contains_aggregate(&o.expr))
                {
                    return true;
                }
            }
            call.args.iter().any(contains_aggregate)
        }
        Expr::Literal(_) | Expr::Column { .. } => false,
        Expr::Unary { expr, .. } => contains_aggregate(expr),
        Expr::Binary { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::IsNull { expr, .. } => contains_aggregate(expr),
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        Expr::InSubquery { expr, .. } => contains_aggregate(expr),
        Expr::Between {
            expr, low, high, ..
        } => contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high),
        Expr::Like { expr, pattern, .. } => contains_aggregate(expr) || contains_aggregate(pattern),
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            operand.as_deref().map(contains_aggregate).unwrap_or(false)
                || branches
                    .iter()
                    .any(|(w, t)| contains_aggregate(w) || contains_aggregate(t))
                || else_expr
                    .as_deref()
                    .map(contains_aggregate)
                    .unwrap_or(false)
        }
        Expr::Cast { expr, .. } => contains_aggregate(expr),
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => false,
    }
}

/// Collect aggregate calls that are evaluated unconditionally whenever
/// the containing expression is evaluated — i.e. not behind a lazily
/// evaluated position (`AND`/`OR` right operand, `CASE` branches,
/// `IN`-list items) where the row engine might skip them (and thereby
/// skip their errors). The planner may safely pre-compute exactly these.
pub fn collect_unconditional_aggregates<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    match expr {
        Expr::Function(call) => {
            if call.over.is_some() {
                return; // window calls are pre-computed separately
            }
            if functions::is_aggregate(&call.name) {
                out.push(expr);
                return; // arguments evaluate per group member, not here
            }
            for a in &call.args {
                collect_unconditional_aggregates(a, out);
            }
        }
        Expr::Literal(_) | Expr::Column { .. } => {}
        Expr::Unary { expr, .. } => collect_unconditional_aggregates(expr, out),
        Expr::Binary { left, op, right } => {
            collect_unconditional_aggregates(left, out);
            // AND/OR may short-circuit the right operand per row.
            if !matches!(op, BinaryOp::And | BinaryOp::Or) {
                collect_unconditional_aggregates(right, out);
            }
        }
        Expr::IsNull { expr, .. } => collect_unconditional_aggregates(expr, out),
        // List items evaluate lazily (and not at all for a NULL probe).
        Expr::InList { expr, .. } => collect_unconditional_aggregates(expr, out),
        Expr::InSubquery { expr, .. } => collect_unconditional_aggregates(expr, out),
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_unconditional_aggregates(expr, out);
            collect_unconditional_aggregates(low, out);
            collect_unconditional_aggregates(high, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_unconditional_aggregates(expr, out);
            collect_unconditional_aggregates(pattern, out);
        }
        // Every part of a CASE after the first WHEN is conditional;
        // treat the whole construct conservatively.
        Expr::Case { .. } => {}
        Expr::Cast { expr, .. } => collect_unconditional_aggregates(expr, out),
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
    }
}

/// Collect every aggregate call in an expression tree, including calls
/// in lazily evaluated positions (`AND`/`OR` right operands, `CASE`
/// branches, `IN`-list items). Subqueries are not descended into —
/// aggregates there belong to the subquery's own grouping context. The
/// collected set is a superset of [`collect_unconditional_aggregates`];
/// the two agree exactly when no aggregate sits behind a lazy position.
pub fn collect_aggregate_calls<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    match expr {
        Expr::Function(call) => {
            if call.over.is_some() {
                return; // window calls are pre-computed separately
            }
            if functions::is_aggregate(&call.name) {
                out.push(expr);
                return; // arguments evaluate per group member, not here
            }
            for a in &call.args {
                collect_aggregate_calls(a, out);
            }
        }
        Expr::Literal(_) | Expr::Column { .. } => {}
        Expr::Unary { expr, .. } => collect_aggregate_calls(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_aggregate_calls(left, out);
            collect_aggregate_calls(right, out);
        }
        Expr::IsNull { expr, .. } => collect_aggregate_calls(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_aggregate_calls(expr, out);
            for e in list {
                collect_aggregate_calls(e, out);
            }
        }
        Expr::InSubquery { expr, .. } => collect_aggregate_calls(expr, out),
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggregate_calls(expr, out);
            collect_aggregate_calls(low, out);
            collect_aggregate_calls(high, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_aggregate_calls(expr, out);
            collect_aggregate_calls(pattern, out);
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(o) = operand.as_deref() {
                collect_aggregate_calls(o, out);
            }
            for (w, t) in branches {
                collect_aggregate_calls(w, out);
                collect_aggregate_calls(t, out);
            }
            if let Some(e) = else_expr.as_deref() {
                collect_aggregate_calls(e, out);
            }
        }
        Expr::Cast { expr, .. } => collect_aggregate_calls(expr, out),
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
    }
}

/// Collect all window calls (functions with OVER) in an expression tree,
/// not descending into subqueries.
pub fn collect_window_calls<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    match expr {
        Expr::Function(call) => {
            if call.over.is_some() {
                out.push(expr);
            }
            for a in &call.args {
                collect_window_calls(a, out);
            }
        }
        Expr::Literal(_) | Expr::Column { .. } => {}
        Expr::Unary { expr, .. } => collect_window_calls(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_window_calls(left, out);
            collect_window_calls(right, out);
        }
        Expr::IsNull { expr, .. } => collect_window_calls(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_window_calls(expr, out);
            for e in list {
                collect_window_calls(e, out);
            }
        }
        Expr::InSubquery { expr, .. } => collect_window_calls(expr, out),
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_window_calls(expr, out);
            collect_window_calls(low, out);
            collect_window_calls(high, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_window_calls(expr, out);
            collect_window_calls(pattern, out);
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(op) = operand {
                collect_window_calls(op, out);
            }
            for (w, t) in branches {
                collect_window_calls(w, out);
                collect_window_calls(t, out);
            }
            if let Some(e) = else_expr {
                collect_window_calls(e, out);
            }
        }
        Expr::Cast { expr, .. } => collect_window_calls(expr, out),
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
    }
}
