//! The row-at-a-time reference interpreter.
//!
//! This is the original materializing executor, kept fully reachable as
//! the semantic baseline for the vectorized engine: `sql_sweep` and the
//! differential test suites run every query through both paths and
//! require byte-identical results. The only change from its original
//! form is that grouping and DISTINCT use typed [`KeyElem`] tuples
//! instead of `"|"`-joined key strings (which could collide for text
//! values containing `|`).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::ast::{Expr, Query};
use crate::ast::{JoinKind, OrderItem, Select, SelectItem, TableRef};
use crate::catalog::Database;
use crate::error::{EngineError, EngineResult};
use crate::eval::{
    collect_window_calls, contains_aggregate, eval_expr, ColMeta, EvalEnv, Relation, Scope,
};
use crate::exec::{execute_query_with_outer, finish_select, CteMap};
use crate::key::{key_elem, KeyElem};
use crate::result::ResultSet;
use crate::value::Value;
use crate::window::{compute_windows, unit_scope, Unit};
use std::collections::HashMap;

/// Execute one SELECT body row-at-a-time.
pub(crate) fn exec_select(
    db: &Database,
    select: &Select,
    ctes: &CteMap,
    outer: Option<&Scope<'_>>,
    order_by: &[OrderItem],
    limit: Option<u64>,
) -> EngineResult<ResultSet> {
    let env = EvalEnv { db, ctes };

    // FROM.
    let rel = match &select.from {
        Some(tr) => resolve_from(db, tr, ctes, outer)?,
        None => Relation {
            cols: Vec::new(),
            rows: vec![Vec::new()],
        },
    };

    // WHERE.
    let mut kept: Vec<usize> = Vec::with_capacity(rel.rows.len());
    match &select.selection {
        Some(pred) => {
            for (i, row) in rel.rows.iter().enumerate() {
                let scope = Scope {
                    cols: &rel.cols,
                    row,
                    parent: outer,
                    group: None,
                    windows: None,
                    aggs: None,
                    unit_index: 0,
                };
                if eval_expr(pred, &scope, &env)?.as_bool()? == Some(true) {
                    kept.push(i);
                }
            }
        }
        None => kept = (0..rel.rows.len()).collect(),
    }

    // Is this an aggregated query?
    let items_have_aggregates = select.items.iter().any(|item| match item {
        SelectItem::Expr { expr, .. } => contains_aggregate(expr),
        _ => false,
    });
    let aggregated = !select.group_by.is_empty()
        || items_have_aggregates
        || select
            .having
            .as_ref()
            .map(contains_aggregate)
            .unwrap_or(false)
        || select.having.is_some();

    // Build units.
    let mut units: Vec<Unit> = Vec::new();
    if aggregated {
        if select.group_by.is_empty() {
            units.push(Unit {
                rep: kept.first().copied().unwrap_or(usize::MAX),
                members: kept.clone(),
            });
        } else {
            let mut index: HashMap<Vec<KeyElem>, usize> = HashMap::new();
            for &i in &kept {
                let scope = Scope {
                    cols: &rel.cols,
                    row: &rel.rows[i],
                    parent: outer,
                    group: None,
                    windows: None,
                    aggs: None,
                    unit_index: 0,
                };
                let mut key = Vec::with_capacity(select.group_by.len());
                for g in &select.group_by {
                    key.push(key_elem(&eval_expr(g, &scope, &env)?));
                }
                match index.get(&key) {
                    Some(&u) => units[u].members.push(i),
                    None => {
                        index.insert(key, units.len());
                        units.push(Unit {
                            rep: i,
                            members: vec![i],
                        });
                    }
                }
            }
        }
        // HAVING.
        if let Some(having) = &select.having {
            let mut filtered = Vec::with_capacity(units.len());
            for unit in units {
                let scope = unit_scope(&rel, &unit, outer, None, None, 0, aggregated);
                if eval_expr(having, &scope, &env)?.as_bool()? == Some(true) {
                    filtered.push(unit);
                }
            }
            units = filtered;
        }
    } else {
        units = kept
            .iter()
            .map(|&i| Unit {
                rep: i,
                members: vec![i],
            })
            .collect();
    }

    // Window functions.
    let mut window_exprs: Vec<&Expr> = Vec::new();
    for item in &select.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect_window_calls(expr, &mut window_exprs);
        }
    }
    for o in order_by {
        collect_window_calls(&o.expr, &mut window_exprs);
    }
    let windows = compute_windows(&rel, &units, &window_exprs, outer, &env, aggregated)?;

    finish_select(
        select, &rel, &units, &windows, None, outer, &env, order_by, limit, aggregated,
    )
}

// ----------------------------------------------------------------------
// FROM resolution
// ----------------------------------------------------------------------

pub(crate) fn resolve_from(
    db: &Database,
    tr: &TableRef,
    ctes: &CteMap,
    outer: Option<&Scope<'_>>,
) -> EngineResult<Relation> {
    match tr {
        TableRef::Named { name, alias } => {
            let qualifier = alias.clone().unwrap_or_else(|| name.clone());
            if let Some(rs) = ctes.get(&name.to_lowercase()) {
                let cols = rs
                    .columns
                    .iter()
                    .map(|c| ColMeta::new(Some(qualifier.clone()), c.clone()))
                    .collect();
                return Ok(Relation {
                    cols,
                    rows: rs.rows.clone(),
                });
            }
            let table = db
                .table(name)
                .ok_or_else(|| EngineError::binding(format!("no such table {name}")))?;
            let cols = table
                .columns
                .iter()
                .map(|c| ColMeta::new(Some(qualifier.clone()), c.name.clone()))
                .collect();
            Ok(Relation {
                cols,
                rows: table.rows.clone(),
            })
        }
        TableRef::Derived { query, alias } => {
            let rs = exec_derived(db, query, ctes)?;
            let cols = rs
                .columns
                .iter()
                .map(|c| ColMeta::new(Some(alias.clone()), c.clone()))
                .collect();
            Ok(Relation {
                cols,
                rows: rs.rows,
            })
        }
        TableRef::Join {
            left,
            right,
            kind,
            on,
        } => {
            let l = resolve_from(db, left, ctes, outer)?;
            let r = resolve_from(db, right, ctes, outer)?;
            join(db, ctes, outer, l, r, *kind, on.as_ref())
        }
    }
}

fn exec_derived(db: &Database, query: &Query, ctes: &CteMap) -> EngineResult<ResultSet> {
    execute_query_with_outer(db, query, ctes, None)
}

fn join(
    db: &Database,
    ctes: &CteMap,
    outer: Option<&Scope<'_>>,
    l: Relation,
    r: Relation,
    kind: JoinKind,
    on: Option<&Expr>,
) -> EngineResult<Relation> {
    let env = EvalEnv { db, ctes };
    let mut cols = l.cols.clone();
    cols.extend(r.cols.iter().cloned());
    let mut out = Relation::new(cols);

    match kind {
        JoinKind::Cross => {
            for lrow in &l.rows {
                for rrow in &r.rows {
                    let mut combined = lrow.clone();
                    combined.extend(rrow.iter().cloned());
                    out.rows.push(combined);
                }
            }
        }
        JoinKind::Inner | JoinKind::Left => {
            let pred = on.ok_or_else(|| EngineError::typing("JOIN requires an ON condition"))?;
            for lrow in &l.rows {
                let mut matched = false;
                for rrow in &r.rows {
                    let mut combined = lrow.clone();
                    combined.extend(rrow.iter().cloned());
                    let scope = Scope {
                        cols: &out.cols,
                        row: &combined,
                        parent: outer,
                        group: None,
                        windows: None,
                        aggs: None,
                        unit_index: 0,
                    };
                    if eval_expr(pred, &scope, &env)?.as_bool()? == Some(true) {
                        matched = true;
                        out.rows.push(combined);
                    }
                }
                if kind == JoinKind::Left && !matched {
                    let mut combined = lrow.clone();
                    combined.extend(std::iter::repeat_n(Value::Null, r.cols.len()));
                    out.rows.push(combined);
                }
            }
        }
    }
    Ok(out)
}
