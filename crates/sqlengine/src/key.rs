//! Typed composite keys for grouping, DISTINCT, set operations, window
//! partitions, and hash joins.
//!
//! The seed interpreter built composite keys by joining per-value
//! [`Value::group_key`] strings with `"|"`, so a text value containing a
//! literal `|` could alias two distinct composite keys (e.g. `("a|b", "c")`
//! vs `("a", "b|c")`). [`KeyElem`] keeps each component typed and hashes
//! the tuple structurally, which makes collisions impossible while
//! preserving the exact equality classes of `group_key`:
//!
//! * integers and floats never compare equal (`1` groups apart from `1.0`),
//! * every NaN belongs to one group (`group_key` rendered all NaNs as
//!   `f:NaN`), so NaN bit patterns are canonicalized,
//! * `-0.0` and `0.0` group apart (`f:-0.0` vs `f:0.0`), so the sign bit
//!   is preserved.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::value::{Date, Value};

/// One typed component of a composite grouping key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyElem {
    /// SQL NULL (all NULLs group together).
    Null,
    /// Integer component.
    Int(i64),
    /// Float component, stored as bits with NaN canonicalized. The sign
    /// bit of zero is preserved, matching `group_key`'s `f:-0.0` / `f:0.0`
    /// distinction.
    Float(u64),
    /// Text component.
    Text(String),
    /// Boolean component.
    Bool(bool),
    /// Date component.
    Date(Date),
}

/// Float bits with every NaN collapsed onto the canonical NaN, so all
/// NaNs land in one group (as `group_key` rendered them all as `f:NaN`).
#[inline]
pub fn float_key_bits(f: f64) -> u64 {
    if f.is_nan() {
        f64::NAN.to_bits()
    } else {
        f.to_bits()
    }
}

/// The typed key component for one value. Two values map to equal
/// [`KeyElem`]s exactly when their [`Value::group_key`] strings are equal.
pub fn key_elem(v: &Value) -> KeyElem {
    match v {
        Value::Null => KeyElem::Null,
        Value::Integer(i) => KeyElem::Int(*i),
        Value::Float(f) => KeyElem::Float(float_key_bits(*f)),
        Value::Text(s) => KeyElem::Text(s.clone()),
        Value::Boolean(b) => KeyElem::Bool(*b),
        Value::Date(d) => KeyElem::Date(*d),
    }
}

/// A borrowed [`KeyElem`]: the same equality classes without owning
/// text, so hash-table probes over columnar batches allocate nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyRef<'a> {
    /// SQL NULL (all NULLs group together).
    Null,
    /// Integer component.
    Int(i64),
    /// Float component as canonicalized bits (see [`float_key_bits`]).
    Float(u64),
    /// Text component, borrowed from the source array.
    Text(&'a str),
    /// Boolean component.
    Bool(bool),
    /// Date component.
    Date(Date),
}

/// The borrowed key component for one array element. Two elements map
/// to equal [`KeyRef`]s exactly when their owned [`key_elem`] keys are
/// equal.
pub fn key_ref(v: crate::array::ValueRef<'_>) -> KeyRef<'_> {
    use crate::array::ValueRef;
    match v {
        ValueRef::Null => KeyRef::Null,
        ValueRef::Int(i) => KeyRef::Int(i),
        ValueRef::Float(f) => KeyRef::Float(float_key_bits(f)),
        ValueRef::Str(s) => KeyRef::Text(s),
        ValueRef::Bool(b) => KeyRef::Bool(b),
        ValueRef::Date(d) => KeyRef::Date(d),
    }
}

/// Typed composite key for a whole row.
pub fn row_key(row: &[Value]) -> Vec<KeyElem> {
    row.iter().map(key_elem).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_bearing_strings_do_not_collide() {
        // Under the old "|".join(group_key) scheme these two rows built
        // the same composite key string "t:a|t:b|t:c".
        let r1 = vec![Value::Text("a|t:b".into()), Value::Text("c".into())];
        let r2 = vec![Value::Text("a".into()), Value::Text("b|t:c".into())];
        let old1 = r1
            .iter()
            .map(Value::group_key)
            .collect::<Vec<_>>()
            .join("|");
        let old2 = r2
            .iter()
            .map(Value::group_key)
            .collect::<Vec<_>>()
            .join("|");
        assert_eq!(old1, old2, "the seed scheme really did collide");
        assert_ne!(row_key(&r1), row_key(&r2));
    }

    #[test]
    fn int_and_float_group_apart() {
        assert_ne!(key_elem(&Value::Integer(1)), key_elem(&Value::Float(1.0)));
    }

    #[test]
    fn nan_canonicalized_negative_zero_preserved() {
        let nan1 = f64::from_bits(0x7ff8_0000_0000_0001);
        assert_eq!(
            key_elem(&Value::Float(f64::NAN)),
            key_elem(&Value::Float(nan1))
        );
        assert_ne!(key_elem(&Value::Float(0.0)), key_elem(&Value::Float(-0.0)));
    }

    #[test]
    fn nulls_group_together() {
        assert_eq!(key_elem(&Value::Null), key_elem(&Value::Null));
        assert_ne!(key_elem(&Value::Null), key_elem(&Value::Integer(0)));
    }

    #[test]
    fn key_equality_matches_group_key_equality() {
        let vals = [
            Value::Null,
            Value::Integer(0),
            Value::Integer(1),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Float(1.0),
            Value::Float(f64::NAN),
            Value::Text("1".into()),
            Value::Text("".into()),
            Value::Boolean(true),
            Value::Boolean(false),
            Value::Date(Date::new(2023, 5, 1).unwrap()),
        ];
        for a in &vals {
            for b in &vals {
                assert_eq!(
                    key_elem(a) == key_elem(b),
                    a.group_key() == b.group_key(),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }
}
