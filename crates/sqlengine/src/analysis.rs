//! Static analysis over the AST: complexity scoring and reference
//! extraction.
//!
//! * [`complexity`] drives the oracle model's bounded "reasoning capacity"
//!   (the paper's argument that planning lets GenEdit handle much more
//!   complex SQL than direct generation, §3.1.2).
//! * [`referenced_tables`] / [`referenced_columns`] provide ground truth
//!   for the schema-linking operator and its evaluation.

use crate::ast::*;
use std::collections::BTreeSet;

/// A breakdown of query complexity. The scalar [`ComplexityScore::total`]
/// grows with the number of clauses an LLM would have to reason about at
/// once when generating the query in a single shot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ComplexityScore {
    pub ctes: usize,
    pub joins: usize,
    pub subqueries: usize,
    pub aggregates: usize,
    pub windows: usize,
    pub case_exprs: usize,
    pub predicates: usize,
    pub set_ops: usize,
}

impl ComplexityScore {
    /// Weighted scalar summary. Weights reflect how much "simultaneous
    /// reasoning" each construct demands; CTEs and windows dominate.
    pub fn total(&self) -> u32 {
        (self.ctes * 3
            + self.joins * 2
            + self.subqueries * 3
            + self.aggregates
            + self.windows * 3
            + self.case_exprs
            + self.predicates
            + self.set_ops * 2) as u32
    }
}

/// Compute the complexity breakdown for a query.
pub fn complexity(query: &Query) -> ComplexityScore {
    let mut score = ComplexityScore::default();
    walk_query(query, &mut score);
    score
}

fn walk_query(query: &Query, s: &mut ComplexityScore) {
    s.ctes += query.ctes.len();
    for cte in &query.ctes {
        walk_query(&cte.query, s);
    }
    walk_set_expr(&query.body, s);
    for o in &query.order_by {
        walk_expr(&o.expr, s);
    }
}

fn walk_set_expr(body: &SetExpr, s: &mut ComplexityScore) {
    match body {
        SetExpr::Select(select) => walk_select(select, s),
        SetExpr::SetOp { left, right, .. } => {
            s.set_ops += 1;
            walk_set_expr(left, s);
            walk_set_expr(right, s);
        }
    }
}

fn walk_select(select: &Select, s: &mut ComplexityScore) {
    for item in &select.items {
        if let SelectItem::Expr { expr, .. } = item {
            walk_expr(expr, s);
        }
    }
    if let Some(from) = &select.from {
        walk_table_ref(from, s);
    }
    if let Some(w) = &select.selection {
        s.predicates += count_conjuncts(w);
        walk_expr(w, s);
    }
    for g in &select.group_by {
        walk_expr(g, s);
    }
    if let Some(h) = &select.having {
        s.predicates += count_conjuncts(h);
        walk_expr(h, s);
    }
}

fn count_conjuncts(e: &Expr) -> usize {
    match e {
        Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => count_conjuncts(left) + count_conjuncts(right),
        _ => 1,
    }
}

fn walk_table_ref(tr: &TableRef, s: &mut ComplexityScore) {
    match tr {
        TableRef::Named { .. } => {}
        TableRef::Derived { query, .. } => {
            s.subqueries += 1;
            walk_query(query, s);
        }
        TableRef::Join {
            left, right, on, ..
        } => {
            s.joins += 1;
            walk_table_ref(left, s);
            walk_table_ref(right, s);
            if let Some(on) = on {
                walk_expr(on, s);
            }
        }
    }
}

fn walk_expr(e: &Expr, s: &mut ComplexityScore) {
    match e {
        Expr::Literal(_) | Expr::Column { .. } => {}
        Expr::Unary { expr, .. } => walk_expr(expr, s),
        Expr::Binary { left, right, .. } => {
            walk_expr(left, s);
            walk_expr(right, s);
        }
        Expr::IsNull { expr, .. } => walk_expr(expr, s),
        Expr::InList { expr, list, .. } => {
            walk_expr(expr, s);
            for i in list {
                walk_expr(i, s);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            s.subqueries += 1;
            walk_expr(expr, s);
            walk_query(subquery, s);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            walk_expr(expr, s);
            walk_expr(low, s);
            walk_expr(high, s);
        }
        Expr::Like { expr, pattern, .. } => {
            walk_expr(expr, s);
            walk_expr(pattern, s);
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            s.case_exprs += 1;
            if let Some(op) = operand {
                walk_expr(op, s);
            }
            for (w, t) in branches {
                walk_expr(w, s);
                walk_expr(t, s);
            }
            if let Some(el) = else_expr {
                walk_expr(el, s);
            }
        }
        Expr::Cast { expr, .. } => walk_expr(expr, s),
        Expr::Function(call) => {
            if call.over.is_some() {
                s.windows += 1;
                if let Some(spec) = &call.over {
                    for p in &spec.partition_by {
                        walk_expr(p, s);
                    }
                    for o in &spec.order_by {
                        walk_expr(&o.expr, s);
                    }
                }
            } else if crate::functions::is_aggregate(&call.name) {
                s.aggregates += 1;
            }
            for a in &call.args {
                walk_expr(a, s);
            }
        }
        Expr::Exists { subquery, .. } => {
            s.subqueries += 1;
            walk_query(subquery, s);
        }
        Expr::ScalarSubquery(subquery) => {
            s.subqueries += 1;
            walk_query(subquery, s);
        }
    }
}

/// All table names referenced in FROM clauses, excluding CTE names defined
/// by the query itself. Names are returned uppercased.
pub fn referenced_tables(query: &Query) -> BTreeSet<String> {
    let mut tables = BTreeSet::new();
    let mut cte_names = BTreeSet::new();
    collect_tables(query, &mut tables, &mut cte_names);
    tables
}

fn collect_tables(query: &Query, tables: &mut BTreeSet<String>, cte_names: &mut BTreeSet<String>) {
    // CTE names defined here shadow base tables for the whole query.
    let mut local = cte_names.clone();
    for cte in &query.ctes {
        collect_tables(&cte.query, tables, &mut local);
        local.insert(cte.name.to_uppercase());
    }
    collect_tables_set_expr(&query.body, tables, &local);
    for o in &query.order_by {
        collect_tables_expr(&o.expr, tables, &local);
    }
}

fn collect_tables_set_expr(
    body: &SetExpr,
    tables: &mut BTreeSet<String>,
    cte_names: &BTreeSet<String>,
) {
    match body {
        SetExpr::Select(select) => {
            if let Some(from) = &select.from {
                collect_tables_ref(from, tables, cte_names);
            }
            for item in &select.items {
                if let SelectItem::Expr { expr, .. } = item {
                    collect_tables_expr(expr, tables, cte_names);
                }
            }
            if let Some(w) = &select.selection {
                collect_tables_expr(w, tables, cte_names);
            }
            if let Some(h) = &select.having {
                collect_tables_expr(h, tables, cte_names);
            }
        }
        SetExpr::SetOp { left, right, .. } => {
            collect_tables_set_expr(left, tables, cte_names);
            collect_tables_set_expr(right, tables, cte_names);
        }
    }
}

fn collect_tables_ref(tr: &TableRef, tables: &mut BTreeSet<String>, cte_names: &BTreeSet<String>) {
    match tr {
        TableRef::Named { name, .. } => {
            let upper = name.to_uppercase();
            if !cte_names.contains(&upper) {
                tables.insert(upper);
            }
        }
        TableRef::Derived { query, .. } => {
            let mut local = cte_names.clone();
            collect_tables(query, tables, &mut local);
        }
        TableRef::Join {
            left, right, on, ..
        } => {
            collect_tables_ref(left, tables, cte_names);
            collect_tables_ref(right, tables, cte_names);
            if let Some(on) = on {
                collect_tables_expr(on, tables, cte_names);
            }
        }
    }
}

fn collect_tables_expr(e: &Expr, tables: &mut BTreeSet<String>, cte_names: &BTreeSet<String>) {
    match e {
        Expr::InSubquery { subquery, expr, .. } => {
            collect_tables_expr(expr, tables, cte_names);
            let mut local = cte_names.clone();
            collect_tables(subquery, tables, &mut local);
        }
        Expr::Exists { subquery, .. } | Expr::ScalarSubquery(subquery) => {
            let mut local = cte_names.clone();
            collect_tables(subquery, tables, &mut local);
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            collect_tables_expr(expr, tables, cte_names)
        }
        Expr::Binary { left, right, .. } => {
            collect_tables_expr(left, tables, cte_names);
            collect_tables_expr(right, tables, cte_names);
        }
        Expr::InList { expr, list, .. } => {
            collect_tables_expr(expr, tables, cte_names);
            for i in list {
                collect_tables_expr(i, tables, cte_names);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_tables_expr(expr, tables, cte_names);
            collect_tables_expr(low, tables, cte_names);
            collect_tables_expr(high, tables, cte_names);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_tables_expr(expr, tables, cte_names);
            collect_tables_expr(pattern, tables, cte_names);
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(op) = operand {
                collect_tables_expr(op, tables, cte_names);
            }
            for (w, t) in branches {
                collect_tables_expr(w, tables, cte_names);
                collect_tables_expr(t, tables, cte_names);
            }
            if let Some(el) = else_expr {
                collect_tables_expr(el, tables, cte_names);
            }
        }
        Expr::Function(call) => {
            for a in &call.args {
                collect_tables_expr(a, tables, cte_names);
            }
            if let Some(spec) = &call.over {
                for p in &spec.partition_by {
                    collect_tables_expr(p, tables, cte_names);
                }
                for o in &spec.order_by {
                    collect_tables_expr(&o.expr, tables, cte_names);
                }
            }
        }
        Expr::Literal(_) | Expr::Column { .. } => {}
    }
}

/// All column names syntactically referenced anywhere in the query,
/// uppercased. This over-approximates (CTE output columns are included)
/// but is the practical ground truth for schema-linking recall.
pub fn referenced_columns(query: &Query) -> BTreeSet<String> {
    let mut cols = BTreeSet::new();
    collect_cols_query(query, &mut cols);
    cols
}

fn collect_cols_query(query: &Query, cols: &mut BTreeSet<String>) {
    for cte in &query.ctes {
        collect_cols_query(&cte.query, cols);
    }
    collect_cols_set_expr(&query.body, cols);
    for o in &query.order_by {
        collect_cols_expr(&o.expr, cols);
    }
}

fn collect_cols_set_expr(body: &SetExpr, cols: &mut BTreeSet<String>) {
    match body {
        SetExpr::Select(select) => {
            for item in &select.items {
                if let SelectItem::Expr { expr, .. } = item {
                    collect_cols_expr(expr, cols);
                }
            }
            if let Some(from) = &select.from {
                collect_cols_ref(from, cols);
            }
            if let Some(w) = &select.selection {
                collect_cols_expr(w, cols);
            }
            for g in &select.group_by {
                collect_cols_expr(g, cols);
            }
            if let Some(h) = &select.having {
                collect_cols_expr(h, cols);
            }
        }
        SetExpr::SetOp { left, right, .. } => {
            collect_cols_set_expr(left, cols);
            collect_cols_set_expr(right, cols);
        }
    }
}

fn collect_cols_ref(tr: &TableRef, cols: &mut BTreeSet<String>) {
    match tr {
        TableRef::Named { .. } => {}
        TableRef::Derived { query, .. } => collect_cols_query(query, cols),
        TableRef::Join {
            left, right, on, ..
        } => {
            collect_cols_ref(left, cols);
            collect_cols_ref(right, cols);
            if let Some(on) = on {
                collect_cols_expr(on, cols);
            }
        }
    }
}

fn collect_cols_expr(e: &Expr, cols: &mut BTreeSet<String>) {
    match e {
        Expr::Column { name, .. } => {
            cols.insert(name.to_uppercase());
        }
        Expr::Literal(_) => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            collect_cols_expr(expr, cols)
        }
        Expr::Binary { left, right, .. } => {
            collect_cols_expr(left, cols);
            collect_cols_expr(right, cols);
        }
        Expr::InList { expr, list, .. } => {
            collect_cols_expr(expr, cols);
            for i in list {
                collect_cols_expr(i, cols);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            collect_cols_expr(expr, cols);
            collect_cols_query(subquery, cols);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_cols_expr(expr, cols);
            collect_cols_expr(low, cols);
            collect_cols_expr(high, cols);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_cols_expr(expr, cols);
            collect_cols_expr(pattern, cols);
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(op) = operand {
                collect_cols_expr(op, cols);
            }
            for (w, t) in branches {
                collect_cols_expr(w, cols);
                collect_cols_expr(t, cols);
            }
            if let Some(el) = else_expr {
                collect_cols_expr(el, cols);
            }
        }
        Expr::Function(call) => {
            for a in &call.args {
                collect_cols_expr(a, cols);
            }
            if let Some(spec) = &call.over {
                for p in &spec.partition_by {
                    collect_cols_expr(p, cols);
                }
                for o in &spec.order_by {
                    collect_cols_expr(&o.expr, cols);
                }
            }
        }
        Expr::Exists { subquery, .. } | Expr::ScalarSubquery(subquery) => {
            collect_cols_query(subquery, cols)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn q(sql: &str) -> Query {
        match parse_statement(sql).unwrap() {
            Statement::Query(q) => q,
        }
    }

    #[test]
    fn complexity_grows_with_structure() {
        let simple = complexity(&q("SELECT a FROM t"));
        let moderate = complexity(&q(
            "SELECT a, SUM(b) FROM t JOIN u ON t.id = u.id WHERE c = 1 GROUP BY a",
        ));
        let complex = complexity(&q("WITH x AS (SELECT a, SUM(b) AS s FROM t GROUP BY a), \
                  y AS (SELECT a, s, ROW_NUMBER() OVER (ORDER BY s DESC) AS r FROM x) \
             SELECT * FROM y WHERE r <= 5"));
        assert!(simple.total() < moderate.total());
        assert!(moderate.total() < complex.total());
        assert_eq!(complex.ctes, 2);
        assert_eq!(complex.windows, 1);
    }

    #[test]
    fn conjunct_counting() {
        let s = complexity(&q("SELECT a FROM t WHERE a = 1 AND b = 2 AND c = 3"));
        assert_eq!(s.predicates, 3);
        let s = complexity(&q("SELECT a FROM t WHERE a = 1 OR b = 2"));
        assert_eq!(s.predicates, 1);
    }

    #[test]
    fn referenced_tables_excludes_ctes() {
        let tables = referenced_tables(&q(
            "WITH x AS (SELECT * FROM base1) SELECT * FROM x JOIN base2 ON x.a = base2.a",
        ));
        assert_eq!(
            tables.into_iter().collect::<Vec<_>>(),
            vec!["BASE1".to_string(), "BASE2".to_string()]
        );
    }

    #[test]
    fn referenced_tables_in_subqueries() {
        let tables = referenced_tables(&q(
            "SELECT a FROM t WHERE a IN (SELECT b FROM u) AND EXISTS (SELECT 1 FROM v)",
        ));
        assert_eq!(
            tables.into_iter().collect::<Vec<_>>(),
            vec!["T".to_string(), "U".to_string(), "V".to_string()]
        );
    }

    #[test]
    fn referenced_columns_collects_everywhere() {
        let cols = referenced_columns(&q(
            "SELECT a, SUM(b) FROM t WHERE c > 1 GROUP BY a HAVING SUM(b) > 2 ORDER BY d",
        ));
        let got: Vec<String> = cols.into_iter().collect();
        assert_eq!(got, vec!["A", "B", "C", "D"]);
    }

    #[test]
    fn set_ops_counted() {
        let s = complexity(&q("SELECT a FROM t UNION SELECT a FROM u"));
        assert_eq!(s.set_ops, 1);
    }
}
