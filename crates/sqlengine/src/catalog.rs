//! Catalog: databases, tables, columns, and in-memory row storage.
//!
//! Also implements the paper's schema augmentation (§2.1): "the schema is
//! augmented with possible attribute values. Specifically, we add the top-5
//! most frequent values per attribute" — see [`Table::top_values`] and
//! [`ColumnProfile`].

use crate::array::{columns_from_rows, Array};
use crate::error::{EngineError, EngineResult};
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// A column definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub data_type: DataType,
    /// Optional human description (from "data catalogs" in the paper).
    pub description: Option<String>,
}

impl Column {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Column {
        Column {
            name: name.into(),
            data_type,
            description: None,
        }
    }

    pub fn with_description(mut self, desc: impl Into<String>) -> Column {
        self.description = Some(desc.into());
        self
    }
}

/// Frequency profile of one column: the top-k most frequent values, used to
/// augment schema descriptions in prompts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnProfile {
    pub column: String,
    /// `(value, count)` pairs, most frequent first; ties broken by value
    /// order for determinism.
    pub top_values: Vec<(String, usize)>,
    pub distinct_count: usize,
    pub null_count: usize,
}

/// Lazily built columnar image of a table's rows, shared with the
/// vectorized executor by cheap `Arc` clones.
#[derive(Debug, Clone)]
pub struct ColumnarSnapshot {
    /// One array per column, in schema order.
    pub cols: Vec<Arc<Array>>,
    /// Row count the snapshot was built at (staleness check).
    pub rows: usize,
}

/// A table with schema and row storage.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub columns: Vec<Column>,
    pub rows: Vec<Vec<Value>>,
    /// Optional table description.
    pub description: Option<String>,
    /// Columnar cache, built on first vectorized scan and invalidated by
    /// [`Table::push_row`]. Mutations that change the row count (even
    /// ones writing `rows` directly — the field is public) are caught by
    /// a staleness check; edits that keep the row count the same are only
    /// detected when made through `push_row`, so route mutations through
    /// the `Table` API. Not serialized.
    columnar: OnceLock<ColumnarSnapshot>,
}

impl Table {
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Table {
        Table {
            name: name.into(),
            columns,
            rows: Vec::new(),
            description: None,
            columnar: OnceLock::new(),
        }
    }

    pub fn with_description(mut self, desc: impl Into<String>) -> Table {
        self.description = Some(desc.into());
        self
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Append a row, validating arity (types are dynamic; NULL always fits).
    pub fn push_row(&mut self, row: Vec<Value>) -> EngineResult<()> {
        if row.len() != self.columns.len() {
            return Err(EngineError::execution(format!(
                "row arity {} does not match table {} with {} columns",
                row.len(),
                self.name,
                self.columns.len()
            )));
        }
        self.columnar.take();
        self.rows.push(row);
        Ok(())
    }

    /// Columnar image of the rows, cached across queries. If the cache
    /// is stale (rows were mutated without going through [`Table::push_row`]),
    /// a fresh uncached transposition is returned instead.
    pub fn columnar(&self) -> Vec<Arc<Array>> {
        let snap = self.columnar.get_or_init(|| ColumnarSnapshot {
            cols: columns_from_rows(&self.rows, self.columns.len()),
            rows: self.rows.len(),
        });
        if snap.rows == self.rows.len() {
            snap.cols.clone()
        } else {
            columns_from_rows(&self.rows, self.columns.len())
        }
    }

    /// The paper's top-k most-frequent-values augmentation for one column.
    pub fn top_values(&self, column: &str, k: usize) -> EngineResult<ColumnProfile> {
        let idx = self.column_index(column).ok_or_else(|| {
            EngineError::binding(format!("no column {column} in table {}", self.name))
        })?;
        let mut counts: HashMap<String, usize> = HashMap::new();
        let mut null_count = 0usize;
        for row in &self.rows {
            match &row[idx] {
                Value::Null => null_count += 1,
                v => *counts.entry(v.to_string()).or_insert(0) += 1,
            }
        }
        let distinct_count = counts.len();
        let mut pairs: Vec<(String, usize)> = counts.into_iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        pairs.truncate(k);
        Ok(ColumnProfile {
            column: self.columns[idx].name.clone(),
            top_values: pairs,
            distinct_count,
            null_count,
        })
    }

    /// Profiles for every column (top-5, per the paper).
    pub fn profile(&self) -> Vec<ColumnProfile> {
        self.columns
            .iter()
            .map(|c| self.top_values(&c.name, 5).expect("column exists"))
            .collect()
    }
}

// Hand-written (the columnar cache is runtime-only state and must not be
// serialized); the wire format matches what the field-pair derive would
// have produced for the serialized fields.
impl Serialize for Table {
    fn serialize(&self) -> serde::value::Value {
        serde::value::Value::Object(vec![
            ("name".to_string(), Serialize::serialize(&self.name)),
            ("columns".to_string(), Serialize::serialize(&self.columns)),
            ("rows".to_string(), Serialize::serialize(&self.rows)),
            (
                "description".to_string(),
                Serialize::serialize(&self.description),
            ),
        ])
    }
}

impl Deserialize for Table {
    fn deserialize(value: &serde::value::Value) -> Result<Table, serde::Error> {
        let pairs = value
            .as_object()
            .ok_or_else(|| serde::Error::expected("object", value))?;
        Ok(Table {
            name: serde::field(pairs, "name")?,
            columns: serde::field(pairs, "columns")?,
            rows: serde::field(pairs, "rows")?,
            description: serde::field(pairs, "description")?,
            columnar: OnceLock::new(),
        })
    }
}

/// A database: a set of named tables.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Database {
    pub name: String,
    tables: Vec<Table>,
}

impl Database {
    pub fn new(name: impl Into<String>) -> Database {
        Database {
            name: name.into(),
            tables: Vec::new(),
        }
    }

    pub fn add_table(&mut self, table: Table) -> EngineResult<()> {
        if self.table(&table.name).is_some() {
            return Err(EngineError::execution(format!(
                "table {} already exists in database {}",
                table.name, self.name
            )));
        }
        self.tables.push(table);
        Ok(())
    }

    /// Look up a table by case-insensitive name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables
            .iter_mut()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    pub fn table_names(&self) -> Vec<String> {
        self.tables.iter().map(|t| t.name.clone()).collect()
    }

    /// Render a compact schema description (one line per column) as used in
    /// generation prompts, including the top-5 value augmentation.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            out.push_str(&format!("TABLE {} (\n", t.name));
            let profiles = t.profile();
            for (col, prof) in t.columns.iter().zip(profiles.iter()) {
                let vals: Vec<String> = prof.top_values.iter().map(|(v, _)| v.clone()).collect();
                out.push_str(&format!("  {} {}", col.name, col.data_type));
                if let Some(d) = &col.description {
                    out.push_str(&format!(" -- {d}"));
                }
                if !vals.is_empty() {
                    out.push_str(&format!(" [top: {}]", vals.join(", ")));
                }
                out.push('\n');
            }
            out.push_str(")\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new(
            "ORGS",
            vec![
                Column::new("NAME", DataType::Text),
                Column::new("COUNTRY", DataType::Text),
                Column::new("REVENUE", DataType::Integer),
            ],
        );
        for (n, c, r) in [
            ("a", "Canada", 10),
            ("b", "Canada", 20),
            ("c", "USA", 30),
            ("d", "Canada", 40),
            ("e", "Mexico", 50),
        ] {
            t.push_row(vec![n.into(), c.into(), Value::Integer(r)])
                .unwrap();
        }
        t
    }

    #[test]
    fn arity_checked() {
        let mut t = sample_table();
        assert!(t.push_row(vec![Value::Integer(1)]).is_err());
    }

    #[test]
    fn column_lookup_case_insensitive() {
        let t = sample_table();
        assert_eq!(t.column_index("country"), Some(1));
        assert_eq!(t.column_index("COUNTRY"), Some(1));
        assert_eq!(t.column_index("nope"), None);
    }

    #[test]
    fn top_values_ordering_and_ties() {
        let t = sample_table();
        let p = t.top_values("COUNTRY", 2).unwrap();
        assert_eq!(p.top_values[0], ("Canada".to_string(), 3));
        // Mexico vs USA tie at 1 → lexicographic.
        assert_eq!(p.top_values[1], ("Mexico".to_string(), 1));
        assert_eq!(p.distinct_count, 3);
        assert_eq!(p.null_count, 0);
    }

    #[test]
    fn nulls_counted_separately() {
        let mut t = sample_table();
        t.push_row(vec![Value::Null, Value::Null, Value::Null])
            .unwrap();
        let p = t.top_values("COUNTRY", 5).unwrap();
        assert_eq!(p.null_count, 1);
        assert_eq!(p.distinct_count, 3);
    }

    #[test]
    fn database_duplicate_table_rejected() {
        let mut db = Database::new("d");
        db.add_table(sample_table()).unwrap();
        assert!(db.add_table(sample_table()).is_err());
        assert!(db.table("orgs").is_some());
    }

    #[test]
    fn describe_includes_top_values() {
        let mut db = Database::new("d");
        db.add_table(sample_table()).unwrap();
        let desc = db.describe();
        assert!(desc.contains("TABLE ORGS"));
        assert!(desc.contains("COUNTRY TEXT"));
        assert!(desc.contains("Canada"));
    }
}
