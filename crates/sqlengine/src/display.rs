//! SQL rendering (un-parsing).
//!
//! Two renderers share one code path:
//! * `Display` renders compact single-line SQL whose re-parse is
//!   structurally identical to the original AST (property-tested).
//! * [`pretty`] renders indented multi-line SQL for prompts and examples —
//!   the form shown in the paper's Fig. 2 knowledge snippets.

use crate::ast::*;
use crate::value::DataType;
use std::fmt::{self, Write as _};

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Query(q) => write!(f, "{q}"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.ctes.is_empty() {
            f.write_str("WITH ")?;
            for (i, cte) in self.ctes.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{} AS ({})", ident(&cte.name), cte.query)?;
            }
            f.write_str(" ")?;
        }
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            write_order_list(f, &self.order_by)?;
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Select(s) => write!(f, "{s}"),
            SetExpr::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let op_str = match op {
                    SetOp::Union => "UNION",
                    SetOp::Intersect => "INTERSECT",
                    SetOp::Except => "EXCEPT",
                };
                write!(f, "{left} {op_str}")?;
                if *all {
                    f.write_str(" ALL")?;
                }
                write!(f, " {right}")
            }
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        if let Some(from) = &self.from {
            write!(f, " FROM {from}")?;
        }
        if let Some(w) = &self.selection {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, e) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{e}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::QualifiedWildcard(t) => write!(f, "{}.*", ident(t)),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {}", ident(a))?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Named { name, alias } => {
                write!(f, "{}", ident(name))?;
                if let Some(a) = alias {
                    write!(f, " AS {}", ident(a))?;
                }
                Ok(())
            }
            TableRef::Derived { query, alias } => {
                write!(f, "({query}) AS {}", ident(alias))
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let kw = match kind {
                    JoinKind::Inner => "JOIN",
                    JoinKind::Left => "LEFT JOIN",
                    JoinKind::Cross => "CROSS JOIN",
                };
                write!(f, "{left} {kw} {right}")?;
                if let Some(cond) = on {
                    write!(f, " ON {cond}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for OrderItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if self.desc {
            f.write_str(" DESC")?;
        }
        Ok(())
    }
}

fn write_order_list(f: &mut fmt::Formatter<'_>, items: &[OrderItem]) -> fmt::Result {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{item}")?;
    }
    Ok(())
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => f.write_str("NULL"),
            Literal::Integer(v) => write!(f, "{v}"),
            Literal::Float(v) => {
                // Always keep a decimal point so the literal re-lexes as a float.
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Boolean(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

/// Quote an identifier when it is not a plain word or collides with a
/// keyword that would change parsing.
fn ident(name: &str) -> String {
    let plain = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
        && !name.chars().next().unwrap().is_ascii_digit()
        && !is_reserved_word(name);
    if plain {
        name.to_string()
    } else {
        format!("\"{name}\"")
    }
}

fn is_reserved_word(name: &str) -> bool {
    const WORDS: &[&str] = &[
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "HAVING",
        "ORDER",
        "LIMIT",
        "JOIN",
        "INNER",
        "LEFT",
        "CROSS",
        "ON",
        "UNION",
        "INTERSECT",
        "EXCEPT",
        "AND",
        "OR",
        "NOT",
        "IN",
        "BETWEEN",
        "LIKE",
        "IS",
        "NULL",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "AS",
        "WITH",
        "DISTINCT",
        "ALL",
        "ASC",
        "DESC",
        "EXISTS",
        "CAST",
        "OVER",
        "PARTITION",
        "BY",
        "TRUE",
        "FALSE",
    ];
    WORDS.iter().any(|w| name.eq_ignore_ascii_case(w))
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Column { table, name } => {
                if let Some(t) = table {
                    write!(f, "{}.{}", ident(t), ident(name))
                } else {
                    write!(f, "{}", ident(name))
                }
            }
            Expr::Unary { op, expr } => {
                match op {
                    UnaryOp::Neg => {
                        let inner = child_strict(expr, self.precedence());
                        // Parenthesize anything that renders with a leading
                        // minus, or `--` would lex as a line comment.
                        if inner.starts_with('-') {
                            write!(f, "-({inner})")
                        } else {
                            write!(f, "-{inner}")
                        }
                    }
                    UnaryOp::Not => write!(f, "NOT {}", child(expr, self.precedence())),
                }
            }
            Expr::Binary { left, op, right } => {
                let prec = op.precedence();
                // The comparison layer (prec 4) is non-associative in the
                // grammar, so equal-precedence children need parens on both
                // sides; arithmetic layers are left-associative, so only
                // the right child gets strict parens.
                let l = if prec == 4 {
                    child_strict(left, prec)
                } else {
                    child(left, prec)
                };
                let r = child_strict(right, prec);
                write!(f, "{l} {} {r}", op.symbol())
            }
            Expr::IsNull { expr, negated } => {
                let e = child_strict(expr, self.precedence());
                write!(f, "{e} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let e = child_strict(expr, self.precedence());
                write!(f, "{e} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, item) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str(")")
            }
            Expr::InSubquery {
                expr,
                subquery,
                negated,
            } => {
                let e = child_strict(expr, self.precedence());
                write!(
                    f,
                    "{e} {}IN ({subquery})",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let e = child_strict(expr, self.precedence());
                let lo = child_strict(low, self.precedence());
                let hi = child_strict(high, self.precedence());
                write!(
                    f,
                    "{e} {}BETWEEN {lo} AND {hi}",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let e = child_strict(expr, self.precedence());
                let p = child_strict(pattern, self.precedence());
                write!(f, "{e} {}LIKE {p}", if *negated { "NOT " } else { "" })
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                f.write_str("CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (cond, result) in branches {
                    write!(f, " WHEN {cond} THEN {result}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Expr::Cast { expr, ty } => {
                let ty_name = match ty {
                    DataType::Integer => "INTEGER",
                    DataType::Float => "FLOAT",
                    DataType::Text => "TEXT",
                    DataType::Boolean => "BOOLEAN",
                    DataType::Date => "DATE",
                };
                write!(f, "CAST({expr} AS {ty_name})")
            }
            Expr::Function(call) => write!(f, "{call}"),
            Expr::Exists { subquery, negated } => {
                write!(
                    f,
                    "{}EXISTS ({subquery})",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::ScalarSubquery(q) => write!(f, "({q})"),
        }
    }
}

impl fmt::Display for FunctionCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        if self.star {
            f.write_str("*")?;
        } else {
            if self.distinct {
                f.write_str("DISTINCT ")?;
            }
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{a}")?;
            }
        }
        f.write_str(")")?;
        if let Some(spec) = &self.over {
            f.write_str(" OVER (")?;
            let mut needs_space = false;
            if !spec.partition_by.is_empty() {
                f.write_str("PARTITION BY ")?;
                for (i, e) in spec.partition_by.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                needs_space = true;
            }
            if !spec.order_by.is_empty() {
                if needs_space {
                    f.write_str(" ")?;
                }
                f.write_str("ORDER BY ")?;
                for (i, item) in spec.order_by.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

/// Render a child expression, parenthesizing when it binds looser than the
/// parent.
fn child(e: &Expr, parent_prec: u8) -> String {
    if e.precedence() < parent_prec {
        format!("({e})")
    } else {
        format!("{e}")
    }
}

/// Like [`child`] but also parenthesizes equal precedence — used for the
/// right operand of left-associative binary operators.
fn child_strict(e: &Expr, parent_prec: u8) -> String {
    if e.precedence() <= parent_prec {
        format!("({e})")
    } else {
        format!("{e}")
    }
}

/// Render indented, human-oriented SQL. CTEs go one per block, clauses one
/// per line — the style the paper shows in prompts and the knowledge set.
pub fn pretty(query: &Query) -> String {
    let mut out = String::new();
    write_pretty_query(&mut out, query, 0);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_pretty_query(out: &mut String, query: &Query, level: usize) {
    if !query.ctes.is_empty() {
        indent(out, level);
        out.push_str("WITH\n");
        for (i, cte) in query.ctes.iter().enumerate() {
            indent(out, level);
            let _ = writeln!(out, "{} AS (", ident(&cte.name));
            write_pretty_query(out, &cte.query, level + 1);
            indent(out, level);
            out.push_str(if i + 1 < query.ctes.len() {
                "),\n"
            } else {
                ")\n"
            });
        }
    }
    write_pretty_set_expr(out, &query.body, level);
    if !query.order_by.is_empty() {
        indent(out, level);
        out.push_str("ORDER BY ");
        for (i, item) in query.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{item}");
        }
        out.push('\n');
    }
    if let Some(n) = query.limit {
        indent(out, level);
        let _ = writeln!(out, "LIMIT {n}");
    }
}

fn write_pretty_set_expr(out: &mut String, body: &SetExpr, level: usize) {
    match body {
        SetExpr::Select(s) => write_pretty_select(out, s, level),
        SetExpr::SetOp {
            op,
            all,
            left,
            right,
        } => {
            write_pretty_set_expr(out, left, level);
            indent(out, level);
            let op_str = match op {
                SetOp::Union => "UNION",
                SetOp::Intersect => "INTERSECT",
                SetOp::Except => "EXCEPT",
            };
            let _ = writeln!(out, "{op_str}{}", if *all { " ALL" } else { "" });
            write_pretty_set_expr(out, right, level);
        }
    }
}

fn write_pretty_select(out: &mut String, s: &Select, level: usize) {
    indent(out, level);
    out.push_str("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    for (i, item) in s.items.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
            indent(out, level + 1);
        }
        let _ = write!(out, "{item}");
    }
    out.push('\n');
    if let Some(from) = &s.from {
        indent(out, level);
        let _ = writeln!(out, "FROM {from}");
    }
    if let Some(w) = &s.selection {
        indent(out, level);
        let _ = writeln!(out, "WHERE {w}");
    }
    if !s.group_by.is_empty() {
        indent(out, level);
        out.push_str("GROUP BY ");
        for (i, e) in s.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{e}");
        }
        out.push('\n');
    }
    if let Some(h) = &s.having {
        indent(out, level);
        let _ = writeln!(out, "HAVING {h}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn round_trip(sql: &str) {
        let Statement::Query(q1) = parse_statement(sql).unwrap();
        let rendered = q1.to_string();
        let Statement::Query(q2) = parse_statement(&rendered)
            .unwrap_or_else(|e| panic!("re-parse of {rendered:?} failed: {e}"));
        assert_eq!(q1, q2, "round trip changed AST for {sql:?} -> {rendered:?}");
    }

    #[test]
    fn round_trips() {
        round_trip("SELECT 1");
        round_trip("SELECT a, b AS c FROM t WHERE a > 1 AND b < 2 OR c = 3");
        round_trip("SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y");
        round_trip("WITH x AS (SELECT 1 AS a) SELECT a FROM x ORDER BY a DESC LIMIT 3");
        round_trip("SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t");
        round_trip("SELECT COUNT(DISTINCT a), SUM(b) FROM t GROUP BY c HAVING SUM(b) > 0");
        round_trip("SELECT ROW_NUMBER() OVER (PARTITION BY a ORDER BY b DESC) FROM t");
        round_trip("SELECT a FROM t UNION ALL SELECT a FROM u");
        round_trip("SELECT a FROM (SELECT a FROM t) AS s");
        round_trip("SELECT x FROM t WHERE x IN (SELECT y FROM u) AND z NOT LIKE 'a%'");
        round_trip("SELECT CAST(a AS FLOAT) / NULLIF(b, 0) FROM t");
        round_trip("SELECT -a, NOT b, a - (b - c) FROM t");
        round_trip("SELECT 1 - 2 - 3");
        round_trip("SELECT 'it''s'");
        round_trip("SELECT a BETWEEN 1 AND 2 FROM t");
    }

    #[test]
    fn left_associativity_preserved() {
        // 1 - 2 - 3 must not re-parse as 1 - (2 - 3).
        let Statement::Query(q) = parse_statement("SELECT 1 - 2 - 3").unwrap();
        let s = q.to_string();
        assert!(s.contains("1 - 2 - 3"), "{s}");
    }

    #[test]
    fn precedence_parens_added() {
        // (a + b) * c needs parens, a + b * c does not.
        let Statement::Query(q) = parse_statement("SELECT (a + b) * c").unwrap();
        assert!(q.to_string().contains("(a + b) * c"));
        let Statement::Query(q) = parse_statement("SELECT a + b * c").unwrap();
        assert!(q.to_string().contains("a + b * c"));
    }

    #[test]
    fn reserved_identifiers_quoted() {
        assert_eq!(super::ident("order"), "\"order\"");
        assert_eq!(super::ident("ORG_NAME"), "ORG_NAME");
        assert_eq!(super::ident("weird col"), "\"weird col\"");
        assert_eq!(super::ident("1abc"), "\"1abc\"");
    }

    #[test]
    fn string_escaping_round_trips() {
        round_trip("SELECT * FROM t WHERE name = 'O''Brien'");
    }

    #[test]
    fn pretty_is_reparseable_and_multiline() {
        let sql = "WITH x AS (SELECT a, SUM(b) AS s FROM t GROUP BY a) \
                   SELECT a, s FROM x WHERE s > 10 ORDER BY s DESC LIMIT 5";
        let Statement::Query(q) = parse_statement(sql).unwrap();
        let p = pretty(&q);
        assert!(p.lines().count() > 4, "{p}");
        let Statement::Query(q2) = parse_statement(&p).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn float_literals_keep_decimal_point() {
        round_trip("SELECT 2.0, 2.5, 0.015");
        let Statement::Query(q) = parse_statement("SELECT 2.0").unwrap();
        assert!(q.to_string().contains("2.0"));
    }
}
