//! Aggregate function accumulators.

use crate::error::{EngineError, EngineResult};
use crate::value::Value;
use std::collections::HashSet;

/// A running aggregate computation.
#[derive(Debug)]
pub enum Accumulator {
    CountStar(i64),
    Count {
        seen: i64,
        distinct: Option<HashSet<String>>,
    },
    Sum {
        acc: Option<f64>,
        all_int: bool,
        distinct: Option<HashSet<String>>,
    },
    Avg {
        sum: f64,
        n: i64,
        distinct: Option<HashSet<String>>,
    },
    Min(Option<Value>),
    Max(Option<Value>),
    GroupConcat {
        parts: Vec<String>,
        sep: String,
    },
}

impl Accumulator {
    /// Construct the accumulator for an aggregate function name.
    pub fn for_function(name: &str, distinct: bool, star: bool) -> EngineResult<Accumulator> {
        let upper = name.to_ascii_uppercase();
        Ok(match upper.as_str() {
            "COUNT" if star => Accumulator::CountStar(0),
            "COUNT" => Accumulator::Count {
                seen: 0,
                distinct: if distinct { Some(HashSet::new()) } else { None },
            },
            "SUM" => Accumulator::Sum {
                acc: None,
                all_int: true,
                distinct: if distinct { Some(HashSet::new()) } else { None },
            },
            "AVG" => Accumulator::Avg {
                sum: 0.0,
                n: 0,
                distinct: if distinct { Some(HashSet::new()) } else { None },
            },
            "MIN" => Accumulator::Min(None),
            "MAX" => Accumulator::Max(None),
            "GROUP_CONCAT" => Accumulator::GroupConcat {
                parts: Vec::new(),
                sep: ",".into(),
            },
            other => {
                return Err(EngineError::binding(format!(
                    "unknown aggregate function {other}"
                )))
            }
        })
    }

    /// Feed one input value. For `COUNT(*)` the value is ignored.
    pub fn update(&mut self, value: &Value) -> EngineResult<()> {
        match self {
            Accumulator::CountStar(n) => *n += 1,
            Accumulator::Count { seen, distinct } => {
                if !value.is_null() {
                    match distinct {
                        Some(set) => {
                            if set.insert(value.group_key()) {
                                *seen += 1;
                            }
                        }
                        None => *seen += 1,
                    }
                }
            }
            Accumulator::Sum {
                acc,
                all_int,
                distinct,
            } => {
                if value.is_null() {
                    return Ok(());
                }
                if let Some(set) = distinct {
                    if !set.insert(value.group_key()) {
                        return Ok(());
                    }
                }
                let f = value.as_f64().ok_or_else(|| {
                    EngineError::typing(format!("SUM over non-numeric value {value}"))
                })?;
                if !matches!(value, Value::Integer(_)) {
                    *all_int = false;
                }
                *acc = Some(acc.unwrap_or(0.0) + f);
            }
            Accumulator::Avg { sum, n, distinct } => {
                if value.is_null() {
                    return Ok(());
                }
                if let Some(set) = distinct {
                    if !set.insert(value.group_key()) {
                        return Ok(());
                    }
                }
                let f = value.as_f64().ok_or_else(|| {
                    EngineError::typing(format!("AVG over non-numeric value {value}"))
                })?;
                *sum += f;
                *n += 1;
            }
            Accumulator::Min(best) => {
                if !value.is_null() {
                    let replace = match best {
                        None => true,
                        Some(b) => matches!(value.sql_cmp(b)?, Some(std::cmp::Ordering::Less)),
                    };
                    if replace {
                        *best = Some(value.clone());
                    }
                }
            }
            Accumulator::Max(best) => {
                if !value.is_null() {
                    let replace = match best {
                        None => true,
                        Some(b) => matches!(value.sql_cmp(b)?, Some(std::cmp::Ordering::Greater)),
                    };
                    if replace {
                        *best = Some(value.clone());
                    }
                }
            }
            Accumulator::GroupConcat { parts, .. } => {
                if !value.is_null() {
                    parts.push(value.to_string());
                }
            }
        }
        Ok(())
    }

    /// Produce the final aggregate value.
    pub fn finish(self) -> Value {
        match self {
            Accumulator::CountStar(n) => Value::Integer(n),
            Accumulator::Count { seen, .. } => Value::Integer(seen),
            Accumulator::Sum { acc, all_int, .. } => match acc {
                // SUM over empty / all-NULL input is NULL, per the standard.
                None => Value::Null,
                Some(f) if all_int => Value::Integer(f as i64),
                Some(f) => Value::Float(f),
            },
            Accumulator::Avg { sum, n, .. } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            Accumulator::Min(v) | Accumulator::Max(v) => v.unwrap_or(Value::Null),
            Accumulator::GroupConcat { parts, sep } => {
                if parts.is_empty() {
                    Value::Null
                } else {
                    Value::Text(parts.join(&sep))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(name: &str, distinct: bool, star: bool, inputs: &[Value]) -> Value {
        let mut acc = Accumulator::for_function(name, distinct, star).unwrap();
        for v in inputs {
            acc.update(v).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn count_star_counts_everything() {
        assert_eq!(
            run("COUNT", false, true, &[Value::Null, Value::Integer(1)]).as_i64(),
            Some(2)
        );
    }

    #[test]
    fn count_skips_nulls() {
        assert_eq!(
            run(
                "COUNT",
                false,
                false,
                &[Value::Null, Value::Integer(1), Value::Integer(1)]
            )
            .as_i64(),
            Some(2)
        );
    }

    #[test]
    fn count_distinct() {
        assert_eq!(
            run(
                "COUNT",
                true,
                false,
                &[
                    Value::Integer(1),
                    Value::Integer(1),
                    Value::Integer(2),
                    Value::Null
                ]
            )
            .as_i64(),
            Some(2)
        );
    }

    #[test]
    fn sum_stays_integer_for_ints() {
        assert!(matches!(
            run("SUM", false, false, &[Value::Integer(1), Value::Integer(2)]),
            Value::Integer(3)
        ));
        assert!(matches!(
            run("SUM", false, false, &[Value::Integer(1), Value::Float(2.5)]),
            Value::Float(f) if (f - 3.5).abs() < 1e-9
        ));
    }

    #[test]
    fn sum_of_nothing_is_null() {
        assert!(run("SUM", false, false, &[]).is_null());
        assert!(run("SUM", false, false, &[Value::Null]).is_null());
    }

    #[test]
    fn avg() {
        assert!(matches!(
            run("AVG", false, false, &[Value::Integer(1), Value::Integer(2), Value::Null]),
            Value::Float(f) if (f - 1.5).abs() < 1e-9
        ));
        assert!(run("AVG", false, false, &[]).is_null());
    }

    #[test]
    fn min_max() {
        assert_eq!(
            run(
                "MIN",
                false,
                false,
                &[Value::Integer(3), Value::Integer(1), Value::Null]
            )
            .as_i64(),
            Some(1)
        );
        assert_eq!(
            run("MAX", false, false, &["a".into(), "c".into(), "b".into()]),
            Value::Text("c".into())
        );
    }

    #[test]
    fn group_concat() {
        assert_eq!(
            run(
                "GROUP_CONCAT",
                false,
                false,
                &["a".into(), Value::Null, "b".into()]
            ),
            Value::Text("a,b".into())
        );
        assert!(run("GROUP_CONCAT", false, false, &[]).is_null());
    }

    #[test]
    fn sum_over_text_is_type_error() {
        let mut acc = Accumulator::for_function("SUM", false, false).unwrap();
        assert!(acc.update(&"x".into()).is_err());
    }

    #[test]
    fn unknown_aggregate() {
        assert!(Accumulator::for_function("MEDIAN", false, false).is_err());
    }
}
