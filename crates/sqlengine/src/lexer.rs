//! SQL tokenizer.
//!
//! Produces a flat vector of spanned tokens. Keywords are recognized
//! case-insensitively but identifiers preserve their original spelling
//! (the engine resolves names case-insensitively, see the binder).

use crate::error::{EngineError, EngineResult};
use std::fmt;

/// A lexical token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Unquoted identifier or keyword (kept verbatim; keyword detection is
    /// by case-insensitive comparison at parse time).
    Ident(String),
    /// Double-quoted identifier, quotes stripped.
    QuotedIdent(String),
    /// Single-quoted string literal, quotes stripped and '' unescaped.
    StringLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Floating point literal.
    FloatLit(f64),
    // Punctuation / operators.
    Comma,
    Dot,
    LParen,
    RParen,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Concat,
    Semicolon,
}

impl TokenKind {
    /// True when this token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::QuotedIdent(s) => write!(f, "\"{s}\""),
            TokenKind::StringLit(s) => write!(f, "'{s}'"),
            TokenKind::IntLit(i) => write!(f, "{i}"),
            TokenKind::FloatLit(x) => write!(f, "{x}"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Dot => f.write_str("."),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Percent => f.write_str("%"),
            TokenKind::Eq => f.write_str("="),
            TokenKind::NotEq => f.write_str("<>"),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::LtEq => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::GtEq => f.write_str(">="),
            TokenKind::Concat => f.write_str("||"),
            TokenKind::Semicolon => f.write_str(";"),
        }
    }
}

/// Tokenize `sql`, skipping whitespace and `--`/`/* */` comments.
pub fn tokenize(sql: &str) -> EngineResult<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::with_capacity(sql.len() / 4);
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(EngineError::lex("unterminated block comment", start));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(EngineError::lex("unterminated string literal", start));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Copy the (possibly multi-byte) char.
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(&sql[i..i + ch_len]);
                        i += ch_len;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::StringLit(s),
                    offset: start,
                });
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(EngineError::lex("unterminated quoted identifier", start));
                    }
                    if bytes[i] == b'"' {
                        i += 1;
                        break;
                    }
                    let ch_len = utf8_len(bytes[i]);
                    s.push_str(&sql[i..i + ch_len]);
                    i += ch_len;
                }
                tokens.push(Token {
                    kind: TokenKind::QuotedIdent(s),
                    offset: start,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && bytes[i + 1].is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &sql[start..i];
                let kind = if is_float {
                    TokenKind::FloatLit(text.parse().map_err(|_| {
                        EngineError::lex(format!("invalid float literal '{text}'"), start)
                    })?)
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => TokenKind::IntLit(v),
                        // Overflowing integers degrade to floats.
                        Err(_) => TokenKind::FloatLit(text.parse().map_err(|_| {
                            EngineError::lex(format!("invalid numeric literal '{text}'"), start)
                        })?),
                    }
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(sql[start..i].to_string()),
                    offset: start,
                });
            }
            _ => {
                let start = i;
                let kind = match c {
                    b',' => {
                        i += 1;
                        TokenKind::Comma
                    }
                    b'.' => {
                        i += 1;
                        TokenKind::Dot
                    }
                    b'(' => {
                        i += 1;
                        TokenKind::LParen
                    }
                    b')' => {
                        i += 1;
                        TokenKind::RParen
                    }
                    b'+' => {
                        i += 1;
                        TokenKind::Plus
                    }
                    b'-' => {
                        i += 1;
                        TokenKind::Minus
                    }
                    b'*' => {
                        i += 1;
                        TokenKind::Star
                    }
                    b'/' => {
                        i += 1;
                        TokenKind::Slash
                    }
                    b'%' => {
                        i += 1;
                        TokenKind::Percent
                    }
                    b';' => {
                        i += 1;
                        TokenKind::Semicolon
                    }
                    b'=' => {
                        i += 1;
                        // Accept both `=` and `==`.
                        if i < bytes.len() && bytes[i] == b'=' {
                            i += 1;
                        }
                        TokenKind::Eq
                    }
                    b'!' => {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                            i += 2;
                            TokenKind::NotEq
                        } else {
                            return Err(EngineError::lex("unexpected character '!'", start));
                        }
                    }
                    b'<' => {
                        i += 1;
                        if i < bytes.len() && bytes[i] == b'=' {
                            i += 1;
                            TokenKind::LtEq
                        } else if i < bytes.len() && bytes[i] == b'>' {
                            i += 1;
                            TokenKind::NotEq
                        } else {
                            TokenKind::Lt
                        }
                    }
                    b'>' => {
                        i += 1;
                        if i < bytes.len() && bytes[i] == b'=' {
                            i += 1;
                            TokenKind::GtEq
                        } else {
                            TokenKind::Gt
                        }
                    }
                    b'|' => {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                            i += 2;
                            TokenKind::Concat
                        } else {
                            return Err(EngineError::lex("unexpected character '|'", start));
                        }
                    }
                    other => {
                        return Err(EngineError::lex(
                            format!("unexpected character '{}'", other as char),
                            start,
                        ))
                    }
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
        }
    }
    Ok(tokens)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_select() {
        let ks = kinds("SELECT a, b FROM t WHERE a >= 10");
        assert_eq!(ks.len(), 10);
        assert!(ks[0].is_keyword("select"));
        assert_eq!(ks[1], TokenKind::Ident("a".into()));
        assert_eq!(ks[2], TokenKind::Comma);
        assert_eq!(ks[8], TokenKind::GtEq);
        assert_eq!(ks[9], TokenKind::IntLit(10));
    }

    #[test]
    fn string_escapes() {
        let ks = kinds("'it''s'");
        assert_eq!(ks, vec![TokenKind::StringLit("it's".into())]);
    }

    #[test]
    fn unterminated_string_is_lex_error() {
        let err = tokenize("SELECT 'oops").unwrap_err();
        assert!(err.is_syntactic());
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 1e3 1.5e-2"),
            vec![
                TokenKind::IntLit(1),
                TokenKind::FloatLit(2.5),
                TokenKind::FloatLit(1000.0),
                TokenKind::FloatLit(0.015),
            ]
        );
    }

    #[test]
    fn huge_integer_degrades_to_float() {
        let ks = kinds("99999999999999999999");
        assert!(matches!(ks[0], TokenKind::FloatLit(_)));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("SELECT 1 -- trailing\n, 2 /* block\nacross lines */ , 3");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::IntLit(1),
                TokenKind::Comma,
                TokenKind::IntLit(2),
                TokenKind::Comma,
                TokenKind::IntLit(3),
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(tokenize("SELECT 1 /* oops").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("<> != = == || <="),
            vec![
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Eq,
                TokenKind::Eq,
                TokenKind::Concat,
                TokenKind::LtEq,
            ]
        );
    }

    #[test]
    fn quoted_identifier() {
        assert_eq!(
            kinds("\"Weird Col\""),
            vec![TokenKind::QuotedIdent("Weird Col".into())]
        );
    }

    #[test]
    fn dollar_in_identifier() {
        // Warehouse-style column names like REV$Q2 tokenize as one ident.
        assert_eq!(kinds("REV$Q2"), vec![TokenKind::Ident("REV$Q2".into())]);
    }

    #[test]
    fn offsets_point_into_source() {
        let toks = tokenize("SELECT  x").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 8);
    }

    #[test]
    fn unexpected_char_reports_offset() {
        let err = tokenize("SELECT #").unwrap_err();
        match err {
            EngineError::Lex { offset, .. } => assert_eq!(offset, 7),
            other => panic!("expected lex error, got {other:?}"),
        }
    }

    #[test]
    fn unicode_in_string_literal() {
        assert_eq!(
            kinds("'café ☕'"),
            vec![TokenKind::StringLit("café ☕".into())]
        );
    }
}
