//! Property tests for the retrieval substrate.

use genedit_retrieval::{cosine, rerank_top_k, tokenize, Embedder, VectorIndex, Vocabulary};
use proptest::prelude::*;

fn embedder(corpus: &[String]) -> Embedder {
    Embedder::new(Vocabulary::fit(corpus.iter().map(|s| s.as_str())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Cosine similarity is symmetric and bounded.
    #[test]
    fn cosine_symmetric_and_bounded(
        a in prop::collection::vec(-10.0f32..10.0, 8),
        b in prop::collection::vec(-10.0f32..10.0, 8),
    ) {
        let ab = cosine(&a, &b);
        let ba = cosine(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-5);
        prop_assert!((-1.0001..=1.0001).contains(&ab), "{ab}");
    }

    /// Self-similarity is 1 for any non-degenerate text.
    #[test]
    fn self_similarity_is_one(text in "[a-z]{2,8}( [a-z]{2,8}){0,6}") {
        let e = embedder(std::slice::from_ref(&text));
        let v = e.embed(&text);
        if v.iter().any(|x| *x != 0.0) {
            prop_assert!((cosine(&v, &v) - 1.0).abs() < 1e-4);
        }
    }

    /// Embedding is deterministic and case/punctuation-insensitive where
    /// the tokenizer says so.
    #[test]
    fn embedding_deterministic_and_normalized(text in "[ -~]{0,60}") {
        let e = embedder(std::slice::from_ref(&text));
        let a = e.embed(&text);
        let b = e.embed(&text);
        prop_assert_eq!(&a, &b);
        let norm: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(norm == 0.0 || (norm - 1.0).abs() < 1e-4, "norm {norm}");
        // Case-insensitivity through the tokenizer.
        let upper = e.embed(&text.to_uppercase());
        if a.iter().any(|x| *x != 0.0) && text.chars().all(|c| !c.is_numeric()) {
            prop_assert!(cosine(&a, &upper) > 0.999, "case changed the embedding");
        }
    }

    /// Tokenization never yields empty tokens and is idempotent under
    /// re-joining.
    #[test]
    fn tokenize_well_formed(text in "[ -~]{0,80}") {
        let toks = tokenize(&text);
        prop_assert!(toks.iter().all(|t| !t.is_empty()));
        let rejoined = toks.join(" ");
        prop_assert_eq!(tokenize(&rejoined), toks);
    }

    /// The index returns at most k hits, sorted by score descending.
    #[test]
    fn index_topk_sorted(
        docs in prop::collection::vec("[a-z]{2,6}( [a-z]{2,6}){0,4}", 1..12),
        k in 0usize..15,
    ) {
        let e = embedder(&docs);
        let mut idx = VectorIndex::new();
        for (i, d) in docs.iter().enumerate() {
            idx.insert(i, e.embed(d));
        }
        let hits = idx.search(&e.embed(&docs[0]), k, f32::MIN);
        prop_assert!(hits.len() <= k.min(docs.len()));
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    /// rerank_top_k returns a sorted prefix of its input multiset.
    #[test]
    fn rerank_is_sorted_prefix(
        scores in prop::collection::vec(-1.0f32..1.0, 0..20),
        k in 0usize..25,
    ) {
        let items: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
        let out = rerank_top_k(items.clone(), k);
        prop_assert!(out.len() <= k.min(items.len()));
        for w in out.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        // Every output item came from the input.
        for (id, score) in &out {
            prop_assert!(items.iter().any(|(i, s)| i == id && s == score));
        }
    }

    /// Context expansion never moves the embedding outside the unit ball
    /// and keeps similarity to the original query above the similarity to
    /// the expansion alone (the query dominates, §3.1.1).
    #[test]
    fn expansion_keeps_query_dominant(
        q in "[a-z]{3,7}( [a-z]{3,7}){2,5}",
        ex in "[a-z]{3,7}( [a-z]{3,7}){2,5}",
    ) {
        let e = embedder(&[q.clone(), ex.clone()]);
        let vq = e.embed(&q);
        let vex = e.embed(&ex);
        let expanded = e.embed_expanded(&q, &[&ex]);
        let norm: f32 = expanded.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(norm == 0.0 || (norm - 1.0).abs() < 1e-4);
        if cosine(&vq, &vex) < 0.5 {
            // For genuinely different texts, the expanded query must stay
            // closer to the query than to the expansion.
            prop_assert!(
                cosine(&expanded, &vq) >= cosine(&expanded, &vex) - 1e-4,
                "expansion hijacked the query"
            );
        }
    }
}
