//! Text tokenization.

/// Lowercase alphanumeric tokenizer. Splits on any non-alphanumeric
/// character, keeps underscores inside identifiers together with their
/// word parts split out (so `ORG_NAME` yields `org` and `name` — matching
//  how analysts phrase questions about snake_case columns).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Word bigrams over a token stream, joined with `_`.
pub fn bigrams(tokens: &[String]) -> Vec<String> {
    tokens
        .windows(2)
        .map(|w| format!("{}_{}", w[0], w[1]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_case() {
        assert_eq!(
            tokenize("Show me QoQFP, please!"),
            vec!["show", "me", "qoqfp", "please"]
        );
    }

    #[test]
    fn snake_case_columns_split() {
        assert_eq!(tokenize("ORG_NAME"), vec!["org", "name"]);
    }

    #[test]
    fn numbers_kept() {
        assert_eq!(tokenize("Q2 2023"), vec!["q2", "2023"]);
    }

    #[test]
    fn empty_and_symbol_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! --- ???").is_empty());
    }

    #[test]
    fn bigram_windows() {
        let toks = tokenize("best and worst");
        assert_eq!(bigrams(&toks), vec!["best_and", "and_worst"]);
        assert!(bigrams(&tokenize("one")).is_empty());
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("Café MÜNCHEN"), vec!["café", "münchen"]);
    }
}
