//! Exact top-k vector search with stable, deterministic ordering.
//!
//! Two hot-path optimizations, both exact:
//!
//! * embeddings are **norm-precomputed on insert** — a search computes the
//!   query norm once and scores every candidate with a plain dot product
//!   instead of re-deriving both norms per candidate ([`crate::cosine`] remains
//!   available, unchanged, for external callers);
//! * selection is a **bounded binary heap** — O(n log k) partial selection
//!   instead of an O(n log n) full sort, preserving the documented stable
//!   tie-break on insertion order.

use crate::embed::Embedding;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// One search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Caller-supplied identifier of the stored item.
    pub id: usize,
    /// Cosine similarity of the stored item to the query.
    pub score: f32,
}

/// One stored item: the raw embedding plus its precomputed inverse L2
/// norm (0.0 for the zero vector, which makes its score 0 everywhere —
/// the same contract as [`crate::cosine`]).
#[derive(Debug, Clone)]
struct Item {
    id: usize,
    embedding: Embedding,
    inv_norm: f32,
}

/// A brute-force vector index. Exact and deterministic: ties are broken by
/// insertion order, which keeps retrieval runs reproducible.
#[derive(Debug, Clone, Default)]
pub struct VectorIndex {
    items: Vec<Item>,
}

impl VectorIndex {
    /// An empty index.
    pub fn new() -> VectorIndex {
        VectorIndex::default()
    }

    /// Number of stored items (counting duplicate ids separately).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Insert an item under a caller-chosen id (ids need not be unique;
    /// the caller owns id semantics). The embedding's norm is computed
    /// once here so searches never re-derive it.
    pub fn insert(&mut self, id: usize, embedding: Embedding) {
        let inv_norm = inverse_norm(&embedding);
        self.items.push(Item {
            id,
            embedding,
            inv_norm,
        });
    }

    /// Remove every item with the given id. Returns how many were removed.
    pub fn remove(&mut self, id: usize) -> usize {
        let before = self.items.len();
        self.items.retain(|item| item.id != id);
        before - self.items.len()
    }

    /// Exact top-k by cosine similarity; scores below `min_score` are
    /// dropped. Ordering: score descending, then insertion order.
    pub fn search(&self, query: &Embedding, k: usize, min_score: f32) -> Vec<SearchHit> {
        self.search_with_stats(query, k, min_score).0
    }

    /// Like [`VectorIndex::search`], also reporting how many candidates
    /// were scored and how many survived the top-k cut.
    pub fn search_with_stats(
        &self,
        query: &Embedding,
        k: usize,
        min_score: f32,
    ) -> (Vec<SearchHit>, RerankStats) {
        let scored_count = self.items.len();
        let query_inv = inverse_norm(query);
        let top = top_k_by_score(
            self.items.iter().enumerate().filter_map(|(pos, item)| {
                let score = dot(query, &item.embedding) * query_inv * item.inv_norm;
                (score >= min_score).then_some((pos, score))
            }),
            k,
        );
        let hits: Vec<SearchHit> = top
            .into_iter()
            .map(|(pos, score)| SearchHit {
                id: self.items[pos].id,
                score,
            })
            .collect();
        let stats = RerankStats {
            scored: scored_count,
            kept: hits.len(),
        };
        (hits, stats)
    }
}

/// `1/‖v‖`, or 0.0 for the zero vector (scores collapse to 0, matching
/// [`crate::cosine`]'s degenerate-input contract).
fn inverse_norm(v: &[f32]) -> f32 {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        1.0 / norm
    } else {
        0.0
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// A scored candidate ordered for selection: higher score wins, ties
/// break toward the earlier insertion position. `Ord` treats incomparable
/// scores (NaN) as equal, matching the previous full-sort semantics.
struct Ranked {
    score: f32,
    pos: usize,
}

impl PartialEq for Ranked {
    fn eq(&self, other: &Ranked) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Ranked {}
impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Ranked) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ranked {
    fn cmp(&self, other: &Ranked) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            // Lower position outranks: reverse the position comparison.
            .then_with(|| other.pos.cmp(&self.pos))
    }
}

/// Bounded partial selection: the top `k` of `candidates` by score
/// descending with the stable insertion-order tie-break, in O(n log k).
/// A min-heap of the best `k` seen so far; a candidate only displaces the
/// heap's worst when it strictly outranks it, so equal-score candidates
/// keep first-come-first-kept semantics.
fn top_k_by_score(candidates: impl Iterator<Item = (usize, f32)>, k: usize) -> Vec<(usize, f32)> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Reverse<Ranked>> = BinaryHeap::with_capacity(k + 1);
    for (pos, score) in candidates {
        let cand = Ranked { score, pos };
        if heap.len() < k {
            heap.push(Reverse(cand));
        } else if let Some(Reverse(worst)) = heap.peek() {
            if cand > *worst {
                heap.pop();
                heap.push(Reverse(cand));
            }
        }
    }
    let mut kept: Vec<Ranked> = heap.into_iter().map(|Reverse(r)| r).collect();
    kept.sort_by(|a, b| b.cmp(a));
    kept.into_iter().map(|r| (r.pos, r.score)).collect()
}

/// How much work one re-rank did: candidates scored vs. top-k survivors.
/// The ratio is the context-compression factor each compounding operator
/// buys (§3.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RerankStats {
    /// Candidates that received a similarity score.
    pub scored: usize,
    /// Candidates kept after the top-k / threshold cut.
    pub kept: usize,
}

impl RerankStats {
    /// Record this re-rank into a metrics registry under
    /// `retrieval.<stage>.scored` / `.kept` counters and a
    /// `retrieval.<stage>.kept_ratio` histogram.
    pub fn record(&self, metrics: &genedit_telemetry::MetricsRegistry, stage: &str) {
        metrics.incr(&format!("retrieval.{stage}.scored"), self.scored as u64);
        metrics.incr(&format!("retrieval.{stage}.kept"), self.kept as u64);
        if self.scored > 0 {
            metrics.observe(
                &format!("retrieval.{stage}.kept_ratio"),
                self.kept as f64 / self.scored as f64,
            );
        }
    }
}

/// Re-rank arbitrary scored candidates: sort by score descending with a
/// stable tie-break on the original order, then truncate to `k`.
pub fn rerank_top_k<T>(candidates: Vec<(T, f32)>, k: usize) -> Vec<(T, f32)> {
    rerank_top_k_with_stats(candidates, k).0
}

/// Like [`rerank_top_k`], also reporting scored/kept counts. Selection is
/// the same bounded-heap partial sort as [`VectorIndex::search`]:
/// O(n log k), score descending, stable tie-break on the original order.
pub fn rerank_top_k_with_stats<T>(
    candidates: Vec<(T, f32)>,
    k: usize,
) -> (Vec<(T, f32)>, RerankStats) {
    let scored = candidates.len();
    let top = top_k_by_score(
        candidates
            .iter()
            .enumerate()
            .map(|(pos, (_, score))| (pos, *score)),
        k,
    );
    let mut slots: Vec<Option<(T, f32)>> = candidates.into_iter().map(Some).collect();
    let kept: Vec<(T, f32)> = top
        .into_iter()
        .filter_map(|(pos, _)| slots[pos].take())
        .collect();
    let stats = RerankStats {
        scored,
        kept: kept.len(),
    };
    (kept, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::{Embedder, Vocabulary};

    fn make_index(docs: &[&str]) -> (VectorIndex, Embedder) {
        let embedder = Embedder::new(Vocabulary::fit(docs.iter().copied()));
        let mut idx = VectorIndex::new();
        for (i, d) in docs.iter().enumerate() {
            idx.insert(i, embedder.embed(d));
        }
        (idx, embedder)
    }

    #[test]
    fn top_k_returns_most_similar_first() {
        let docs = [
            "revenue per viewer calculation",
            "tv viewership by region",
            "player transfer fees",
        ];
        let (idx, emb) = make_index(&docs);
        let hits = idx.search(&emb.embed("how to calculate revenue per viewer"), 2, 0.0);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 0);
        assert!(hits[0].score >= hits[1].score);
    }

    #[test]
    fn k_bounds_results() {
        let docs = ["a b", "a c", "a d", "a e"];
        let (idx, emb) = make_index(&docs);
        assert_eq!(idx.search(&emb.embed("a"), 2, 0.0).len(), 2);
        assert_eq!(idx.search(&emb.embed("a"), 100, 0.0).len(), 4);
        assert!(idx.search(&emb.embed("a"), 0, 0.0).is_empty());
    }

    #[test]
    fn min_score_filters() {
        let docs = ["quarterly revenue", "zebra habitats"];
        let (idx, emb) = make_index(&docs);
        let hits = idx.search(&emb.embed("quarterly revenue"), 10, 0.5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut idx = VectorIndex::new();
        idx.insert(7, vec![1.0, 0.0]);
        idx.insert(3, vec![1.0, 0.0]);
        let hits = idx.search(&vec![1.0, 0.0], 2, 0.0);
        assert_eq!(hits[0].id, 7);
        assert_eq!(hits[1].id, 3);
    }

    #[test]
    fn remove_by_id() {
        let mut idx = VectorIndex::new();
        idx.insert(1, vec![1.0]);
        idx.insert(2, vec![0.5]);
        idx.insert(1, vec![0.1]);
        assert_eq!(idx.remove(1), 2);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn search_stats_report_scored_and_kept() {
        let docs = ["a b", "a c", "a d", "a e"];
        let (idx, emb) = make_index(&docs);
        let (hits, stats) = idx.search_with_stats(&emb.embed("a"), 2, 0.0);
        assert_eq!(hits.len(), 2);
        assert_eq!(stats, RerankStats { scored: 4, kept: 2 });
        // The threshold cut also shows up in `kept`.
        let (_, stats) = idx.search_with_stats(&emb.embed("a b"), 10, 0.99);
        assert_eq!(stats.scored, 4);
        assert!(stats.kept < 4);
    }

    #[test]
    fn rerank_stats_record_into_registry() {
        let (_, stats) = rerank_top_k_with_stats(vec![("a", 0.1), ("b", 0.9), ("c", 0.5)], 2);
        assert_eq!(stats, RerankStats { scored: 3, kept: 2 });
        let metrics = genedit_telemetry::MetricsRegistry::new();
        stats.record(&metrics, "examples");
        stats.record(&metrics, "examples");
        assert_eq!(metrics.counter("retrieval.examples.scored"), 6);
        assert_eq!(metrics.counter("retrieval.examples.kept"), 4);
        let snap = metrics.snapshot();
        let ratio = &snap.histograms["retrieval.examples.kept_ratio"];
        assert_eq!(ratio.count, 2);
        assert!((ratio.mean - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn prenormalized_search_matches_cosine() {
        use crate::embed::cosine;
        let docs = [
            "quarterly revenue by organization",
            "tv viewership by region and quarter",
            "player transfer fees in europe",
            "ownership flag for our organizations",
        ];
        let (idx, emb) = make_index(&docs);
        let q = emb.embed("revenue by quarter for our organizations");
        let hits = idx.search(&q, docs.len(), f32::MIN);
        assert_eq!(hits.len(), docs.len());
        for hit in hits {
            let reference = cosine(&q, &emb.embed(docs[hit.id]));
            assert!(
                (hit.score - reference).abs() < 1e-5,
                "dot-product score {} diverged from cosine {} for doc {}",
                hit.score,
                reference,
                hit.id
            );
        }
    }

    #[test]
    fn heap_selection_matches_full_sort() {
        // Pseudo-random scores (LCG) with deliberate duplicates: the
        // bounded-heap selection must agree with a full stable sort for
        // every k, including the tie-break on insertion order.
        let mut state = 0x2545f4914f6cdd1du64;
        let scores: Vec<f32> = (0..200)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) % 32) as f32 / 31.0
            })
            .collect();
        let items: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
        let mut reference: Vec<(usize, (usize, f32))> = items.iter().copied().enumerate().collect();
        reference.sort_by(|(pa, (_, sa)), (pb, (_, sb))| {
            sb.partial_cmp(sa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(pa.cmp(pb))
        });
        for k in [0, 1, 3, 17, 199, 200, 500] {
            let expected: Vec<(usize, f32)> = reference.iter().take(k).map(|(_, c)| *c).collect();
            let got = rerank_top_k(items.clone(), k);
            assert_eq!(got, expected, "k={k}");
        }
    }

    #[test]
    fn rerank_is_stable() {
        let ranked = rerank_top_k(vec![("a", 0.5), ("b", 0.9), ("c", 0.5)], 3);
        assert_eq!(
            ranked.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec!["b", "a", "c"]
        );
        let truncated = rerank_top_k(vec![("a", 0.5), ("b", 0.9), ("c", 0.5)], 1);
        assert_eq!(truncated.len(), 1);
        assert_eq!(truncated[0].0, "b");
    }
}
