//! Exact top-k vector search with stable, deterministic ordering.

use crate::embed::{cosine, Embedding};

/// One search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Caller-supplied identifier of the stored item.
    pub id: usize,
    pub score: f32,
}

/// A brute-force vector index. Exact and deterministic: ties are broken by
/// insertion order, which keeps retrieval runs reproducible.
#[derive(Debug, Clone, Default)]
pub struct VectorIndex {
    items: Vec<(usize, Embedding)>,
}

impl VectorIndex {
    pub fn new() -> VectorIndex {
        VectorIndex::default()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Insert an item under a caller-chosen id (ids need not be unique;
    /// the caller owns id semantics).
    pub fn insert(&mut self, id: usize, embedding: Embedding) {
        self.items.push((id, embedding));
    }

    /// Remove every item with the given id. Returns how many were removed.
    pub fn remove(&mut self, id: usize) -> usize {
        let before = self.items.len();
        self.items.retain(|(i, _)| *i != id);
        before - self.items.len()
    }

    /// Exact top-k by cosine similarity; scores below `min_score` are
    /// dropped. Ordering: score descending, then insertion order.
    pub fn search(&self, query: &Embedding, k: usize, min_score: f32) -> Vec<SearchHit> {
        self.search_with_stats(query, k, min_score).0
    }

    /// Like [`VectorIndex::search`], also reporting how many candidates
    /// were scored and how many survived the top-k cut.
    pub fn search_with_stats(
        &self,
        query: &Embedding,
        k: usize,
        min_score: f32,
    ) -> (Vec<SearchHit>, RerankStats) {
        let scored_count = self.items.len();
        let mut scored: Vec<(usize, SearchHit)> = self
            .items
            .iter()
            .enumerate()
            .map(|(pos, (id, emb))| {
                (
                    pos,
                    SearchHit {
                        id: *id,
                        score: cosine(query, emb),
                    },
                )
            })
            .filter(|(_, h)| h.score >= min_score)
            .collect();
        scored.sort_by(|(pa, a), (pb, b)| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(pa.cmp(pb))
        });
        let hits: Vec<SearchHit> = scored.into_iter().take(k).map(|(_, h)| h).collect();
        let stats = RerankStats {
            scored: scored_count,
            kept: hits.len(),
        };
        (hits, stats)
    }
}

/// How much work one re-rank did: candidates scored vs. top-k survivors.
/// The ratio is the context-compression factor each compounding operator
/// buys (§3.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RerankStats {
    /// Candidates that received a similarity score.
    pub scored: usize,
    /// Candidates kept after the top-k / threshold cut.
    pub kept: usize,
}

impl RerankStats {
    /// Record this re-rank into a metrics registry under
    /// `retrieval.<stage>.scored` / `.kept` counters and a
    /// `retrieval.<stage>.kept_ratio` histogram.
    pub fn record(&self, metrics: &genedit_telemetry::MetricsRegistry, stage: &str) {
        metrics.incr(&format!("retrieval.{stage}.scored"), self.scored as u64);
        metrics.incr(&format!("retrieval.{stage}.kept"), self.kept as u64);
        if self.scored > 0 {
            metrics.observe(
                &format!("retrieval.{stage}.kept_ratio"),
                self.kept as f64 / self.scored as f64,
            );
        }
    }
}

/// Re-rank arbitrary scored candidates: sort by score descending with a
/// stable tie-break on the original order, then truncate to `k`.
pub fn rerank_top_k<T>(candidates: Vec<(T, f32)>, k: usize) -> Vec<(T, f32)> {
    rerank_top_k_with_stats(candidates, k).0
}

/// Like [`rerank_top_k`], also reporting scored/kept counts.
pub fn rerank_top_k_with_stats<T>(
    mut candidates: Vec<(T, f32)>,
    k: usize,
) -> (Vec<(T, f32)>, RerankStats) {
    let scored = candidates.len();
    let mut indexed: Vec<(usize, (T, f32))> = candidates.drain(..).enumerate().collect();
    indexed.sort_by(|(pa, (_, sa)), (pb, (_, sb))| {
        sb.partial_cmp(sa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(pa.cmp(pb))
    });
    let kept: Vec<(T, f32)> = indexed.into_iter().take(k).map(|(_, c)| c).collect();
    let stats = RerankStats {
        scored,
        kept: kept.len(),
    };
    (kept, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::{Embedder, Vocabulary};

    fn make_index(docs: &[&str]) -> (VectorIndex, Embedder) {
        let embedder = Embedder::new(Vocabulary::fit(docs.iter().copied()));
        let mut idx = VectorIndex::new();
        for (i, d) in docs.iter().enumerate() {
            idx.insert(i, embedder.embed(d));
        }
        (idx, embedder)
    }

    #[test]
    fn top_k_returns_most_similar_first() {
        let docs = [
            "revenue per viewer calculation",
            "tv viewership by region",
            "player transfer fees",
        ];
        let (idx, emb) = make_index(&docs);
        let hits = idx.search(&emb.embed("how to calculate revenue per viewer"), 2, 0.0);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 0);
        assert!(hits[0].score >= hits[1].score);
    }

    #[test]
    fn k_bounds_results() {
        let docs = ["a b", "a c", "a d", "a e"];
        let (idx, emb) = make_index(&docs);
        assert_eq!(idx.search(&emb.embed("a"), 2, 0.0).len(), 2);
        assert_eq!(idx.search(&emb.embed("a"), 100, 0.0).len(), 4);
        assert!(idx.search(&emb.embed("a"), 0, 0.0).is_empty());
    }

    #[test]
    fn min_score_filters() {
        let docs = ["quarterly revenue", "zebra habitats"];
        let (idx, emb) = make_index(&docs);
        let hits = idx.search(&emb.embed("quarterly revenue"), 10, 0.5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut idx = VectorIndex::new();
        idx.insert(7, vec![1.0, 0.0]);
        idx.insert(3, vec![1.0, 0.0]);
        let hits = idx.search(&vec![1.0, 0.0], 2, 0.0);
        assert_eq!(hits[0].id, 7);
        assert_eq!(hits[1].id, 3);
    }

    #[test]
    fn remove_by_id() {
        let mut idx = VectorIndex::new();
        idx.insert(1, vec![1.0]);
        idx.insert(2, vec![0.5]);
        idx.insert(1, vec![0.1]);
        assert_eq!(idx.remove(1), 2);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn search_stats_report_scored_and_kept() {
        let docs = ["a b", "a c", "a d", "a e"];
        let (idx, emb) = make_index(&docs);
        let (hits, stats) = idx.search_with_stats(&emb.embed("a"), 2, 0.0);
        assert_eq!(hits.len(), 2);
        assert_eq!(stats, RerankStats { scored: 4, kept: 2 });
        // The threshold cut also shows up in `kept`.
        let (_, stats) = idx.search_with_stats(&emb.embed("a b"), 10, 0.99);
        assert_eq!(stats.scored, 4);
        assert!(stats.kept < 4);
    }

    #[test]
    fn rerank_stats_record_into_registry() {
        let (_, stats) = rerank_top_k_with_stats(vec![("a", 0.1), ("b", 0.9), ("c", 0.5)], 2);
        assert_eq!(stats, RerankStats { scored: 3, kept: 2 });
        let metrics = genedit_telemetry::MetricsRegistry::new();
        stats.record(&metrics, "examples");
        stats.record(&metrics, "examples");
        assert_eq!(metrics.counter("retrieval.examples.scored"), 6);
        assert_eq!(metrics.counter("retrieval.examples.kept"), 4);
        let snap = metrics.snapshot();
        let ratio = &snap.histograms["retrieval.examples.kept_ratio"];
        assert_eq!(ratio.count, 2);
        assert!((ratio.mean - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn rerank_is_stable() {
        let ranked = rerank_top_k(vec![("a", 0.5), ("b", 0.9), ("c", 0.5)], 3);
        assert_eq!(
            ranked.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec!["b", "a", "c"]
        );
        let truncated = rerank_top_k(vec![("a", 0.5), ("b", 0.9), ("c", 0.5)], 1);
        assert_eq!(truncated.len(), 1);
        assert_eq!(truncated[0].0, "b");
    }
}
