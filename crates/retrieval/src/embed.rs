//! Hashed TF-IDF embeddings and cosine similarity.

use crate::token::{bigrams, tokenize};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Default embedding dimension. Large enough that hash collisions are rare
/// for the vocabulary sizes of a knowledge set, small enough that cosine
/// over a few thousand vectors is instant.
pub const DEFAULT_DIM: usize = 512;

/// A dense embedding vector (L2-normalized on construction).
pub type Embedding = Vec<f32>;

/// Document-frequency statistics used for IDF weighting. Fit once over the
/// knowledge set corpus during pre-processing; queries reuse the same
/// weights at inference.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    doc_count: usize,
    doc_freq: HashMap<String, usize>,
}

impl Vocabulary {
    /// An empty vocabulary (no documents seen).
    pub fn new() -> Vocabulary {
        Vocabulary::default()
    }

    /// Fit over a corpus of documents.
    pub fn fit<'a>(docs: impl IntoIterator<Item = &'a str>) -> Vocabulary {
        let mut v = Vocabulary::new();
        for d in docs {
            v.add_document(d);
        }
        v
    }

    /// Incorporate one document's terms into the document-frequency table.
    pub fn add_document(&mut self, text: &str) {
        self.doc_count += 1;
        let toks = tokenize(text);
        let mut seen = std::collections::HashSet::new();
        for t in toks.iter().chain(bigrams(&toks).iter()) {
            if seen.insert(t.clone()) {
                *self.doc_freq.entry(t.clone()).or_insert(0) += 1;
            }
        }
    }

    /// Number of documents folded in via [`Vocabulary::add_document`].
    pub fn doc_count(&self) -> usize {
        self.doc_count
    }

    /// Smoothed inverse document frequency. Unknown terms get the maximum
    /// weight — a rare domain acronym like "qoqfp" should dominate.
    pub fn idf(&self, term: &str) -> f32 {
        let df = self.doc_freq.get(term).copied().unwrap_or(0);
        let n = self.doc_count.max(1);
        (((n + 1) as f32) / ((df + 1) as f32)).ln() + 1.0
    }
}

/// TF-IDF hashed embedder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedder {
    dim: usize,
    vocabulary: Vocabulary,
}

impl Embedder {
    /// Embedder at the default dimension ([`DEFAULT_DIM`]).
    pub fn new(vocabulary: Vocabulary) -> Embedder {
        Embedder {
            dim: DEFAULT_DIM,
            vocabulary,
        }
    }

    /// Embedder at an explicit dimension (must be positive). Smaller
    /// dimensions trade collision rate for speed.
    pub fn with_dim(vocabulary: Vocabulary, dim: usize) -> Embedder {
        assert!(dim > 0, "embedding dimension must be positive");
        Embedder { dim, vocabulary }
    }

    /// The embedding dimension every produced vector has.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The document-frequency statistics backing IDF weighting.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// Embed a text into an L2-normalized vector. The zero text maps to the
    /// zero vector (cosine with anything = 0).
    pub fn embed(&self, text: &str) -> Embedding {
        let mut vec = vec![0f32; self.dim];
        let toks = tokenize(text);
        let mut counts: HashMap<String, usize> = HashMap::new();
        for t in toks.iter().chain(bigrams(&toks).iter()) {
            *counts.entry(t.clone()).or_insert(0) += 1;
        }
        for (term, count) in &counts {
            let tf = 1.0 + (*count as f32).ln();
            let weight = tf * self.vocabulary.idf(term);
            let h = fnv1a(term.as_bytes());
            let slot = (h % self.dim as u64) as usize;
            // Signed hashing halves the collision bias.
            let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            vec[slot] += sign * weight;
        }
        normalize(&mut vec);
        vec
    }

    /// Embed a query expanded with extra context texts — the paper's
    /// *context expansion* (§3.1.1): the expansion terms join the query
    /// terms but at reduced weight so the original query still dominates.
    pub fn embed_expanded(&self, query: &str, expansions: &[&str]) -> Embedding {
        let mut base = self.embed(query);
        if expansions.is_empty() {
            return base;
        }
        let scale = 0.5 / expansions.len() as f32;
        for ex in expansions {
            let e = self.embed(ex);
            for (b, x) in base.iter_mut().zip(e.iter()) {
                *b += scale * x;
            }
        }
        normalize(&mut base);
        base
    }
}

fn normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Cosine similarity. Inputs need not be normalized.
///
/// Contract: both slices must have the same length. A mismatch is a
/// caller bug and trips a `debug_assert!` in development builds; release
/// builds (the serving path, where the workspace's no-panic posture
/// applies) return 0.0 — "no similarity" — instead of aborting a worker
/// thread mid-request.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    if a.len() != b.len() {
        return 0.0;
    }
    let mut dot = 0f32;
    let mut na = 0f32;
    let mut nb = 0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// FNV-1a 64-bit hash — stable across platforms and runs, unlike
/// `DefaultHasher`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embedder(corpus: &[&str]) -> Embedder {
        Embedder::new(Vocabulary::fit(corpus.iter().copied()))
    }

    #[test]
    fn embedding_is_deterministic() {
        let e = embedder(&["revenue per viewer", "quarterly revenue"]);
        assert_eq!(e.embed("revenue for Q2"), e.embed("revenue for Q2"));
    }

    #[test]
    fn identical_text_has_cosine_one() {
        let e = embedder(&["a b c"]);
        let v = e.embed("revenue per viewer in Canada");
        assert!((cosine(&v, &v) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn related_text_beats_unrelated() {
        let e = embedder(&[
            "quarterly financial performance of sports organizations",
            "tv viewership numbers by country",
            "player roster and injuries",
        ]);
        let q = e.embed("show financial performance for Q2");
        let related = e.embed("quarterly financial performance of sports organizations");
        let unrelated = e.embed("player roster and injuries");
        assert!(cosine(&q, &related) > cosine(&q, &unrelated));
    }

    #[test]
    fn rare_terms_dominate() {
        // "qoqfp" appears in one doc; "revenue" in many. A query with both
        // should be closer to the qoqfp doc.
        let corpus = [
            "qoqfp quarter over quarter financial performance revenue",
            "revenue by country",
            "revenue by quarter",
            "revenue by organization",
        ];
        let e = embedder(&corpus);
        let q = e.embed("qoqfp revenue");
        let qoqfp_doc = e.embed(corpus[0]);
        let revenue_doc = e.embed(corpus[1]);
        assert!(cosine(&q, &qoqfp_doc) > cosine(&q, &revenue_doc));
    }

    #[test]
    fn empty_text_embeds_to_zero() {
        let e = embedder(&["a"]);
        let v = e.embed("");
        assert!(v.iter().all(|x| *x == 0.0));
        assert_eq!(cosine(&v, &e.embed("something")), 0.0);
    }

    #[test]
    fn context_expansion_moves_query_toward_expansion() {
        let e = embedder(&[
            "ownership flag our organizations coc",
            "viewership in canada",
            "revenue in mexico",
        ]);
        let target = e.embed("ownership flag our organizations coc");
        let plain = e.embed("best organizations in canada");
        let expanded = e.embed_expanded(
            "best organizations in canada",
            &["ownership flag our organizations coc"],
        );
        assert!(cosine(&expanded, &target) > cosine(&plain, &target));
    }

    #[test]
    fn expansion_keeps_original_dominant() {
        let e = embedder(&["x", "y"]);
        let plain = e.embed("quarterly revenue growth canada");
        let expanded = e.embed_expanded(
            "quarterly revenue growth canada",
            &["unrelated words entirely"],
        );
        // Still much closer to itself than to the expansion text.
        assert!(cosine(&expanded, &plain) > 0.7);
    }

    #[test]
    fn embeddings_are_normalized() {
        let e = embedder(&["a b"]);
        let v = e.embed("hello world bigram test");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn idf_unknown_term_is_max() {
        let v = Vocabulary::fit(["common common", "common"]);
        assert!(v.idf("neverseen") > v.idf("common"));
    }

    /// Regression test for the no-panic serving contract: in development
    /// builds a dimension mismatch trips the `debug_assert!`; in release
    /// builds it must return 0.0 rather than abort a serving worker.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "dimension mismatch")]
    fn cosine_dimension_mismatch_asserts_in_debug() {
        cosine(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn cosine_dimension_mismatch_is_zero_in_release() {
        assert_eq!(cosine(&[1.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine(&[], &[1.0]), 0.0);
    }
}
