//! # genedit-retrieval — deterministic embedding & retrieval substrate
//!
//! The GenEdit paper re-ranks retrieved knowledge "based on a cosine
//! similarity score with the reformulated query" (§3.1.1), using a neural
//! embedding model. This crate substitutes a deterministic, dependency-free
//! embedding: TF-IDF-weighted hashed bag-of-words with word bigrams,
//! projected into a fixed-dimension vector. What the pipeline needs from
//! embeddings — *relative* similarity that improves when the query text is
//! expanded with the text of already-selected knowledge (context expansion)
//! — is fully preserved.
//!
//! Components:
//! * [`tokenize`] — lowercasing alphanumeric tokenizer,
//! * [`Vocabulary`] — document-frequency statistics for IDF weighting,
//! * [`Embedder`] — hashed TF-IDF embedding into `R^dim`,
//! * [`cosine`] — cosine similarity,
//! * [`VectorIndex`] — brute-force exact top-k index with stable ordering.

pub mod embed;
pub mod index;
pub mod token;

pub use embed::{cosine, Embedder, Embedding, Vocabulary};
pub use index::{rerank_top_k, rerank_top_k_with_stats, RerankStats, SearchHit, VectorIndex};
pub use token::tokenize;
