//! # genedit-retrieval — deterministic embedding & retrieval substrate
//!
//! The GenEdit paper re-ranks retrieved knowledge "based on a cosine
//! similarity score with the reformulated query" (§3.1.1), using a neural
//! embedding model. This crate substitutes a deterministic, dependency-free
//! embedding: TF-IDF-weighted hashed bag-of-words with word bigrams,
//! projected into a fixed-dimension vector. What the pipeline needs from
//! embeddings — *relative* similarity that improves when the query text is
//! expanded with the text of already-selected knowledge (context expansion)
//! — is fully preserved.
//!
//! Components:
//! * [`tokenize`] — lowercasing alphanumeric tokenizer,
//! * [`Vocabulary`] — document-frequency statistics for IDF weighting,
//! * [`Embedder`] — hashed TF-IDF embedding into `R^dim`,
//! * [`cosine`] — cosine similarity,
//! * [`VectorIndex`] — brute-force exact top-k index with stable ordering.
//!
//! ```
//! use genedit_retrieval::{Embedder, Vocabulary, VectorIndex};
//!
//! let docs = ["quarterly revenue by team", "viewership numbers by country"];
//! let embedder = Embedder::new(Vocabulary::fit(docs.iter().copied()));
//!
//! let mut index = VectorIndex::new();
//! for (i, doc) in docs.iter().enumerate() {
//!     index.insert(i, embedder.embed(doc));
//! }
//!
//! let hits = index.search(&embedder.embed("revenue per quarter"), 1, 0.0);
//! assert_eq!(hits[0].id, 0); // the revenue doc wins on cosine similarity
//! ```

#![warn(missing_docs)]

pub mod embed;
pub mod index;
pub mod token;

pub use embed::{cosine, Embedder, Embedding, Vocabulary};
pub use index::{rerank_top_k, rerank_top_k_with_stats, RerankStats, SearchHit, VectorIndex};
pub use token::tokenize;
