//! # genedit-core — the GenEdit pipeline
//!
//! The paper's primary contribution: compounding retrieval operators,
//! CoT planning with pseudo-SQL, plan-guided generation with
//! self-correction, the Table-1 baseline set, the Table-2 ablations, and
//! (in [`feedback`]) the continuous-improvement loop.
//!
//! Model calls are fallible ([`genedit_llm::ModelError`]); the pipeline
//! degrades per operator instead of failing a generation, and non-test
//! library paths are panic-free (enforced by the clippy lints below).
//!
//! ```
//! use genedit_bird::{DomainBundle, SPORTS};
//! use genedit_core::{GenEditPipeline, KnowledgeIndex};
//! use genedit_llm::{OracleModel, TaskRegistry};
//!
//! // An enterprise domain: database + logs + documents + tasks.
//! let bundle = DomainBundle::build(&SPORTS, (4, 2, 1), 42);
//! let index = KnowledgeIndex::build(bundle.build_knowledge());
//!
//! // The deterministic oracle stands in for the LLM.
//! let mut registry = TaskRegistry::new();
//! for t in &bundle.tasks {
//!     registry.register(t.clone());
//! }
//! let pipeline = GenEditPipeline::new(OracleModel::new(registry));
//!
//! let task = &bundle.tasks[0];
//! let result = pipeline.generate(&task.question, &index, &bundle.db, &[]);
//! assert!(result.sql.is_some());
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod baselines;
pub mod cancel;
mod compounding_tests;
pub mod config;
pub mod feedback;
pub mod harness;
pub mod index;
pub mod pipeline;
pub mod regression;
pub mod sme;

pub use baselines::{
    paper_baselines, run_baseline, BaselineResult, ExampleStyle, MethodProfile, PlanStyle,
    SchemaStyle,
};
pub use cancel::CancelToken;
pub use config::{Ablation, CandidateSelection, PipelineConfig};
pub use feedback::{
    expand_feedback, generate_edits, generate_edits_traced, generate_edits_with_id,
    generate_targets, plan_edits, FeedbackSession, FeedbackTarget, RecommendedEdit, TargetKind,
};
pub use harness::Harness;
pub use index::KnowledgeIndex;
pub use pipeline::{GenEditPipeline, GenerateOptions, GenerationResult};
pub use regression::{
    run_regression, submit_edits, submit_edits_durable, submit_edits_durable_from, GoldenQuery,
    RegressionOutcome, SubmissionResult, SubmitError,
};
