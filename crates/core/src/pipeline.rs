//! The GenEdit SQL-generation pipeline (§2.1, §3).
//!
//! Operators, in order (numbers match Fig. 1):
//! 1. query reformulation into canonical form,
//! 2. intent classification,
//! 3. example selection (intent retrieval + cosine re-rank),
//! 4. instruction selection (re-ranked by the query *expanded with the
//!    selected examples* — context expansion, §3.1.1),
//! 5. schema linking (model call + re-rank filter),
//!    then CoT plan generation and plan-guided SQL generation with up to
//!    `k` self-correction retries on syntactic/semantic errors.

use crate::cancel::CancelToken;
use crate::config::{CandidateSelection, PipelineConfig};
use crate::index::KnowledgeIndex;
use genedit_knowledge::{ExampleId, FragmentKind, InstructionId, RetrievalStage};
use genedit_llm::{
    CompletionRequest, CompletionResponse, LanguageModel, ModelError, Plan, Prompt, PromptExample,
    PromptInstruction, PromptSchemaElement, ResilienceState, ResilientModel, SystemClock, TaskKind,
    TracedModel,
};
use genedit_retrieval::{cosine, Embedder, Embedding};
use genedit_sql::catalog::Database;
use genedit_sql::exec::execute_sql_timed;
use genedit_telemetry::{names, MetricsRegistry, Trace, Tracer};
use std::sync::Arc;

/// Everything produced by one generation run. The feedback module consumes
/// the used-knowledge lists (operator "Generate Targets", §4.1).
#[derive(Debug, Clone)]
pub struct GenerationResult {
    /// Final SQL (present even when it never validated — the caller
    /// decides what to do with a failing query).
    pub sql: Option<String>,
    /// Generation rounds used (1 = no retry needed).
    pub attempts: usize,
    /// Whether the final SQL parsed and executed.
    pub validated: bool,
    /// Whether generation was cut short by a [`CancelToken`] (explicit
    /// cancellation or deadline expiry). A cancelled result carries
    /// whatever operator outputs were already computed, no SQL, and a
    /// warning naming the stage it stopped after.
    pub cancelled: bool,
    /// The chain-of-thought plan the SQL was generated from, if any.
    pub plan: Option<Plan>,
    /// The reformulated question (operator 1 output).
    pub reformulated: String,
    /// Classified user intents (operator 2 output).
    pub intents: Vec<String>,
    /// Validation errors from failed self-correction attempts.
    pub errors: Vec<String>,
    /// Ids of the example fragments that entered the prompt.
    pub used_examples: Vec<ExampleId>,
    /// Ids of the instructions that entered the prompt.
    pub used_instructions: Vec<InstructionId>,
    /// Keys of the linked schema elements.
    pub used_schema: Vec<String>,
    /// The final SQL-generation prompt, for inspection/demos (Fig. 2).
    pub final_prompt: Prompt,
    /// Model-response fallbacks and other anomalies the pipeline
    /// previously swallowed silently (mirrors `trace.warnings`).
    pub warnings: Vec<String>,
    /// The span trace of this generation: one span per operator, LLM
    /// call, and self-correction attempt.
    pub trace: Trace,
}

impl GenerationResult {
    /// A partial result for a generation cut short by cancellation:
    /// whatever operator outputs exist so far, no SQL, `cancelled` set.
    /// The caller patches in any later-stage fields it already computed;
    /// the `generate` wrapper fills trace and warnings as usual.
    fn cancelled_at(reformulated: String, intents: Vec<String>) -> GenerationResult {
        GenerationResult {
            sql: None,
            attempts: 0,
            validated: false,
            cancelled: true,
            plan: None,
            reformulated,
            intents,
            errors: Vec::new(),
            used_examples: Vec::new(),
            used_instructions: Vec::new(),
            used_schema: Vec::new(),
            final_prompt: Prompt::new(TaskKind::SqlGeneration, ""),
            warnings: Vec::new(),
            trace: Trace::empty(names::GENERATE),
        }
    }

    /// How many spans took their degradation path during this generation
    /// (operators or attempts marked `degraded` after losing their model
    /// call). A non-zero count means the output came from a weakened
    /// pipeline — consumers comparing runs (e.g. the regression gate)
    /// should treat such runs as less trustworthy.
    pub fn degraded_operator_count(&self) -> usize {
        self.trace
            .all_spans()
            .iter()
            .filter(|s| {
                matches!(
                    s.attr("degraded"),
                    Some(genedit_telemetry::AttrValue::Bool(true))
                )
            })
            .count()
    }
}

/// Serving-layer hooks for one generation. Everything defaults to off —
/// `generate` is `generate_with` under default options.
#[derive(Debug, Clone, Default)]
pub struct GenerateOptions<'a> {
    /// Checked between operators; when it fires, generation returns a
    /// partial result with `cancelled = true` instead of continuing.
    pub cancel: Option<&'a CancelToken>,
    /// A previously computed operator-1 output for this exact question
    /// (same knowledge epoch). When present the reformulation model call
    /// is skipped and the span is marked `cached`.
    pub reformulation: Option<String>,
    /// The query embedding of `reformulation` under the *current* index's
    /// embedder. Only honored together with `reformulation` — an
    /// embedding without the text it embeds would be unverifiable.
    pub query_embedding: Option<Embedding>,
    /// Ensemble fan-out width for the generation stage. `Some(n)` with
    /// `n > 1` overrides [`PipelineConfig::candidates`] and samples the
    /// `n` CoT plan and SQL candidates **in parallel** (one scoped thread
    /// per seed), selecting by the configured
    /// [`CandidateSelection`] vote over
    /// candidates processed in seed order — byte-identical to sampling
    /// the same seeds serially. Parallel candidates issued over a
    /// [`BatchScheduler`](genedit_llm::BatchScheduler) coalesce into a
    /// single backend round trip. `None` (the default) keeps the serial
    /// path untouched.
    pub ensemble_width: Option<usize>,
    /// The serving-layer request ID, when this generation runs on behalf
    /// of an admitted serve request. Recorded as a `request_id` attribute
    /// on the root span so traces, metric exemplars, and flight-recorder
    /// dumps are joinable.
    pub request_id: Option<&'a str>,
}

/// The pipeline. Generic over the model so tests can stub it; in the
/// reproduction the model is the deterministic oracle.
pub struct GenEditPipeline<M> {
    model: M,
    config: PipelineConfig,
    metrics: Option<Arc<MetricsRegistry>>,
    resilience: Option<Arc<ResilienceState>>,
}

impl<M: LanguageModel> GenEditPipeline<M> {
    /// Pipeline over `model` with the default configuration.
    pub fn new(model: M) -> GenEditPipeline<M> {
        GenEditPipeline::with_config(model, PipelineConfig::default())
    }

    /// Pipeline over `model` with an explicit configuration. A
    /// `config.resilience` policy builds a fresh retry/breaker runtime
    /// over the system clock.
    pub fn with_config(model: M, config: PipelineConfig) -> GenEditPipeline<M> {
        let resilience = config.resilience.clone().map(|policy| {
            Arc::new(ResilienceState::new(
                policy,
                Arc::new(SystemClock::new()) as Arc<dyn genedit_llm::Clock>,
            ))
        });
        GenEditPipeline {
            model,
            config,
            metrics: None,
            resilience,
        }
    }

    /// Attach a shared metrics registry: every generation folds its trace
    /// and validation timings into it.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> GenEditPipeline<M> {
        if let Some(state) = self.resilience.take() {
            // Rebuild the state so retry/breaker events land in the same
            // registry (states built from config carry no other history).
            self.resilience = Some(Arc::new(
                ResilienceState::new(state.policy().clone(), Arc::clone(state.clock()))
                    .with_metrics(Arc::clone(&metrics)),
            ));
        }
        self.metrics = Some(metrics);
        self
    }

    /// Replace the resilience runtime (breakers + clock) with a shared
    /// one, e.g. a harness-wide state over a simulated clock. Implies the
    /// wrapped model path even if `config.resilience` is `None`.
    pub fn with_resilience_state(mut self, state: Arc<ResilienceState>) -> GenEditPipeline<M> {
        self.resilience = Some(state);
        self
    }

    /// The active pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The shared retry/breaker runtime, when resilience is enabled.
    pub fn resilience_state(&self) -> Option<&Arc<ResilienceState>> {
        self.resilience.as_ref()
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// Run the full pipeline for one question.
    ///
    /// `evidence` carries benchmark-provided evidence strings; GenEdit
    /// itself runs with `include_evidence = false` and relies on the
    /// knowledge set. The returned result carries a [`Trace`] with one
    /// span per enabled operator, plan/SQL attempt, and model call.
    pub fn generate(
        &self,
        question: &str,
        index: &KnowledgeIndex,
        db: &Database,
        evidence: &[String],
    ) -> GenerationResult {
        self.generate_with(question, index, db, evidence, &GenerateOptions::default())
    }

    /// [`GenEditPipeline::generate`] with serving-layer hooks: cooperative
    /// cancellation checked between operators, and cached operator-1
    /// outputs (reformulation + its query embedding) that skip the
    /// reformulation model call on warm repeat queries.
    pub fn generate_with(
        &self,
        question: &str,
        index: &KnowledgeIndex,
        db: &Database,
        evidence: &[String],
        opts: &GenerateOptions<'_>,
    ) -> GenerationResult {
        let tracer = Tracer::new(names::GENERATE);
        let mut result = {
            let root = tracer.span(names::GENERATE);
            root.attr("question_chars", question.len());
            if let Some(request_id) = opts.request_id {
                root.attr("request_id", request_id);
            }
            // Resilience wraps *outside* tracing so every retried attempt
            // is its own `llm.complete` span and each backoff an
            // `llm.retry` span.
            let traced = TracedModel::new(&self.model, &tracer);
            let r = match &self.resilience {
                Some(state) => {
                    let resilient =
                        ResilientModel::new(traced, Arc::clone(state)).with_tracer(&tracer);
                    self.generate_core(&resilient, &tracer, question, index, db, evidence, opts)
                }
                None => self.generate_core(&traced, &tracer, question, index, db, evidence, opts),
            };
            root.attr("attempts", r.attempts)
                .attr("validated", r.validated);
            if r.cancelled {
                root.attr("cancelled", true);
            }
            root.finish();
            r
        };
        let trace = tracer.finish();
        result.warnings = trace.warnings.clone();
        result.trace = trace;
        if let Some(metrics) = &self.metrics {
            metrics.record_trace(&result.trace);
        }
        result
    }

    /// The pipeline body. `model` is the traced (and, when resilience is
    /// on, retry-wrapped) view of `self.model`, so every completion lands
    /// as an `llm.complete` child of whichever operator span is open when
    /// it fires. Operators that lose their model call entirely take their
    /// degradation path: a warning plus a `degraded` span attribute, never
    /// a panic or a poisoned result. The trace and warnings fields of the
    /// returned result are placeholders; the `generate` wrapper fills them
    /// after the tracer finishes.
    #[allow(clippy::too_many_arguments)]
    fn generate_core<L: LanguageModel>(
        &self,
        model: &L,
        tracer: &Tracer,
        question: &str,
        index: &KnowledgeIndex,
        db: &Database,
        evidence: &[String],
        opts: &GenerateOptions<'_>,
    ) -> GenerationResult {
        let cfg = &self.config;
        let ks = index.knowledge();
        // Ensemble fan-out engages only on explicit request, so the
        // default serial path (and its call accounting) is untouched.
        let ensemble = opts.ensemble_width.filter(|w| *w > 1);
        let cancelled = |stage: &str| -> bool {
            match opts.cancel {
                Some(token) if token.is_cancelled() => {
                    tracer.warning(format!("generation cancelled after {stage}"));
                    true
                }
                _ => false,
            }
        };

        // ---- operator 1: reformulation -------------------------------
        let reformulated = if let Some(cached) = &opts.reformulation {
            // Warm path: a serving-layer cache already holds this
            // question's canonical form for the current knowledge epoch.
            if cfg.use_reformulation {
                let span = tracer.span(names::REFORMULATE);
                span.attr("cached", true)
                    .attr("chars_in", question.len())
                    .attr("chars_out", cached.len());
                span.finish();
            }
            cached.clone()
        } else if cfg.use_reformulation {
            let span = tracer.span(names::REFORMULATE);
            let prompt = Prompt::new(TaskKind::Reformulate, question);
            let text = match model.complete(&CompletionRequest::new(prompt)) {
                Ok(response) => match response.as_text() {
                    Some(t) => t.to_string(),
                    None => {
                        tracer.warning(
                            "reformulation returned no text; falling back to the raw question",
                        );
                        span.attr("degraded", true);
                        question.to_string()
                    }
                },
                Err(err) => {
                    tracer.warning(format!(
                        "reformulation failed ({err}); falling back to the raw question"
                    ));
                    span.attr("degraded", true);
                    question.to_string()
                }
            };
            span.attr("chars_in", question.len())
                .attr("chars_out", text.len());
            span.finish();
            text
        } else {
            question.to_string()
        };
        if cancelled("reformulation") {
            return GenerationResult::cancelled_at(reformulated, Vec::new());
        }

        // ---- operator 2: intent classification -----------------------
        let intents: Vec<String> = if cfg.use_intent_classification {
            let span = tracer.span(names::INTENT);
            let mut prompt = Prompt::new(TaskKind::IntentClassification, &reformulated);
            prompt.intent_candidates = ks.intents().iter().map(|i| i.key.clone()).collect();
            let candidates = prompt.intent_candidates.len();
            let matched = match model.complete(&CompletionRequest::new(prompt)) {
                Ok(response) => match response.as_items() {
                    Some(v) => v.to_vec(),
                    None => {
                        tracer.warning(
                            "intent classification returned no item list; assuming no intents",
                        );
                        span.attr("degraded", true);
                        Vec::new()
                    }
                },
                // No intents = no retrieval boost: downstream selection
                // ranks over the whole knowledge set (all intents).
                Err(err) => {
                    tracer.warning(format!(
                        "intent classification failed ({err}); retrieving over all intents"
                    ));
                    span.attr("degraded", true);
                    Vec::new()
                }
            };
            span.attr("candidates", candidates)
                .attr("matched", matched.len());
            span.finish();
            matched
        } else {
            Vec::new()
        };
        if cancelled("intent classification") {
            return GenerationResult::cancelled_at(reformulated, intents);
        }

        // ---- operator 3: example selection ---------------------------
        let query_emb = match (&opts.reformulation, &opts.query_embedding) {
            // Only trust a cached embedding when it travelled with the
            // reformulation it embeds (same cache entry, same epoch).
            (Some(_), Some(emb)) if emb.len() == index.embedder().dim() => emb.clone(),
            _ => index.embedder().embed(&reformulated),
        };
        let (prompt_examples, used_examples): (Vec<PromptExample>, Vec<ExampleId>) =
            if cfg.use_examples {
                let span = tracer.span(names::EXAMPLES);
                let top = index.top_examples(&query_emb, &intents, cfg.example_top_k);
                let ids: Vec<ExampleId> = top.iter().map(|(e, _)| e.id).collect();
                let rendered = top
                    .iter()
                    .map(|(e, _)| PromptExample {
                        description: e.description.clone(),
                        sql: e.fragment.sql.clone(),
                        kind: match e.fragment.kind {
                            FragmentKind::FullQuery => None,
                            k => Some(k),
                        },
                        term: e.term.clone(),
                    })
                    .collect();
                span.attr("candidates", ks.examples().len())
                    .attr("selected", ids.len());
                span.finish();
                (rendered, ids)
            } else {
                (Vec::new(), Vec::new())
            };
        if cancelled("example selection") {
            let mut r = GenerationResult::cancelled_at(reformulated, intents);
            r.used_examples = used_examples;
            return r;
        }

        // ---- operator 4: instruction selection (context expansion) ---
        let example_texts: Vec<String> = prompt_examples
            .iter()
            .map(|e| format!("{} {}", e.description, e.sql))
            .collect();
        let (prompt_instructions, used_instructions): (Vec<PromptInstruction>, Vec<InstructionId>) =
            if cfg.use_instructions {
                let span = tracer.span(names::INSTRUCTIONS);
                let mut expansions: Vec<&str> = example_texts.iter().map(|s| s.as_str()).collect();
                let hints = ks.retrieval_hints(RetrievalStage::InstructionSelection);
                expansions.extend(hints.iter().copied());
                let expanded = index.embedder().embed_expanded(&reformulated, &expansions);
                let top = index.top_instructions(&expanded, &intents, cfg.instruction_top_k);
                let ids: Vec<InstructionId> = top.iter().map(|(i, _)| i.id).collect();
                let rendered = top
                    .iter()
                    .map(|(i, _)| PromptInstruction {
                        text: i.text.clone(),
                        sql_hint: i.sql_hint.clone(),
                        term: i.term.clone(),
                    })
                    .collect();
                span.attr("candidates", ks.instructions().len())
                    .attr("selected", ids.len())
                    .attr("expansions", expansions.len());
                span.finish();
                (rendered, ids)
            } else {
                (Vec::new(), Vec::new())
            };
        if cancelled("instruction selection") {
            let mut r = GenerationResult::cancelled_at(reformulated, intents);
            r.used_examples = used_examples;
            r.used_instructions = used_instructions;
            return r;
        }

        // ---- operator 5: schema linking ------------------------------
        let all_schema: Vec<PromptSchemaElement> = ks
            .schema_elements()
            .iter()
            .map(|s| PromptSchemaElement {
                table: s.table.clone(),
                column: s.column.clone(),
                description: s.description.clone(),
                top_values: s.top_values.clone(),
            })
            .collect();
        let schema: Vec<PromptSchemaElement> = if cfg.use_schema_linking {
            let span = tracer.span(names::SCHEMA_LINKING);
            span.attr("candidates", all_schema.len());
            // The LLM identifies relevant elements over the full schema…
            let mut link_prompt = Prompt::new(TaskKind::SchemaLinking, &reformulated);
            link_prompt.schema = all_schema.clone();
            link_prompt.hints = ks
                .retrieval_hints(RetrievalStage::SchemaLinking)
                .iter()
                .map(|s| s.to_string())
                .collect();
            let keys: Vec<String> = match model.complete(&CompletionRequest::new(link_prompt)) {
                Ok(response) => match response.as_items() {
                    Some(v) => v.to_vec(),
                    None => {
                        tracer.warning("schema linking returned no item list; linking no elements");
                        span.attr("degraded", true);
                        Vec::new()
                    }
                },
                // Degradation: link everything — the full schema flows
                // into the re-rank filter below, so generation still gets
                // a bounded (if less precise) schema section.
                Err(err) => {
                    tracer.warning(format!(
                        "schema linking failed ({err}); passing the full schema to the re-ranker"
                    ));
                    span.attr("degraded", true);
                    all_schema.iter().map(|el| el.key()).collect()
                }
            };
            let linked: Vec<PromptSchemaElement> = all_schema
                .iter()
                .filter(|el| keys.iter().any(|k| k == &el.key()))
                .cloned()
                .collect();
            span.attr("linked", linked.len());
            // …then a re-ranker filters to manage the generation model's
            // context (§3.1.1), using the example+instruction-expanded
            // query embedding (more context expansion).
            let kept = if linked.len() > cfg.schema_top_k {
                let instruction_texts: Vec<String> =
                    prompt_instructions.iter().map(|i| i.text.clone()).collect();
                let mut expansions: Vec<&str> = example_texts.iter().map(|s| s.as_str()).collect();
                expansions.extend(instruction_texts.iter().map(|s| s.as_str()));
                let expanded = index.embedder().embed_expanded(&reformulated, &expansions);
                let texts: Vec<String> = linked
                    .iter()
                    .map(|el| {
                        format!(
                            "{} {} {}",
                            el.key(),
                            el.description,
                            el.top_values.join(" ")
                        )
                    })
                    .collect();
                let scores = score_against(index.embedder(), &expanded, &texts);
                let scored: Vec<(PromptSchemaElement, f32)> =
                    linked.into_iter().zip(scores).collect();
                let (kept, stats) =
                    genedit_retrieval::rerank_top_k_with_stats(scored, cfg.schema_top_k);
                if let Some(metrics) = &self.metrics {
                    stats.record(metrics, "schema_linking");
                }
                kept.into_iter().map(|(el, _)| el).collect()
            } else {
                linked
            };
            span.attr("kept", kept.len());
            span.finish();
            kept
        } else {
            // Ablation: no linking — the full warehouse schema ships with
            // the prompt (empty section = "everything attached" to the
            // oracle, matching how un-linked deployments dump the DDL).
            Vec::new()
        };
        let used_schema: Vec<String> = schema.iter().map(|s| s.key()).collect();
        if cancelled("schema linking") {
            let mut r = GenerationResult::cancelled_at(reformulated, intents);
            r.used_examples = used_examples;
            r.used_instructions = used_instructions;
            r.used_schema = used_schema;
            return r;
        }

        // ---- base prompt ----------------------------------------------
        let mut base = Prompt::new(TaskKind::SqlGeneration, &reformulated);
        base.original_question = Some(question.to_string());
        base.examples = prompt_examples;
        base.instructions = prompt_instructions;
        base.schema = schema;
        if cfg.include_evidence {
            base.evidence = evidence.to_vec();
        }

        // ---- CoT plan (§3.1.2) ----------------------------------------
        let plan: Option<Plan> = if cfg.use_plan {
            let span = tracer.span(names::PLAN);
            let mut plan_prompt = base.clone();
            plan_prompt.task = TaskKind::PlanGeneration;
            // Ensemble mode samples `width` chain-of-thought plans in
            // parallel (one seed each) and keeps the plan the most
            // candidates structurally agree on, ties toward the earliest
            // seed. The serial path is a single seed-0 call, exactly as
            // before.
            let completions = match ensemble {
                Some(width) => {
                    span.attr("ensemble", width);
                    complete_parallel(model, &plan_prompt, width as u64)
                }
                None => vec![model.complete(&CompletionRequest::new(plan_prompt.clone()))],
            };
            let candidates: Vec<Plan> = completions
                .iter()
                .filter_map(|c| c.as_ref().ok().and_then(|r| r.as_plan()).cloned())
                .collect();
            let voted = candidates
                .iter()
                .enumerate()
                .max_by_key(|(i, p)| {
                    let votes = candidates.iter().filter(|other| other == p).count();
                    (votes, std::cmp::Reverse(*i))
                })
                .map(|(_, p)| p.clone());
            let p = if let Some(p) = voted {
                Some(p)
            } else {
                // No candidate parsed as a plan: degrade exactly like the
                // single-call path, keyed off the first completion.
                match completions.into_iter().next() {
                    Some(Ok(_)) => {
                        tracer.warning("plan generation returned no plan; using an empty plan");
                        span.attr("degraded", true);
                        Some(Plan::default())
                    }
                    Some(Err(err)) => {
                        // Degradation: generate SQL directly, plan-free —
                        // the prompt simply ships without a plan section.
                        tracer.warning(format!(
                            "plan generation failed ({err}); generating SQL without a plan"
                        ));
                        span.attr("degraded", true);
                        None
                    }
                    None => None,
                }
            };
            span.attr("steps", p.as_ref().map(|p| p.steps.len()).unwrap_or(0))
                .attr("pseudo_sql", cfg.use_pseudo_sql);
            span.finish();
            p.map(|p| {
                if cfg.use_pseudo_sql {
                    p
                } else {
                    p.without_pseudo_sql()
                }
            })
        } else {
            None
        };
        base.plan = plan.clone();

        // ---- generation with self-correction --------------------------
        let mut errors: Vec<String> = Vec::new();
        let mut last_sql: Option<String> = None;
        for attempt in 0..=cfg.max_retries {
            if cancelled(if attempt == 0 {
                "plan generation"
            } else {
                "a self-correction attempt"
            }) {
                let mut r = GenerationResult::cancelled_at(reformulated, intents);
                r.plan = plan;
                r.used_examples = used_examples;
                r.used_instructions = used_instructions;
                r.used_schema = used_schema;
                r.errors = errors;
                r.attempts = attempt;
                r.sql = last_sql;
                return r;
            }
            let width = ensemble.unwrap_or_else(|| cfg.candidates.max(1));
            let attempt_span = tracer.span(names::SQL_ATTEMPT);
            attempt_span
                .attr("attempt", attempt + 1)
                .attr("candidates", width);
            if ensemble.is_some() {
                attempt_span.attr("ensemble", true);
            }
            if let Some(cause) = errors.last() {
                attempt_span.attr("retry_cause", cause.as_str());
            }
            let mut prompt = base.clone();
            prompt.errors = errors.clone();
            let mut round_errors: Vec<String> = Vec::new();
            // Valid candidates this round, with their result fingerprints
            // (used by self-consistency voting).
            let mut valid: Vec<(String, Vec<String>)> = Vec::new();
            // Every candidate that produced SQL, in seed order, with its
            // execution outcome — the raw material for the minority
            // self-correction round under `MajorityResult` selection.
            let mut records: Vec<(u64, String, Result<Vec<String>, String>)> = Vec::new();
            // Ensemble mode fans all candidate completions out in
            // parallel up front; candidates are then processed in seed
            // order, so the outcome is byte-identical to the serial
            // loop over the same seeds. The serial path keeps its lazy
            // one-call-per-seed shape so `FirstValid` can stop early
            // without paying for unused candidates.
            let fanned: Option<Vec<Result<CompletionResponse, ModelError>>> =
                ensemble.map(|w| complete_parallel(model, &prompt, w as u64));
            for seed in 0..width as u64 {
                let completion = match &fanned {
                    Some(v) => v[seed as usize].clone(),
                    None => model.complete(&CompletionRequest::with_seed(prompt.clone(), seed)),
                };
                let sql = match completion {
                    Ok(response) => match response.as_sql() {
                        Some(s) => s.to_string(),
                        None => {
                            tracer.warning("model returned no SQL for a generation candidate");
                            attempt_span.attr("degraded", true);
                            continue;
                        }
                    },
                    // Transport failures do NOT join `errors`: prompt
                    // error history must reflect only SQL feedback, or
                    // the self-correction semantics would shift.
                    Err(err) => {
                        tracer.warning(format!("SQL generation candidate failed ({err})"));
                        attempt_span.attr("degraded", true);
                        continue;
                    }
                };
                match self.validate_traced(tracer, db, &sql, seed) {
                    Ok(fingerprint) => {
                        if cfg.candidate_selection == CandidateSelection::FirstValid {
                            return GenerationResult {
                                sql: Some(sql),
                                attempts: attempt + 1,
                                validated: true,
                                cancelled: false,
                                plan,
                                reformulated,
                                intents,
                                errors,
                                used_examples,
                                used_instructions,
                                used_schema,
                                final_prompt: prompt,
                                warnings: Vec::new(),
                                trace: Trace::empty(names::GENERATE),
                            };
                        }
                        records.push((seed, sql.clone(), Ok(fingerprint.clone())));
                        valid.push((sql, fingerprint));
                    }
                    Err(e) => {
                        records.push((seed, sql.clone(), Err(e.clone())));
                        round_errors.push(e);
                        last_sql = Some(sql);
                    }
                }
            }
            // Minority self-correction (SelECT-SQL-style): once a
            // majority execution signature exists, every candidate that
            // landed outside it — invalid SQL, or valid SQL whose result
            // disagrees — gets ONE corrective completion carrying its
            // evidence (the execution error, or the disagreement), and
            // the vote is re-taken over the repaired field. Candidates
            // whose correction does not validate keep their original
            // outcome, so the round can only grow the valid set. One
            // round, bounded: at most one extra model call per minority
            // candidate per attempt.
            let has_invalid = records.iter().any(|(_, _, o)| o.is_err());
            let has_dissent = {
                let first = valid.first().map(|(_, fp)| fp);
                valid.iter().any(|(_, fp)| Some(fp) != first)
            };
            if !valid.is_empty() && (has_invalid || has_dissent) {
                let total = records.len();
                let majority_fp = valid
                    .iter()
                    .enumerate()
                    .max_by_key(|(i, (_, fp))| {
                        let votes = valid.iter().filter(|(_, other)| other == fp).count();
                        (votes, std::cmp::Reverse(*i))
                    })
                    .map(|(_, (_, fp))| fp.clone());
                if let Some(majority_fp) = majority_fp {
                    let majority_votes = valid.iter().filter(|(_, fp)| *fp == majority_fp).count();
                    let fixes: Vec<(usize, CompletionRequest)> = records
                        .iter()
                        .enumerate()
                        .filter_map(|(ri, (seed, _, outcome))| {
                            let evidence = match outcome {
                                Ok(fp) if *fp != majority_fp => format!(
                                    "execution result disagreed with {majority_votes} of \
                                     {total} candidates"
                                ),
                                Ok(_) => return None,
                                Err(e) => e.clone(),
                            };
                            let mut p = prompt.clone();
                            p.errors.push(evidence);
                            Some((ri, CompletionRequest::with_seed(p, *seed)))
                        })
                        .collect();
                    if !fixes.is_empty() {
                        attempt_span.attr("corrected", fixes.len());
                        let requests: Vec<CompletionRequest> =
                            fixes.iter().map(|(_, r)| r.clone()).collect();
                        // Ensemble mode corrects in parallel (the calls
                        // coalesce over a batching scheduler exactly like
                        // the original fan-out); results are processed in
                        // seed order either way, so serial and fanned
                        // corrections are byte-identical.
                        let responses = if fanned.is_some() {
                            complete_requests_parallel(model, &requests)
                        } else {
                            requests.iter().map(|r| model.complete(r)).collect()
                        };
                        let mut recovered = 0usize;
                        for ((ri, _), response) in fixes.iter().zip(responses) {
                            let Ok(response) = response else { continue };
                            let Some(sql) = response.as_sql() else {
                                continue;
                            };
                            let seed = records[*ri].0;
                            if let Ok(fp) = self.validate_traced(tracer, db, sql, seed) {
                                if records[*ri].2.is_err() || fp == majority_fp {
                                    records[*ri] = (seed, sql.to_string(), Ok(fp));
                                    recovered += 1;
                                }
                            }
                        }
                        attempt_span.attr("corrected_recovered", recovered);
                        // Re-vote over the repaired field, still in seed
                        // order so the tie-break stays deterministic.
                        valid = records
                            .iter()
                            .filter_map(|(_, sql, outcome)| {
                                outcome.as_ref().ok().map(|fp| (sql.clone(), fp.clone()))
                            })
                            .collect();
                    }
                }
            }
            // Self-consistency: the result the most candidates agree on
            // wins (grouped by execution signature — the sorted result
            // fingerprint); ties break toward the earliest candidate.
            // Falls back to the first valid candidate rather than
            // panicking on an (impossible) empty vote.
            let winner = valid
                .iter()
                .enumerate()
                .max_by_key(|(i, (_, fp))| {
                    let votes = valid.iter().filter(|(_, other)| other == fp).count();
                    (votes, std::cmp::Reverse(*i))
                })
                .map(|(_, (sql, _))| sql.clone())
                .or_else(|| valid.first().map(|(sql, _)| sql.clone()));
            if let Some(winner) = winner {
                attempt_span.attr("valid", valid.len());
                let winner_fp = valid
                    .iter()
                    .find(|(sql, _)| *sql == winner)
                    .map(|(_, fp)| fp.clone())
                    .unwrap_or_default();
                let winner_votes = valid.iter().filter(|(_, fp)| *fp == winner_fp).count();
                let groups = {
                    let mut fps: Vec<&Vec<String>> = valid.iter().map(|(_, fp)| fp).collect();
                    fps.sort();
                    fps.dedup();
                    fps.len()
                };
                attempt_span
                    .attr("vote_total", valid.len())
                    .attr("vote_groups", groups)
                    .attr("vote_votes", winner_votes);
                return GenerationResult {
                    sql: Some(winner),
                    attempts: attempt + 1,
                    validated: true,
                    cancelled: false,
                    plan,
                    reformulated,
                    intents,
                    errors,
                    used_examples,
                    used_instructions,
                    used_schema,
                    final_prompt: prompt,
                    warnings: Vec::new(),
                    trace: Trace::empty(names::GENERATE),
                };
            }
            attempt_span.attr("errors", round_errors.len());
            attempt_span.finish();
            errors.extend(round_errors);
        }

        let final_prompt = {
            let mut p = base;
            p.errors = errors.clone();
            p
        };
        GenerationResult {
            sql: last_sql,
            attempts: cfg.max_retries + 1,
            validated: false,
            cancelled: false,
            plan,
            reformulated,
            intents,
            errors,
            used_examples,
            used_instructions,
            used_schema,
            final_prompt,
            warnings: Vec::new(),
            trace: Trace::empty(names::GENERATE),
        }
    }

    /// Instrumented validation: records a `sql.validate` span with parse
    /// and execution timings, and folds [`ExecStats`] into the registry
    /// when one is attached. Error strings match [`validate`] exactly so
    /// the self-correction prompts are unchanged.
    fn validate_traced(
        &self,
        tracer: &Tracer,
        db: &Database,
        sql: &str,
        seed: u64,
    ) -> Result<Vec<String>, String> {
        let span = tracer.span(names::VALIDATE);
        span.attr("seed", seed).attr("sql_chars", sql.len());
        let (result, stats) = execute_sql_timed(db, sql);
        if let Some(metrics) = &self.metrics {
            stats.record(metrics, "validate");
        }
        let out = match result {
            Ok(rs) => {
                span.attr("rows", stats.rows).attr("columns", stats.columns);
                Ok(rs.fingerprint())
            }
            Err(e) => {
                let msg = e.to_string();
                span.attr("error", msg.as_str());
                Err(msg)
            }
        };
        span.finish();
        out
    }
}

/// Issue `width` completions of the same prompt (seeds `0..width`) in
/// parallel, one scoped thread per seed, returning results **in seed
/// order** so downstream voting is independent of scheduling. Over a
/// [`BatchScheduler`](genedit_llm::BatchScheduler) the concurrent calls
/// coalesce into a single backend round trip. A panicking candidate
/// thread surfaces as a [`ModelError::Transient`] for that seed only.
fn complete_parallel<L: LanguageModel>(
    model: &L,
    prompt: &Prompt,
    width: u64,
) -> Vec<Result<CompletionResponse, ModelError>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..width)
            .map(|seed| {
                let request = CompletionRequest::with_seed(prompt.clone(), seed);
                scope.spawn(move || model.complete(&request))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(ModelError::Transient(
                        "ensemble candidate thread panicked".to_string(),
                    ))
                })
            })
            .collect()
    })
}

/// Issue an arbitrary set of completion requests in parallel, one scoped
/// thread per request, returning results **in input order** (the caller
/// passes minority-correction requests in seed order, so downstream
/// re-voting stays deterministic). Like [`complete_parallel`], concurrent
/// calls over a [`BatchScheduler`](genedit_llm::BatchScheduler) coalesce
/// into one backend round trip.
fn complete_requests_parallel<L: LanguageModel>(
    model: &L,
    requests: &[CompletionRequest],
) -> Vec<Result<CompletionResponse, ModelError>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|request| scope.spawn(move || model.complete(request)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(ModelError::Transient(
                        "correction candidate thread panicked".to_string(),
                    ))
                })
            })
            .collect()
    })
}

/// Cosine-score `texts` against a query embedding, returning one score
/// per text in input order. Small batches stay on the calling thread;
/// larger re-rank batches split across a few scoped threads, overlapping
/// the independent embedding computations (the retrieval-side fan-out of
/// DESIGN.md §12). Chunks are joined in spawn order, so the output is
/// identical to the serial loop.
fn score_against(embedder: &Embedder, query: &Embedding, texts: &[String]) -> Vec<f32> {
    const PAR_THRESHOLD: usize = 8;
    const THREADS: usize = 4;
    if texts.len() < PAR_THRESHOLD {
        return texts
            .iter()
            .map(|t| cosine(query, &embedder.embed(t)))
            .collect();
    }
    let chunk = texts.len().div_ceil(THREADS);
    std::thread::scope(|scope| {
        let handles: Vec<_> = texts
            .chunks(chunk)
            .map(|c| {
                scope.spawn(move || {
                    c.iter()
                        .map(|t| cosine(query, &embedder.embed(t)))
                        .collect::<Vec<f32>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_default())
            .collect()
    })
}

/// Syntactic + semantic validation: parse, then execute against the
/// database (execution-guided checking, as in the paper's self-correction
/// citation 25). Returns the result fingerprint for candidate voting.
/// The pipeline itself goes through `validate_traced`, which must agree
/// with this reference implementation on every error string.
#[cfg(test)]
fn validate(db: &Database, sql: &str) -> Result<Vec<String>, String> {
    genedit_sql::parser::parse_statement(sql).map_err(|e| e.to_string())?;
    let rs = genedit_sql::exec::execute_sql(db, sql).map_err(|e| e.to_string())?;
    Ok(rs.fingerprint())
}

#[cfg(test)]
mod tests {
    use super::*;
    use genedit_bird::{DomainBundle, SPORTS};
    use genedit_llm::{OracleConfig, OracleModel, TaskRegistry};

    fn setup() -> (DomainBundle, KnowledgeIndex, OracleModel) {
        let bundle = DomainBundle::build(&SPORTS, (4, 2, 1), 42);
        let index = KnowledgeIndex::build(bundle.build_knowledge());
        let mut reg = TaskRegistry::new();
        for t in &bundle.tasks {
            reg.register(t.clone());
        }
        // Stochastic failure channels off: these tests observe the causal
        // effects of knowledge presence/absence, not the noise model.
        let oracle = OracleModel::with_config(
            reg,
            OracleConfig {
                noise_rate: 0.0,
                pseudo_drift_probability: 0.0,
                drift_probability: 0.0,
                canonical_form_penalty: 0.0,
                ..Default::default()
            },
        );
        (bundle, index, oracle)
    }

    #[test]
    fn simple_task_generates_correct_sql() {
        let (bundle, index, oracle) = setup();
        let pipeline = GenEditPipeline::new(&oracle);
        let task = &bundle.tasks[0];
        let result = pipeline.generate(&task.question, &index, &bundle.db, &[]);
        assert!(result.validated, "errors: {:?}", result.errors);
        let (ok, note) =
            genedit_bird::score_prediction(&bundle.db, &task.gold_sql, result.sql.as_deref());
        assert!(ok, "note: {note:?}, sql: {:?}", result.sql);
    }

    #[test]
    fn pipeline_populates_context() {
        let (bundle, index, oracle) = setup();
        let pipeline = GenEditPipeline::new(&oracle);
        // The challenging QoQ task needs examples/instructions/schema.
        let task = bundle
            .tasks
            .iter()
            .find(|t| t.difficulty == genedit_llm::Difficulty::Challenging)
            .unwrap();
        let result = pipeline.generate(&task.question, &index, &bundle.db, &[]);
        assert!(!result.used_examples.is_empty());
        assert!(!result.used_instructions.is_empty());
        assert!(!result.used_schema.is_empty());
        assert!(result.plan.is_some());
        assert!(result.reformulated.starts_with("Show me"));
        assert_eq!(result.intents, vec![task.intent.clone()]);
    }

    #[test]
    fn challenging_task_with_full_pipeline_succeeds() {
        let (bundle, index, oracle) = setup();
        let pipeline = GenEditPipeline::new(&oracle);
        let task = bundle
            .tasks
            .iter()
            .find(|t| t.difficulty == genedit_llm::Difficulty::Challenging)
            .unwrap();
        let result = pipeline.generate(&task.question, &index, &bundle.db, &[]);
        let (ok, note) =
            genedit_bird::score_prediction(&bundle.db, &task.gold_sql, result.sql.as_deref());
        assert!(
            ok,
            "note: {note:?}\nplan: {:?}\nsql: {:?}",
            result.plan, result.sql
        );
    }

    #[test]
    fn without_instructions_term_tasks_fail() {
        let (bundle, index, oracle) = setup();
        let cfg = PipelineConfig {
            use_instructions: false,
            ..Default::default()
        };
        let pipeline = GenEditPipeline::with_config(&oracle, cfg);
        // Task s05 is the "our entities" term task.
        let task = bundle
            .tasks
            .iter()
            .find(|t| !t.required_terms.is_empty())
            .unwrap();
        let result = pipeline.generate(&task.question, &index, &bundle.db, &[]);
        let (ok, _) =
            genedit_bird::score_prediction(&bundle.db, &task.gold_sql, result.sql.as_deref());
        assert!(
            !ok,
            "term task should fail without instructions: {:?}",
            result.sql
        );
    }

    #[test]
    fn plan_carries_pseudo_sql_and_ablation_strips_it() {
        let (bundle, index, oracle) = setup();
        let task = bundle
            .tasks
            .iter()
            .find(|t| t.difficulty == genedit_llm::Difficulty::Challenging)
            .unwrap();

        let pipeline = GenEditPipeline::new(&oracle);
        let result = pipeline.generate(&task.question, &index, &bundle.db, &[]);
        let plan = result.plan.unwrap();
        assert!(plan.steps.iter().any(|s| s.pseudo_sql.is_some()));

        let cfg = PipelineConfig {
            use_pseudo_sql: false,
            ..Default::default()
        };
        let pipeline = GenEditPipeline::with_config(&oracle, cfg);
        let result = pipeline.generate(&task.question, &index, &bundle.db, &[]);
        let plan = result.plan.unwrap();
        assert!(plan.steps.iter().all(|s| s.pseudo_sql.is_none()));
    }

    #[test]
    fn majority_voting_returns_a_valid_candidate() {
        let (bundle, index, oracle) = setup();
        let cfg = PipelineConfig {
            candidates: 3,
            candidate_selection: CandidateSelection::MajorityResult,
            ..Default::default()
        };
        let pipeline = GenEditPipeline::with_config(&oracle, cfg);
        let task = &bundle.tasks[0];
        let voted = pipeline.generate(&task.question, &index, &bundle.db, &[]);
        assert!(voted.validated);
        let (ok, note) =
            genedit_bird::score_prediction(&bundle.db, &task.gold_sql, voted.sql.as_deref());
        assert!(ok, "{note:?}");
        // With an oracle that produces identical candidates, voting and
        // first-valid agree.
        let first = GenEditPipeline::new(&oracle).generate(&task.question, &index, &bundle.db, &[]);
        assert_eq!(voted.sql, first.sql);
    }

    /// Tentpole invariant: ensemble fan-out (parallel candidates over
    /// seeds `0..n`) is byte-identical to the serial loop over the same
    /// seeds. Plan generation is disabled because the serial path samples
    /// only seed 0 there, while the ensemble deliberately votes over `n`
    /// seeds — the SQL candidate stage is where the seed sets coincide.
    #[test]
    fn ensemble_fanout_matches_serial_execution() {
        let (bundle, index, oracle) = setup();
        let cfg = PipelineConfig {
            candidates: 3,
            candidate_selection: CandidateSelection::MajorityResult,
            use_plan: false,
            ..Default::default()
        };
        let pipeline = GenEditPipeline::with_config(&oracle, cfg);
        for task in &bundle.tasks {
            let serial = pipeline.generate(&task.question, &index, &bundle.db, &[]);
            let opts = GenerateOptions {
                ensemble_width: Some(3),
                ..Default::default()
            };
            let fanned = pipeline.generate_with(&task.question, &index, &bundle.db, &[], &opts);
            assert_eq!(fanned.sql, serial.sql, "task {:?}", task.question);
            assert_eq!(fanned.reformulated, serial.reformulated);
            assert_eq!(fanned.intents, serial.intents);
            assert_eq!(fanned.errors, serial.errors);
            assert_eq!(fanned.used_examples, serial.used_examples);
            assert_eq!(fanned.used_instructions, serial.used_instructions);
            assert_eq!(fanned.used_schema, serial.used_schema);
            assert_eq!(fanned.validated, serial.validated);
            assert_eq!(fanned.attempts, serial.attempts);
        }
    }

    /// A stub whose plan depends only on the sampling seed, for pinning
    /// down the ensemble vote: seeds 0 and 3 plan "X", every other seed
    /// plans "Y".
    struct PlanBySeed;

    impl LanguageModel for PlanBySeed {
        fn name(&self) -> &str {
            "plan-by-seed"
        }

        fn complete(
            &self,
            request: &CompletionRequest,
        ) -> Result<CompletionResponse, genedit_llm::ModelError> {
            Ok(match request.prompt.task {
                TaskKind::PlanGeneration => {
                    let label = match request.seed {
                        0 | 3 => "X",
                        _ => "Y",
                    };
                    CompletionResponse::Plan(Plan {
                        steps: vec![genedit_llm::PlanStep {
                            description: label.to_string(),
                            pseudo_sql: None,
                            scope: "main".to_string(),
                            kind: None,
                        }],
                    })
                }
                TaskKind::SqlGeneration => {
                    CompletionResponse::Sql("SELECT * FROM SPORTS_ORGS".to_string())
                }
                TaskKind::Reformulate => CompletionResponse::Text(request.prompt.question.clone()),
                _ => CompletionResponse::Items(Vec::new()),
            })
        }
    }

    /// Satellite requirement: the plan-ensemble vote takes the majority
    /// plan when one exists, and breaks ties toward the earliest seed.
    #[test]
    fn ensemble_plan_vote_breaks_ties_toward_earliest_seed() {
        let (bundle, index, _) = setup();
        let cfg = PipelineConfig {
            candidates: 1,
            max_retries: 0,
            ..Default::default()
        };
        let pipeline = GenEditPipeline::with_config(PlanBySeed, cfg);
        let plan_label = |width: usize| {
            let opts = GenerateOptions {
                ensemble_width: Some(width),
                ..Default::default()
            };
            let result = pipeline.generate_with("question", &index, &bundle.db, &[], &opts);
            let plan = result.plan.expect("stub always plans");
            plan.steps[0].description.clone()
        };
        // Seeds 0..3 plan [X, Y, Y]: the majority plan Y beats seed 0.
        assert_eq!(plan_label(3), "Y");
        // Seeds 0..4 plan [X, Y, Y, X]: a 2-2 tie breaks toward the
        // earliest seed's plan, X.
        assert_eq!(plan_label(4), "X");
    }

    /// Seed-keyed SQL stub for pinning the execution-signature vote:
    /// every seed except 2 returns the majority full-table scan; seed 2
    /// returns `minority_sql` until the prompt carries correction
    /// evidence (a non-empty error section), at which point it falls in
    /// line. Counts SQL-generation calls so tests can assert the
    /// correction round is exactly one extra call.
    struct MinorityBySeed {
        minority_sql: &'static str,
        sql_calls: std::sync::atomic::AtomicUsize,
    }

    impl MinorityBySeed {
        fn new(minority_sql: &'static str) -> MinorityBySeed {
            MinorityBySeed {
                minority_sql,
                sql_calls: std::sync::atomic::AtomicUsize::new(0),
            }
        }
    }

    impl LanguageModel for MinorityBySeed {
        fn name(&self) -> &str {
            "minority-by-seed"
        }

        fn complete(
            &self,
            request: &CompletionRequest,
        ) -> Result<CompletionResponse, genedit_llm::ModelError> {
            Ok(match request.prompt.task {
                TaskKind::SqlGeneration => {
                    self.sql_calls
                        .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    let sql = if request.seed == 2 && request.prompt.errors.is_empty() {
                        self.minority_sql
                    } else {
                        "SELECT * FROM SPORTS_ORGS"
                    };
                    CompletionResponse::Sql(sql.to_string())
                }
                TaskKind::Reformulate => CompletionResponse::Text(request.prompt.question.clone()),
                _ => CompletionResponse::Items(Vec::new()),
            })
        }
    }

    fn vote_cfg() -> PipelineConfig {
        PipelineConfig {
            candidates: 3,
            candidate_selection: CandidateSelection::MajorityResult,
            use_plan: false,
            max_retries: 0,
            ..Default::default()
        }
    }

    /// Tentpole: a valid-but-disagreeing candidate loses the
    /// execution-signature vote, gets one self-correction round carrying
    /// the mismatch evidence, and the majority result is returned.
    #[test]
    fn minority_with_divergent_result_is_corrected_and_majority_wins() {
        let (bundle, index, _) = setup();
        let model = MinorityBySeed::new("SELECT ORG_NAME FROM SPORTS_ORGS");
        let pipeline = GenEditPipeline::with_config(&model, vote_cfg());
        let opts = GenerateOptions {
            ensemble_width: Some(3),
            ..Default::default()
        };
        let result = pipeline.generate_with("question", &index, &bundle.db, &[], &opts);
        assert!(result.validated);
        assert_eq!(result.attempts, 1);
        assert_eq!(result.sql.as_deref(), Some("SELECT * FROM SPORTS_ORGS"));
        // Exactly one corrective completion on top of the 3-wide fan-out.
        assert_eq!(model.sql_calls.load(std::sync::atomic::Ordering::SeqCst), 4);
    }

    /// Tentpole: an invalid candidate gets one self-correction round
    /// carrying its execution error, recovers, and joins the majority.
    #[test]
    fn minority_with_invalid_sql_is_corrected_with_its_error() {
        let (bundle, index, _) = setup();
        let model = MinorityBySeed::new("SELECT * FROM MISSING_TABLE");
        let pipeline = GenEditPipeline::with_config(&model, vote_cfg());
        let opts = GenerateOptions {
            ensemble_width: Some(3),
            ..Default::default()
        };
        let result = pipeline.generate_with("question", &index, &bundle.db, &[], &opts);
        assert!(result.validated);
        assert_eq!(result.sql.as_deref(), Some("SELECT * FROM SPORTS_ORGS"));
        assert_eq!(model.sql_calls.load(std::sync::atomic::Ordering::SeqCst), 4);
    }

    /// The correction round is a no-op when every candidate already
    /// agrees, and the serial majority path stays byte-identical to the
    /// ensemble (both correct, both re-vote).
    #[test]
    fn agreeing_candidates_skip_the_correction_round() {
        let (bundle, index, _) = setup();
        // Seed 2 still diverges, but serial and fanned must agree with
        // each other (both run the same correction round).
        let model = MinorityBySeed::new("SELECT ORG_NAME FROM SPORTS_ORGS");
        let pipeline = GenEditPipeline::with_config(&model, vote_cfg());
        let opts = GenerateOptions {
            ensemble_width: Some(3),
            ..Default::default()
        };
        let fanned = pipeline.generate_with("question", &index, &bundle.db, &[], &opts);
        let serial = pipeline.generate("question", &index, &bundle.db, &[]);
        assert_eq!(fanned.sql, serial.sql);
        assert_eq!(fanned.validated, serial.validated);
        assert_eq!(fanned.attempts, serial.attempts);

        // A fully-agreeing model spends exactly the fan-out, no more.
        let agreeing = MinorityBySeed::new("SELECT * FROM SPORTS_ORGS");
        let pipeline = GenEditPipeline::with_config(&agreeing, vote_cfg());
        let result = pipeline.generate_with("question", &index, &bundle.db, &[], &opts);
        assert!(result.validated);
        assert_eq!(
            agreeing.sql_calls.load(std::sync::atomic::Ordering::SeqCst),
            3
        );
    }

    #[test]
    fn validation_catches_bad_sql() {
        let (bundle, _, _) = setup();
        assert!(validate(&bundle.db, "SELECT * FROM SPORTS_ORGS").is_ok());
        assert!(validate(&bundle.db, "SELEC nope").is_err());
        assert!(validate(&bundle.db, "SELECT * FROM MISSING_TABLE").is_err());
    }

    #[test]
    fn trace_contains_exactly_the_enabled_operator_spans() {
        let (bundle, index, oracle) = setup();
        let task = bundle
            .tasks
            .iter()
            .find(|t| t.difficulty == genedit_llm::Difficulty::Challenging)
            .unwrap();

        // Full pipeline: every operator plus plan appears exactly once.
        let full = GenEditPipeline::new(&oracle).generate(&task.question, &index, &bundle.db, &[]);
        for name in [
            names::REFORMULATE,
            names::INTENT,
            names::EXAMPLES,
            names::INSTRUCTIONS,
            names::SCHEMA_LINKING,
            names::PLAN,
        ] {
            assert_eq!(
                full.trace.count(name),
                1,
                "span {name} missing from full trace"
            );
        }
        assert!(full.trace.count(names::SQL_ATTEMPT) >= 1);
        assert!(full.trace.count(names::LLM_COMPLETE) >= 6);

        // Each ablation makes exactly its operator's spans disappear.
        let ablations: [(&str, PipelineConfig); 5] = [
            (
                names::REFORMULATE,
                PipelineConfig {
                    use_reformulation: false,
                    ..Default::default()
                },
            ),
            (
                names::INTENT,
                PipelineConfig {
                    use_intent_classification: false,
                    ..Default::default()
                },
            ),
            (
                names::EXAMPLES,
                PipelineConfig {
                    use_examples: false,
                    ..Default::default()
                },
            ),
            (
                names::INSTRUCTIONS,
                PipelineConfig {
                    use_instructions: false,
                    ..Default::default()
                },
            ),
            (
                names::SCHEMA_LINKING,
                PipelineConfig {
                    use_schema_linking: false,
                    ..Default::default()
                },
            ),
        ];
        for (disabled, cfg) in ablations {
            let result = GenEditPipeline::with_config(&oracle, cfg).generate(
                &task.question,
                &index,
                &bundle.db,
                &[],
            );
            assert_eq!(
                result.trace.count(disabled),
                0,
                "span {disabled} should vanish when its operator is disabled"
            );
            for name in [
                names::REFORMULATE,
                names::INTENT,
                names::EXAMPLES,
                names::INSTRUCTIONS,
                names::SCHEMA_LINKING,
            ] {
                if name != disabled {
                    assert_eq!(result.trace.count(name), 1, "{name} should survive");
                }
            }
        }

        let no_plan = PipelineConfig {
            use_plan: false,
            ..Default::default()
        };
        let result = GenEditPipeline::with_config(&oracle, no_plan).generate(
            &task.question,
            &index,
            &bundle.db,
            &[],
        );
        assert_eq!(result.trace.count(names::PLAN), 0);
    }

    #[test]
    fn sql_attempt_spans_match_reported_attempts() {
        let (bundle, index, oracle) = setup();
        // Clean run: one attempt, one span.
        let task = &bundle.tasks[0];
        let result =
            GenEditPipeline::new(&oracle).generate(&task.question, &index, &bundle.db, &[]);
        assert_eq!(result.trace.count(names::SQL_ATTEMPT), result.attempts);
        assert_eq!(result.trace.count(names::VALIDATE), result.attempts);

        // A model that only emits broken SQL burns every retry, and each
        // one leaves a span; retries carry a retry_cause attribute.
        struct BrokenSql;
        impl LanguageModel for BrokenSql {
            fn name(&self) -> &str {
                "broken-sql"
            }
            fn complete(
                &self,
                request: &CompletionRequest,
            ) -> Result<genedit_llm::CompletionResponse, genedit_llm::ModelError> {
                Ok(match request.prompt.task {
                    TaskKind::SqlGeneration => {
                        genedit_llm::CompletionResponse::Sql("SELEC nope".into())
                    }
                    _ => genedit_llm::CompletionResponse::Items(Vec::new()),
                })
            }
        }
        let pipeline = GenEditPipeline::new(BrokenSql);
        let result = pipeline.generate(&task.question, &index, &bundle.db, &[]);
        assert!(!result.validated);
        assert_eq!(result.attempts, pipeline.config().max_retries + 1);
        assert_eq!(result.trace.count(names::SQL_ATTEMPT), result.attempts);
        let retries: Vec<&genedit_telemetry::Span> = result
            .trace
            .all_spans()
            .into_iter()
            .filter(|s| s.name == names::SQL_ATTEMPT && s.attr("retry_cause").is_some())
            .collect();
        assert!(!retries.is_empty(), "retries should record their cause");
    }

    #[test]
    fn llm_spans_nest_under_their_operator() {
        let (bundle, index, oracle) = setup();
        let task = bundle
            .tasks
            .iter()
            .find(|t| t.difficulty == genedit_llm::Difficulty::Challenging)
            .unwrap();
        let result =
            GenEditPipeline::new(&oracle).generate(&task.question, &index, &bundle.db, &[]);
        let root = result.trace.find(names::GENERATE).expect("root span");
        for op in [
            names::REFORMULATE,
            names::INTENT,
            names::SCHEMA_LINKING,
            names::PLAN,
        ] {
            let span = result.trace.find(op).unwrap();
            assert_eq!(
                span.count_named(names::LLM_COMPLETE),
                1,
                "{op} should own exactly one model call"
            );
        }
        // Every model call in the whole trace sits under the root.
        assert_eq!(
            root.count_named(names::LLM_COMPLETE),
            result.trace.count(names::LLM_COMPLETE)
        );
    }

    #[test]
    fn malformed_model_responses_surface_as_warnings() {
        struct TextOnly;
        impl LanguageModel for TextOnly {
            fn name(&self) -> &str {
                "text-only"
            }
            fn complete(
                &self,
                _request: &CompletionRequest,
            ) -> Result<genedit_llm::CompletionResponse, genedit_llm::ModelError> {
                Ok(genedit_llm::CompletionResponse::Text(
                    "not what you asked for".into(),
                ))
            }
        }
        let (bundle, index, _) = setup();
        let result = GenEditPipeline::new(TextOnly).generate(
            &bundle.tasks[0].question,
            &index,
            &bundle.db,
            &[],
        );
        assert!(!result.validated);
        assert_eq!(result.warnings, result.trace.warnings);
        // Intent classification, schema linking, plan, and every SQL
        // candidate all fell back.
        assert!(result
            .warnings
            .iter()
            .any(|w| w.contains("intent classification")));
        assert!(result.warnings.iter().any(|w| w.contains("schema linking")));
        assert!(result
            .warnings
            .iter()
            .any(|w| w.contains("plan generation")));
        assert!(result.warnings.iter().any(|w| w.contains("no SQL")));
    }

    #[test]
    fn metrics_registry_accumulates_across_generations() {
        let (bundle, index, oracle) = setup();
        let metrics = Arc::new(MetricsRegistry::default());
        let pipeline = GenEditPipeline::new(&oracle).with_metrics(Arc::clone(&metrics));
        for task in bundle.tasks.iter().take(2) {
            pipeline.generate(&task.question, &index, &bundle.db, &[]);
        }
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.counters["span.pipeline.generate.count"], 2);
        assert!(snapshot.counters["span.llm.complete.count"] >= 2);
        assert!(snapshot
            .histograms
            .contains_key("span.pipeline.generate.ms"));
        assert!(snapshot.histograms.contains_key("sql.validate.rows"));
    }
}
