//! The GenEdit SQL-generation pipeline (§2.1, §3).
//!
//! Operators, in order (numbers match Fig. 1):
//! 1. query reformulation into canonical form,
//! 2. intent classification,
//! 3. example selection (intent retrieval + cosine re-rank),
//! 4. instruction selection (re-ranked by the query *expanded with the
//!    selected examples* — context expansion, §3.1.1),
//! 5. schema linking (model call + re-rank filter),
//!    then CoT plan generation and plan-guided SQL generation with up to
//!    `k` self-correction retries on syntactic/semantic errors.

use crate::config::{CandidateSelection, PipelineConfig};
use crate::index::KnowledgeIndex;
use genedit_knowledge::{ExampleId, FragmentKind, InstructionId, RetrievalStage};
use genedit_llm::{
    CompletionRequest, LanguageModel, Plan, Prompt, PromptExample, PromptInstruction,
    PromptSchemaElement, TaskKind,
};
use genedit_sql::catalog::Database;
use genedit_sql::exec::execute_sql;

/// Everything produced by one generation run. The feedback module consumes
/// the used-knowledge lists (operator "Generate Targets", §4.1).
#[derive(Debug, Clone)]
pub struct GenerationResult {
    /// Final SQL (present even when it never validated — the caller
    /// decides what to do with a failing query).
    pub sql: Option<String>,
    /// Generation rounds used (1 = no retry needed).
    pub attempts: usize,
    /// Whether the final SQL parsed and executed.
    pub validated: bool,
    pub plan: Option<Plan>,
    pub reformulated: String,
    pub intents: Vec<String>,
    pub errors: Vec<String>,
    pub used_examples: Vec<ExampleId>,
    pub used_instructions: Vec<InstructionId>,
    /// Keys of the linked schema elements.
    pub used_schema: Vec<String>,
    /// The final SQL-generation prompt, for inspection/demos (Fig. 2).
    pub final_prompt: Prompt,
}

/// The pipeline. Generic over the model so tests can stub it; in the
/// reproduction the model is the deterministic oracle.
pub struct GenEditPipeline<M> {
    model: M,
    config: PipelineConfig,
}

impl<M: LanguageModel> GenEditPipeline<M> {
    pub fn new(model: M) -> GenEditPipeline<M> {
        GenEditPipeline { model, config: PipelineConfig::default() }
    }

    pub fn with_config(model: M, config: PipelineConfig) -> GenEditPipeline<M> {
        GenEditPipeline { model, config }
    }

    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    pub fn model(&self) -> &M {
        &self.model
    }

    /// Run the full pipeline for one question.
    ///
    /// `evidence` carries benchmark-provided evidence strings; GenEdit
    /// itself runs with `include_evidence = false` and relies on the
    /// knowledge set.
    pub fn generate(
        &self,
        question: &str,
        index: &KnowledgeIndex,
        db: &Database,
        evidence: &[String],
    ) -> GenerationResult {
        let cfg = &self.config;
        let ks = index.knowledge();

        // ---- operator 1: reformulation -------------------------------
        let reformulated = if cfg.use_reformulation {
            let prompt = Prompt::new(TaskKind::Reformulate, question);
            self.model
                .complete(&CompletionRequest::new(prompt))
                .as_text()
                .unwrap_or(question)
                .to_string()
        } else {
            question.to_string()
        };

        // ---- operator 2: intent classification -----------------------
        let intents: Vec<String> = if cfg.use_intent_classification {
            let mut prompt = Prompt::new(TaskKind::IntentClassification, &reformulated);
            prompt.intent_candidates =
                ks.intents().iter().map(|i| i.key.clone()).collect();
            self.model
                .complete(&CompletionRequest::new(prompt))
                .as_items()
                .map(|v| v.to_vec())
                .unwrap_or_default()
        } else {
            Vec::new()
        };

        // ---- operator 3: example selection ---------------------------
        let query_emb = index.embedder().embed(&reformulated);
        let (prompt_examples, used_examples): (Vec<PromptExample>, Vec<ExampleId>) =
            if cfg.use_examples {
                let top = index.top_examples(&query_emb, &intents, cfg.example_top_k);
                let ids = top.iter().map(|(e, _)| e.id).collect();
                let rendered = top
                    .iter()
                    .map(|(e, _)| PromptExample {
                        description: e.description.clone(),
                        sql: e.fragment.sql.clone(),
                        kind: match e.fragment.kind {
                            FragmentKind::FullQuery => None,
                            k => Some(k),
                        },
                        term: e.term.clone(),
                    })
                    .collect();
                (rendered, ids)
            } else {
                (Vec::new(), Vec::new())
            };

        // ---- operator 4: instruction selection (context expansion) ---
        let example_texts: Vec<String> = prompt_examples
            .iter()
            .map(|e| format!("{} {}", e.description, e.sql))
            .collect();
        let (prompt_instructions, used_instructions): (Vec<PromptInstruction>, Vec<InstructionId>) =
            if cfg.use_instructions {
                let mut expansions: Vec<&str> =
                    example_texts.iter().map(|s| s.as_str()).collect();
                let hints = ks.retrieval_hints(RetrievalStage::InstructionSelection);
                expansions.extend(hints.iter().copied());
                let expanded = index.embedder().embed_expanded(&reformulated, &expansions);
                let top = index.top_instructions(&expanded, &intents, cfg.instruction_top_k);
                let ids = top.iter().map(|(i, _)| i.id).collect();
                let rendered = top
                    .iter()
                    .map(|(i, _)| PromptInstruction {
                        text: i.text.clone(),
                        sql_hint: i.sql_hint.clone(),
                        term: i.term.clone(),
                    })
                    .collect();
                (rendered, ids)
            } else {
                (Vec::new(), Vec::new())
            };

        // ---- operator 5: schema linking ------------------------------
        let all_schema: Vec<PromptSchemaElement> = ks
            .schema_elements()
            .iter()
            .map(|s| PromptSchemaElement {
                table: s.table.clone(),
                column: s.column.clone(),
                description: s.description.clone(),
                top_values: s.top_values.clone(),
            })
            .collect();
        let schema: Vec<PromptSchemaElement> = if cfg.use_schema_linking {
            // The LLM identifies relevant elements over the full schema…
            let mut link_prompt = Prompt::new(TaskKind::SchemaLinking, &reformulated);
            link_prompt.schema = all_schema.clone();
            link_prompt.hints = ks
                .retrieval_hints(RetrievalStage::SchemaLinking)
                .iter()
                .map(|s| s.to_string())
                .collect();
            let keys: Vec<String> = self
                .model
                .complete(&CompletionRequest::new(link_prompt))
                .as_items()
                .map(|v| v.to_vec())
                .unwrap_or_default();
            let linked: Vec<PromptSchemaElement> = all_schema
                .iter()
                .filter(|el| keys.iter().any(|k| k == &el.key()))
                .cloned()
                .collect();
            // …then a re-ranker filters to manage the generation model's
            // context (§3.1.1), using the example+instruction-expanded
            // query embedding (more context expansion).
            if linked.len() > cfg.schema_top_k {
                let instruction_texts: Vec<String> = prompt_instructions
                    .iter()
                    .map(|i| i.text.clone())
                    .collect();
                let mut expansions: Vec<&str> =
                    example_texts.iter().map(|s| s.as_str()).collect();
                expansions.extend(instruction_texts.iter().map(|s| s.as_str()));
                let expanded =
                    index.embedder().embed_expanded(&reformulated, &expansions);
                let mut scored: Vec<(PromptSchemaElement, f32)> = linked
                    .into_iter()
                    .map(|el| {
                        let text = format!(
                            "{} {} {}",
                            el.key(),
                            el.description,
                            el.top_values.join(" ")
                        );
                        let emb = index.embedder().embed(&text);
                        let score = genedit_retrieval::cosine(&expanded, &emb);
                        (el, score)
                    })
                    .collect();
                scored.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal)
                });
                scored.truncate(cfg.schema_top_k);
                scored.into_iter().map(|(el, _)| el).collect()
            } else {
                linked
            }
        } else {
            // Ablation: no linking — the full warehouse schema ships with
            // the prompt (empty section = "everything attached" to the
            // oracle, matching how un-linked deployments dump the DDL).
            Vec::new()
        };
        let used_schema: Vec<String> = schema.iter().map(|s| s.key()).collect();

        // ---- base prompt ----------------------------------------------
        let mut base = Prompt::new(TaskKind::SqlGeneration, &reformulated);
        base.original_question = Some(question.to_string());
        base.examples = prompt_examples;
        base.instructions = prompt_instructions;
        base.schema = schema;
        if cfg.include_evidence {
            base.evidence = evidence.to_vec();
        }

        // ---- CoT plan (§3.1.2) ----------------------------------------
        let plan: Option<Plan> = if cfg.use_plan {
            let mut plan_prompt = base.clone();
            plan_prompt.task = TaskKind::PlanGeneration;
            let p = self
                .model
                .complete(&CompletionRequest::new(plan_prompt))
                .as_plan()
                .cloned()
                .unwrap_or_default();
            Some(if cfg.use_pseudo_sql { p } else { p.without_pseudo_sql() })
        } else {
            None
        };
        base.plan = plan.clone();

        // ---- generation with self-correction --------------------------
        let mut errors: Vec<String> = Vec::new();
        let mut last_sql: Option<String> = None;
        for attempt in 0..=cfg.max_retries {
            let mut prompt = base.clone();
            prompt.errors = errors.clone();
            let mut round_errors: Vec<String> = Vec::new();
            // Valid candidates this round, with their result fingerprints
            // (used by self-consistency voting).
            let mut valid: Vec<(String, Vec<String>)> = Vec::new();
            for seed in 0..cfg.candidates.max(1) as u64 {
                let sql = match self
                    .model
                    .complete(&CompletionRequest::with_seed(prompt.clone(), seed))
                    .as_sql()
                {
                    Some(s) => s.to_string(),
                    None => continue,
                };
                match validate(db, &sql) {
                    Ok(fingerprint) => {
                        if cfg.candidate_selection == CandidateSelection::FirstValid {
                            return GenerationResult {
                                sql: Some(sql),
                                attempts: attempt + 1,
                                validated: true,
                                plan,
                                reformulated,
                                intents,
                                errors,
                                used_examples,
                                used_instructions,
                                used_schema,
                                final_prompt: prompt,
                            };
                        }
                        valid.push((sql, fingerprint));
                    }
                    Err(e) => {
                        round_errors.push(e);
                        last_sql = Some(sql);
                    }
                }
            }
            if !valid.is_empty() {
                // Self-consistency: the result the most candidates agree on
                // wins; ties break toward the earliest candidate.
                let winner = valid
                    .iter()
                    .enumerate()
                    .max_by_key(|(i, (_, fp))| {
                        let votes = valid.iter().filter(|(_, other)| other == fp).count();
                        (votes, std::cmp::Reverse(*i))
                    })
                    .map(|(_, (sql, _))| sql.clone())
                    .expect("non-empty");
                return GenerationResult {
                    sql: Some(winner),
                    attempts: attempt + 1,
                    validated: true,
                    plan,
                    reformulated,
                    intents,
                    errors,
                    used_examples,
                    used_instructions,
                    used_schema,
                    final_prompt: prompt,
                };
            }
            errors.extend(round_errors);
        }

        let final_prompt = {
            let mut p = base;
            p.errors = errors.clone();
            p
        };
        GenerationResult {
            sql: last_sql,
            attempts: cfg.max_retries + 1,
            validated: false,
            plan,
            reformulated,
            intents,
            errors,
            used_examples,
            used_instructions,
            used_schema,
            final_prompt,
        }
    }
}

/// Syntactic + semantic validation: parse, then execute against the
/// database (execution-guided checking, as in the paper's self-correction
/// citation 25). Returns the result fingerprint for candidate voting.
fn validate(db: &Database, sql: &str) -> Result<Vec<String>, String> {
    genedit_sql::parser::parse_statement(sql).map_err(|e| e.to_string())?;
    let rs = execute_sql(db, sql).map_err(|e| e.to_string())?;
    Ok(rs.fingerprint())
}

#[cfg(test)]
mod tests {
    use super::*;
    use genedit_bird::{DomainBundle, SPORTS};
    use genedit_llm::{OracleConfig, OracleModel, TaskRegistry};

    fn setup() -> (DomainBundle, KnowledgeIndex, OracleModel) {
        let bundle = DomainBundle::build(&SPORTS, (4, 2, 1), 42);
        let index = KnowledgeIndex::build(bundle.build_knowledge());
        let mut reg = TaskRegistry::new();
        for t in &bundle.tasks {
            reg.register(t.clone());
        }
        // Stochastic failure channels off: these tests observe the causal
        // effects of knowledge presence/absence, not the noise model.
        let oracle = OracleModel::with_config(
            reg,
            OracleConfig {
                noise_rate: 0.0,
                pseudo_drift_probability: 0.0,
                drift_probability: 0.0,
                canonical_form_penalty: 0.0,
                ..Default::default()
            },
        );
        (bundle, index, oracle)
    }

    #[test]
    fn simple_task_generates_correct_sql() {
        let (bundle, index, oracle) = setup();
        let pipeline = GenEditPipeline::new(&oracle);
        let task = &bundle.tasks[0];
        let result = pipeline.generate(&task.question, &index, &bundle.db, &[]);
        assert!(result.validated, "errors: {:?}", result.errors);
        let (ok, note) = genedit_bird::score_prediction(
            &bundle.db,
            &task.gold_sql,
            result.sql.as_deref(),
        );
        assert!(ok, "note: {note:?}, sql: {:?}", result.sql);
    }

    #[test]
    fn pipeline_populates_context() {
        let (bundle, index, oracle) = setup();
        let pipeline = GenEditPipeline::new(&oracle);
        // The challenging QoQ task needs examples/instructions/schema.
        let task = bundle
            .tasks
            .iter()
            .find(|t| t.difficulty == genedit_llm::Difficulty::Challenging)
            .unwrap();
        let result = pipeline.generate(&task.question, &index, &bundle.db, &[]);
        assert!(!result.used_examples.is_empty());
        assert!(!result.used_instructions.is_empty());
        assert!(!result.used_schema.is_empty());
        assert!(result.plan.is_some());
        assert!(result.reformulated.starts_with("Show me"));
        assert_eq!(result.intents, vec![task.intent.clone()]);
    }

    #[test]
    fn challenging_task_with_full_pipeline_succeeds() {
        let (bundle, index, oracle) = setup();
        let pipeline = GenEditPipeline::new(&oracle);
        let task = bundle
            .tasks
            .iter()
            .find(|t| t.difficulty == genedit_llm::Difficulty::Challenging)
            .unwrap();
        let result = pipeline.generate(&task.question, &index, &bundle.db, &[]);
        let (ok, note) = genedit_bird::score_prediction(
            &bundle.db,
            &task.gold_sql,
            result.sql.as_deref(),
        );
        assert!(ok, "note: {note:?}\nplan: {:?}\nsql: {:?}", result.plan, result.sql);
    }

    #[test]
    fn without_instructions_term_tasks_fail() {
        let (bundle, index, oracle) = setup();
        let cfg = PipelineConfig { use_instructions: false, ..Default::default() };
        let pipeline = GenEditPipeline::with_config(&oracle, cfg);
        // Task s05 is the "our entities" term task.
        let task = bundle.tasks.iter().find(|t| !t.required_terms.is_empty()).unwrap();
        let result = pipeline.generate(&task.question, &index, &bundle.db, &[]);
        let (ok, _) = genedit_bird::score_prediction(
            &bundle.db,
            &task.gold_sql,
            result.sql.as_deref(),
        );
        assert!(!ok, "term task should fail without instructions: {:?}", result.sql);
    }

    #[test]
    fn plan_carries_pseudo_sql_and_ablation_strips_it() {
        let (bundle, index, oracle) = setup();
        let task = bundle
            .tasks
            .iter()
            .find(|t| t.difficulty == genedit_llm::Difficulty::Challenging)
            .unwrap();

        let pipeline = GenEditPipeline::new(&oracle);
        let result = pipeline.generate(&task.question, &index, &bundle.db, &[]);
        let plan = result.plan.unwrap();
        assert!(plan.steps.iter().any(|s| s.pseudo_sql.is_some()));

        let cfg = PipelineConfig { use_pseudo_sql: false, ..Default::default() };
        let pipeline = GenEditPipeline::with_config(&oracle, cfg);
        let result = pipeline.generate(&task.question, &index, &bundle.db, &[]);
        let plan = result.plan.unwrap();
        assert!(plan.steps.iter().all(|s| s.pseudo_sql.is_none()));
    }

    #[test]
    fn majority_voting_returns_a_valid_candidate() {
        let (bundle, index, oracle) = setup();
        let cfg = PipelineConfig {
            candidates: 3,
            candidate_selection: CandidateSelection::MajorityResult,
            ..Default::default()
        };
        let pipeline = GenEditPipeline::with_config(&oracle, cfg);
        let task = &bundle.tasks[0];
        let voted = pipeline.generate(&task.question, &index, &bundle.db, &[]);
        assert!(voted.validated);
        let (ok, note) = genedit_bird::score_prediction(
            &bundle.db,
            &task.gold_sql,
            voted.sql.as_deref(),
        );
        assert!(ok, "{note:?}");
        // With an oracle that produces identical candidates, voting and
        // first-valid agree.
        let first = GenEditPipeline::new(&oracle)
            .generate(&task.question, &index, &bundle.db, &[]);
        assert_eq!(voted.sql, first.sql);
    }

    #[test]
    fn validation_catches_bad_sql() {
        let (bundle, _, _) = setup();
        assert!(validate(&bundle.db, "SELECT * FROM SPORTS_ORGS").is_ok());
        assert!(validate(&bundle.db, "SELEC nope").is_err());
        assert!(validate(&bundle.db, "SELECT * FROM MISSING_TABLE").is_err());
    }
}
