//! Regression testing and merge approval for staged edits (§4.2.1):
//! "Once staged, the edits to the knowledge set are tested for regression.
//! Currently, these staged edits require human approval after passing
//! regression testing."

use crate::index::KnowledgeIndex;
use crate::pipeline::GenEditPipeline;
use genedit_knowledge::{
    CommitError, DurableKnowledgeStore, KnowledgeError, KnowledgeSet, StagingArea, StoreError,
};
use genedit_llm::LanguageModel;
use genedit_sql::catalog::Database;
use std::fmt;

/// A golden question whose behaviour must not regress.
#[derive(Debug, Clone)]
pub struct GoldenQuery {
    /// The natural-language question.
    pub question: String,
    /// The reference SQL whose results define "correct".
    pub gold_sql: String,
}

/// Result of running the golden suite before/after the staged edits.
#[derive(Debug, Clone)]
pub struct RegressionOutcome {
    /// Correct-before count.
    pub before_correct: usize,
    /// Correct-after count.
    pub after_correct: usize,
    /// Questions that were right before and wrong after (blocking).
    pub regressions: Vec<String>,
    /// Questions newly fixed by the staged edits.
    pub improvements: Vec<String>,
    /// Size of the golden suite.
    pub total: usize,
    /// Spans that took their degradation path during the *before* runs.
    /// A degraded before-run can manufacture a spurious regression (the
    /// baseline looked worse than the deployed system really is) — or,
    /// symmetrically, mask a real one.
    pub before_degraded: usize,
    /// Degraded spans during the *after* (staged-view) runs.
    pub after_degraded: usize,
}

impl RegressionOutcome {
    /// Edits pass regression testing when nothing that worked broke.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Whether the before/after diff can be trusted: no generation on
    /// either side ran through a degraded operator. When false, approvers
    /// should re-run the suite rather than act on the diff.
    pub fn gate_trustworthy(&self) -> bool {
        self.before_degraded == 0 && self.after_degraded == 0
    }
}

/// Execute the golden suite twice — against the deployed knowledge set and
/// against the staged view — and diff the outcomes.
pub fn run_regression<M: LanguageModel>(
    pipeline: &GenEditPipeline<M>,
    db: &Database,
    deployed: &KnowledgeSet,
    staging: &StagingArea,
    golden: &[GoldenQuery],
) -> Result<RegressionOutcome, genedit_knowledge::KnowledgeError> {
    let staged_ks = staging.materialize(deployed)?;
    let before_index = KnowledgeIndex::build(deployed.clone());
    let after_index = KnowledgeIndex::build(staged_ks);

    let mut outcome = RegressionOutcome {
        before_correct: 0,
        after_correct: 0,
        regressions: Vec::new(),
        improvements: Vec::new(),
        total: golden.len(),
        before_degraded: 0,
        after_degraded: 0,
    };
    for g in golden {
        let before = pipeline.generate(&g.question, &before_index, db, &[]);
        let (before_ok, _) = genedit_bird::score_prediction(db, &g.gold_sql, before.sql.as_deref());
        let after = pipeline.generate(&g.question, &after_index, db, &[]);
        let (after_ok, _) = genedit_bird::score_prediction(db, &g.gold_sql, after.sql.as_deref());
        outcome.before_degraded += before.degraded_operator_count();
        outcome.after_degraded += after.degraded_operator_count();
        if before_ok {
            outcome.before_correct += 1;
        }
        if after_ok {
            outcome.after_correct += 1;
        }
        match (before_ok, after_ok) {
            (true, false) => outcome.regressions.push(g.question.clone()),
            (false, true) => outcome.improvements.push(g.question.clone()),
            _ => {}
        }
    }
    Ok(outcome)
}

/// What happened to a submission.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmissionResult {
    /// Merged; carries the checkpoint id recorded just before the merge.
    Merged {
        /// Checkpoint recorded immediately before the merge (rollback
        /// target).
        checkpoint: u64,
        /// The regression diff that justified the merge.
        outcome: RegressionOutcome,
    },
    /// Failed regression testing; nothing was merged.
    RegressionFailed(RegressionOutcome),
    /// Passed regression but the (human) approver declined.
    ApprovalDeclined(RegressionOutcome),
}

impl SubmissionResult {
    /// The regression outcome behind this decision, whatever it was.
    pub fn outcome(&self) -> &RegressionOutcome {
        match self {
            SubmissionResult::Merged { outcome, .. }
            | SubmissionResult::RegressionFailed(outcome)
            | SubmissionResult::ApprovalDeclined(outcome) => outcome,
        }
    }

    /// Whether the gate that produced this decision ran degradation-free
    /// — see [`RegressionOutcome::gate_trustworthy`].
    pub fn gate_trustworthy(&self) -> bool {
        self.outcome().gate_trustworthy()
    }
}

impl PartialEq for RegressionOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.before_correct == other.before_correct
            && self.after_correct == other.after_correct
            && self.regressions == other.regressions
    }
}

/// Why a submission could not complete (distinct from a submission that
/// completed with a negative decision, which is a [`SubmissionResult`]).
#[derive(Debug)]
pub enum SubmitError {
    /// A staged edit no longer applies to the deployed set (detected
    /// while materializing the staged view; nothing was run or merged).
    Knowledge(KnowledgeError),
    /// The approved merge failed while committing to the in-memory set.
    Commit(CommitError),
    /// The approved merge failed while committing to the durable store.
    Store(StoreError),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Knowledge(e) => write!(f, "staged edits no longer apply: {e}"),
            SubmitError::Commit(e) => write!(f, "merge failed: {e}"),
            SubmitError::Store(e) => write!(f, "durable merge failed: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<KnowledgeError> for SubmitError {
    fn from(e: KnowledgeError) -> SubmitError {
        SubmitError::Knowledge(e)
    }
}
impl From<CommitError> for SubmitError {
    fn from(e: CommitError) -> SubmitError {
        SubmitError::Commit(e)
    }
}
impl From<StoreError> for SubmitError {
    fn from(e: StoreError) -> SubmitError {
        SubmitError::Store(e)
    }
}

/// The full submission flow: regression test → approval → merge.
/// `approve` stands in for the human reviewer.
pub fn submit_edits<M: LanguageModel>(
    pipeline: &GenEditPipeline<M>,
    db: &Database,
    deployed: &mut KnowledgeSet,
    staging: StagingArea,
    golden: &[GoldenQuery],
    approve: impl FnOnce(&RegressionOutcome) -> bool,
    merge_label: &str,
) -> Result<SubmissionResult, SubmitError> {
    let outcome = run_regression(pipeline, db, deployed, &staging, golden)?;
    if !outcome.passed() {
        return Ok(SubmissionResult::RegressionFailed(outcome));
    }
    if !approve(&outcome) {
        return Ok(SubmissionResult::ApprovalDeclined(outcome));
    }
    let checkpoint = staging.commit(deployed, merge_label)?;
    Ok(SubmissionResult::Merged {
        checkpoint,
        outcome,
    })
}

/// [`submit_edits`] against a [`DurableKnowledgeStore`]: an approved merge
/// is journaled (`BatchStart ‖ edits ‖ BatchCommit`) before it becomes
/// visible, so a crash at any point during the merge recovers to either
/// the full merge or none of it.
pub fn submit_edits_durable<M: LanguageModel>(
    pipeline: &GenEditPipeline<M>,
    db: &Database,
    store: &mut DurableKnowledgeStore,
    staging: StagingArea,
    golden: &[GoldenQuery],
    approve: impl FnOnce(&RegressionOutcome) -> bool,
    merge_label: &str,
) -> Result<SubmissionResult, SubmitError> {
    submit_edits_durable_from(
        pipeline,
        db,
        store,
        staging,
        golden,
        approve,
        merge_label,
        None,
    )
}

/// [`submit_edits_durable`] with provenance: `origin` is the serving
/// request ID whose feedback produced this batch (threaded through to the
/// `store.commit` span), so knowledge mutations stay joinable with serve
/// traces and flight-recorder dumps.
#[allow(clippy::too_many_arguments)]
pub fn submit_edits_durable_from<M: LanguageModel>(
    pipeline: &GenEditPipeline<M>,
    db: &Database,
    store: &mut DurableKnowledgeStore,
    staging: StagingArea,
    golden: &[GoldenQuery],
    approve: impl FnOnce(&RegressionOutcome) -> bool,
    merge_label: &str,
    origin: Option<&str>,
) -> Result<SubmissionResult, SubmitError> {
    let outcome = run_regression(pipeline, db, store.set(), &staging, golden)?;
    if !outcome.passed() {
        return Ok(SubmissionResult::RegressionFailed(outcome));
    }
    if !approve(&outcome) {
        return Ok(SubmissionResult::ApprovalDeclined(outcome));
    }
    let checkpoint = store.commit_from(staging, merge_label, origin)?;
    Ok(SubmissionResult::Merged {
        checkpoint,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use genedit_bird::{DomainBundle, SPORTS};
    use genedit_knowledge::{Edit, SourceRef};
    use genedit_llm::{FaultConfig, FaultInjector, OracleConfig, OracleModel, TaskRegistry};

    fn setup() -> (DomainBundle, KnowledgeSet, OracleModel) {
        let bundle = DomainBundle::build(&SPORTS, (8, 7, 3), 42);
        let ks = bundle.build_knowledge();
        let mut reg = TaskRegistry::new();
        for t in &bundle.tasks {
            reg.register(t.clone());
        }
        let oracle = OracleModel::with_config(
            reg,
            OracleConfig {
                noise_rate: 0.0,
                pseudo_drift_probability: 0.0,
                drift_probability: 0.0,
                canonical_form_penalty: 0.0,
                ..Default::default()
            },
        );
        (bundle, ks, oracle)
    }

    fn golden_from(bundle: &DomainBundle, n: usize) -> Vec<GoldenQuery> {
        bundle
            .tasks
            .iter()
            .take(n)
            .map(|t| GoldenQuery {
                question: t.question.clone(),
                gold_sql: t.gold_sql.clone(),
            })
            .collect()
    }

    #[test]
    fn benign_edit_passes_and_merges() {
        let (bundle, mut ks, oracle) = setup();
        let pipeline = GenEditPipeline::new(&oracle);
        let golden = golden_from(&bundle, 5);
        let mut staging = StagingArea::new();
        staging.stage(Edit::InsertInstruction {
            intent: None,
            text: "Prefer explicit column lists over SELECT *".into(),
            sql_hint: None,
            term: None,
            source: SourceRef::Feedback { feedback_id: 1 },
        });
        let before_len = ks.instructions().len();
        let result = submit_edits(
            &pipeline,
            &bundle.db,
            &mut ks,
            staging,
            &golden,
            |outcome| outcome.passed(),
            "merge benign",
        )
        .unwrap();
        assert!(matches!(result, SubmissionResult::Merged { .. }));
        assert_eq!(ks.instructions().len(), before_len + 1);
    }

    #[test]
    fn harmful_edit_is_blocked() {
        let (bundle, mut ks, oracle) = setup();
        let pipeline = GenEditPipeline::new(&oracle);
        let golden = golden_from(&bundle, 8);
        // Deleting every instruction and every ownership-term example
        // breaks the "our" term tasks.
        let mut staging = StagingArea::new();
        for ins in ks.instructions() {
            staging.stage(Edit::DeleteInstruction { id: ins.id });
        }
        for ex in ks.examples() {
            if ex.retrieval_text().to_uppercase().contains("COC") {
                staging.stage(Edit::DeleteExample { id: ex.id });
            }
        }
        let before = ks.clone();
        let result = submit_edits(
            &pipeline,
            &bundle.db,
            &mut ks,
            staging,
            &golden,
            |_| true,
            "merge harmful",
        )
        .unwrap();
        match result {
            SubmissionResult::RegressionFailed(outcome) => {
                assert!(!outcome.regressions.is_empty());
                assert!(outcome.after_correct < outcome.before_correct);
            }
            other => panic!("expected regression failure, got {other:?}"),
        }
        assert!(ks.content_eq(&before), "deployed set must be untouched");
    }

    #[test]
    fn approval_gate_respected() {
        let (bundle, mut ks, oracle) = setup();
        let pipeline = GenEditPipeline::new(&oracle);
        let golden = golden_from(&bundle, 3);
        let mut staging = StagingArea::new();
        staging.stage(Edit::InsertInstruction {
            intent: None,
            text: "harmless note".into(),
            sql_hint: None,
            term: None,
            source: SourceRef::Manual,
        });
        let before = ks.clone();
        let result = submit_edits(
            &pipeline,
            &bundle.db,
            &mut ks,
            staging,
            &golden,
            |_| false, // reviewer declines
            "declined",
        )
        .unwrap();
        assert!(matches!(result, SubmissionResult::ApprovalDeclined(_)));
        assert!(ks.content_eq(&before));
    }

    #[test]
    fn merge_checkpoint_allows_revert() {
        let (bundle, mut ks, oracle) = setup();
        let pipeline = GenEditPipeline::new(&oracle);
        let mut staging = StagingArea::new();
        staging.stage(Edit::InsertInstruction {
            intent: None,
            text: "note".into(),
            sql_hint: None,
            term: None,
            source: SourceRef::Manual,
        });
        let before = ks.clone();
        let result =
            submit_edits(&pipeline, &bundle.db, &mut ks, staging, &[], |_| true, "m").unwrap();
        let SubmissionResult::Merged { checkpoint, .. } = result else {
            panic!("expected merge");
        };
        ks.revert_to(checkpoint).unwrap();
        assert!(ks.content_eq(&before));
    }

    #[test]
    fn healthy_runs_report_a_trustworthy_gate() {
        let (bundle, mut ks, oracle) = setup();
        let pipeline = GenEditPipeline::new(&oracle);
        let golden = golden_from(&bundle, 3);
        let mut staging = StagingArea::new();
        staging.stage(Edit::InsertInstruction {
            intent: None,
            text: "harmless note".into(),
            sql_hint: None,
            term: None,
            source: SourceRef::Manual,
        });
        let result = submit_edits(
            &pipeline,
            &bundle.db,
            &mut ks,
            staging,
            &golden,
            |_| true,
            "merge",
        )
        .unwrap();
        assert!(result.gate_trustworthy());
        assert_eq!(result.outcome().before_degraded, 0);
        assert_eq!(result.outcome().after_degraded, 0);
    }

    #[test]
    fn degraded_runs_mark_the_gate_untrustworthy() {
        let (bundle, mut ks, oracle) = setup();
        // Every model call fails and there is no resilience layer, so the
        // operator ladder degrades on both the before and after runs.
        let faulty = FaultInjector::new(&oracle, FaultConfig::transient_only(1.0), 7);
        let pipeline = GenEditPipeline::new(&faulty);
        let golden = golden_from(&bundle, 3);
        let mut staging = StagingArea::new();
        staging.stage(Edit::InsertInstruction {
            intent: None,
            text: "harmless note".into(),
            sql_hint: None,
            term: None,
            source: SourceRef::Manual,
        });
        let result = submit_edits(
            &pipeline,
            &bundle.db,
            &mut ks,
            staging,
            &golden,
            |_| true,
            "merge under fire",
        )
        .unwrap();
        let outcome = result.outcome();
        assert!(outcome.before_degraded > 0, "{outcome:?}");
        assert!(outcome.after_degraded > 0, "{outcome:?}");
        assert!(!result.gate_trustworthy());
    }

    #[test]
    fn durable_submission_journals_the_merge() {
        use genedit_knowledge::{DurableKnowledgeStore, MemFs, StoreConfig, StoreFs};
        use std::sync::Arc;

        let (bundle, ks, oracle) = setup();
        let pipeline = GenEditPipeline::new(&oracle);
        let mem = Arc::new(MemFs::new());
        let fs: Arc<dyn StoreFs> = Arc::clone(&mem) as Arc<dyn StoreFs>;
        let mut store =
            DurableKnowledgeStore::open_with(fs, "k.json", "k.wal", StoreConfig::default(), None)
                .unwrap();
        // Seed the store from the bundle's knowledge log, durably.
        for logged in ks.log() {
            store.apply(logged.edit.clone()).unwrap();
        }
        let mut staging = StagingArea::new();
        staging.stage(Edit::InsertInstruction {
            intent: None,
            text: "durable note".into(),
            sql_hint: None,
            term: None,
            source: SourceRef::Feedback { feedback_id: 9 },
        });
        let golden = golden_from(&bundle, 3);
        let result = submit_edits_durable(
            &pipeline,
            &bundle.db,
            &mut store,
            staging,
            &golden,
            |outcome| outcome.passed(),
            "durable merge",
        )
        .unwrap();
        assert!(matches!(result, SubmissionResult::Merged { .. }));
        let live = store.set().clone();
        // The merge survives a crash: everything was journaled first.
        mem.crash();
        let fs2: Arc<dyn StoreFs> = Arc::clone(&mem) as Arc<dyn StoreFs>;
        let reopened =
            DurableKnowledgeStore::open_with(fs2, "k.json", "k.wal", StoreConfig::default(), None)
                .unwrap();
        assert!(reopened.set().content_eq(&live));
        assert!(reopened
            .set()
            .instructions()
            .iter()
            .any(|i| i.text == "durable note"));
    }
}
