//! Regression testing and merge approval for staged edits (§4.2.1):
//! "Once staged, the edits to the knowledge set are tested for regression.
//! Currently, these staged edits require human approval after passing
//! regression testing."

use crate::index::KnowledgeIndex;
use crate::pipeline::GenEditPipeline;
use genedit_knowledge::{KnowledgeSet, StagingArea};
use genedit_llm::LanguageModel;
use genedit_sql::catalog::Database;

/// A golden question whose behaviour must not regress.
#[derive(Debug, Clone)]
pub struct GoldenQuery {
    pub question: String,
    pub gold_sql: String,
}

/// Result of running the golden suite before/after the staged edits.
#[derive(Debug, Clone)]
pub struct RegressionOutcome {
    /// Correct-before count.
    pub before_correct: usize,
    /// Correct-after count.
    pub after_correct: usize,
    /// Questions that were right before and wrong after (blocking).
    pub regressions: Vec<String>,
    /// Questions newly fixed by the staged edits.
    pub improvements: Vec<String>,
    pub total: usize,
}

impl RegressionOutcome {
    /// Edits pass regression testing when nothing that worked broke.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Execute the golden suite twice — against the deployed knowledge set and
/// against the staged view — and diff the outcomes.
pub fn run_regression<M: LanguageModel>(
    pipeline: &GenEditPipeline<M>,
    db: &Database,
    deployed: &KnowledgeSet,
    staging: &StagingArea,
    golden: &[GoldenQuery],
) -> Result<RegressionOutcome, genedit_knowledge::KnowledgeError> {
    let staged_ks = staging.materialize(deployed)?;
    let before_index = KnowledgeIndex::build(deployed.clone());
    let after_index = KnowledgeIndex::build(staged_ks);

    let mut outcome = RegressionOutcome {
        before_correct: 0,
        after_correct: 0,
        regressions: Vec::new(),
        improvements: Vec::new(),
        total: golden.len(),
    };
    for g in golden {
        let before = pipeline.generate(&g.question, &before_index, db, &[]);
        let (before_ok, _) = genedit_bird::score_prediction(db, &g.gold_sql, before.sql.as_deref());
        let after = pipeline.generate(&g.question, &after_index, db, &[]);
        let (after_ok, _) = genedit_bird::score_prediction(db, &g.gold_sql, after.sql.as_deref());
        if before_ok {
            outcome.before_correct += 1;
        }
        if after_ok {
            outcome.after_correct += 1;
        }
        match (before_ok, after_ok) {
            (true, false) => outcome.regressions.push(g.question.clone()),
            (false, true) => outcome.improvements.push(g.question.clone()),
            _ => {}
        }
    }
    Ok(outcome)
}

/// What happened to a submission.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmissionResult {
    /// Merged; carries the checkpoint id recorded just before the merge.
    Merged {
        checkpoint: u64,
        outcome: RegressionOutcome,
    },
    /// Failed regression testing; nothing was merged.
    RegressionFailed(RegressionOutcome),
    /// Passed regression but the (human) approver declined.
    ApprovalDeclined(RegressionOutcome),
}

impl PartialEq for RegressionOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.before_correct == other.before_correct
            && self.after_correct == other.after_correct
            && self.regressions == other.regressions
    }
}

/// The full submission flow: regression test → approval → merge.
/// `approve` stands in for the human reviewer.
pub fn submit_edits<M: LanguageModel>(
    pipeline: &GenEditPipeline<M>,
    db: &Database,
    deployed: &mut KnowledgeSet,
    staging: StagingArea,
    golden: &[GoldenQuery],
    approve: impl FnOnce(&RegressionOutcome) -> bool,
    merge_label: &str,
) -> Result<SubmissionResult, genedit_knowledge::KnowledgeError> {
    let outcome = run_regression(pipeline, db, deployed, &staging, golden)?;
    if !outcome.passed() {
        return Ok(SubmissionResult::RegressionFailed(outcome));
    }
    if !approve(&outcome) {
        return Ok(SubmissionResult::ApprovalDeclined(outcome));
    }
    let checkpoint = staging.commit(deployed, merge_label)?;
    Ok(SubmissionResult::Merged {
        checkpoint,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use genedit_bird::{DomainBundle, SPORTS};
    use genedit_knowledge::{Edit, SourceRef};
    use genedit_llm::{OracleConfig, OracleModel, TaskRegistry};

    fn setup() -> (DomainBundle, KnowledgeSet, OracleModel) {
        let bundle = DomainBundle::build(&SPORTS, (8, 7, 3), 42);
        let ks = bundle.build_knowledge();
        let mut reg = TaskRegistry::new();
        for t in &bundle.tasks {
            reg.register(t.clone());
        }
        let oracle = OracleModel::with_config(
            reg,
            OracleConfig {
                noise_rate: 0.0,
                pseudo_drift_probability: 0.0,
                drift_probability: 0.0,
                canonical_form_penalty: 0.0,
                ..Default::default()
            },
        );
        (bundle, ks, oracle)
    }

    fn golden_from(bundle: &DomainBundle, n: usize) -> Vec<GoldenQuery> {
        bundle
            .tasks
            .iter()
            .take(n)
            .map(|t| GoldenQuery {
                question: t.question.clone(),
                gold_sql: t.gold_sql.clone(),
            })
            .collect()
    }

    #[test]
    fn benign_edit_passes_and_merges() {
        let (bundle, mut ks, oracle) = setup();
        let pipeline = GenEditPipeline::new(&oracle);
        let golden = golden_from(&bundle, 5);
        let mut staging = StagingArea::new();
        staging.stage(Edit::InsertInstruction {
            intent: None,
            text: "Prefer explicit column lists over SELECT *".into(),
            sql_hint: None,
            term: None,
            source: SourceRef::Feedback { feedback_id: 1 },
        });
        let before_len = ks.instructions().len();
        let result = submit_edits(
            &pipeline,
            &bundle.db,
            &mut ks,
            staging,
            &golden,
            |outcome| outcome.passed(),
            "merge benign",
        )
        .unwrap();
        assert!(matches!(result, SubmissionResult::Merged { .. }));
        assert_eq!(ks.instructions().len(), before_len + 1);
    }

    #[test]
    fn harmful_edit_is_blocked() {
        let (bundle, mut ks, oracle) = setup();
        let pipeline = GenEditPipeline::new(&oracle);
        let golden = golden_from(&bundle, 8);
        // Deleting every instruction and every ownership-term example
        // breaks the "our" term tasks.
        let mut staging = StagingArea::new();
        for ins in ks.instructions() {
            staging.stage(Edit::DeleteInstruction { id: ins.id });
        }
        for ex in ks.examples() {
            if ex.retrieval_text().to_uppercase().contains("COC") {
                staging.stage(Edit::DeleteExample { id: ex.id });
            }
        }
        let before = ks.clone();
        let result = submit_edits(
            &pipeline,
            &bundle.db,
            &mut ks,
            staging,
            &golden,
            |_| true,
            "merge harmful",
        )
        .unwrap();
        match result {
            SubmissionResult::RegressionFailed(outcome) => {
                assert!(!outcome.regressions.is_empty());
                assert!(outcome.after_correct < outcome.before_correct);
            }
            other => panic!("expected regression failure, got {other:?}"),
        }
        assert!(ks.content_eq(&before), "deployed set must be untouched");
    }

    #[test]
    fn approval_gate_respected() {
        let (bundle, mut ks, oracle) = setup();
        let pipeline = GenEditPipeline::new(&oracle);
        let golden = golden_from(&bundle, 3);
        let mut staging = StagingArea::new();
        staging.stage(Edit::InsertInstruction {
            intent: None,
            text: "harmless note".into(),
            sql_hint: None,
            term: None,
            source: SourceRef::Manual,
        });
        let before = ks.clone();
        let result = submit_edits(
            &pipeline,
            &bundle.db,
            &mut ks,
            staging,
            &golden,
            |_| false, // reviewer declines
            "declined",
        )
        .unwrap();
        assert!(matches!(result, SubmissionResult::ApprovalDeclined(_)));
        assert!(ks.content_eq(&before));
    }

    #[test]
    fn merge_checkpoint_allows_revert() {
        let (bundle, mut ks, oracle) = setup();
        let pipeline = GenEditPipeline::new(&oracle);
        let mut staging = StagingArea::new();
        staging.stage(Edit::InsertInstruction {
            intent: None,
            text: "note".into(),
            sql_hint: None,
            term: None,
            source: SourceRef::Manual,
        });
        let before = ks.clone();
        let result =
            submit_edits(&pipeline, &bundle.db, &mut ks, staging, &[], |_| true, "m").unwrap();
        let SubmissionResult::Merged { checkpoint, .. } = result else {
            panic!("expected merge");
        };
        ks.revert_to(checkpoint).unwrap();
        assert!(ks.content_eq(&before));
    }
}
