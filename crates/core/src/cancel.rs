//! Cooperative cancellation for in-flight generations.
//!
//! The serving runtime hands each worker a [`CancelToken`] carrying the
//! request's deadline and a caller-cancellable flag. The pipeline checks
//! it **between operators** (never mid-operator — operators are the unit
//! of useful work) and returns a partial, clearly-marked result instead
//! of burning model calls on an answer nobody is waiting for.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shareable cancellation signal: an explicit flag plus an optional
/// deadline. Cloning shares the flag — cancelling any clone cancels all.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never fires unless [`CancelToken::cancel`] is called.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that additionally fires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether the token has fired — explicitly cancelled, or past its
    /// deadline.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::SeqCst) {
            return true;
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// The deadline, when one was attached.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn cancel_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn deadline_fires_without_explicit_cancel() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let far = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        far.cancel();
        assert!(far.is_cancelled());
    }
}
