//! Cooperative cancellation for in-flight generations.
//!
//! The token itself now lives in [`genedit_llm::cancel`]: the hedged
//! dispatch layer ([`genedit_llm::hedge`]) sits below this crate in the
//! dependency graph and needs to cancel the losing copy of a hedged
//! pair, and the retry layer slices its backoff sleeps against the same
//! token. This module re-exports it so `genedit_core::CancelToken` (and
//! every existing call-site) keeps working unchanged.

pub use genedit_llm::cancel::CancelToken;
