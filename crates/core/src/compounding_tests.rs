//! Focused tests for the paper's central retrieval insight (§3.1.1):
//! *context expansion* — "the choice of relevant examples informs the
//! choice of instructions to retrieve … and improves the performance of
//! subsequent retrieval operators".

#[cfg(test)]
mod tests {
    use crate::index::KnowledgeIndex;
    use genedit_knowledge::{Edit, FragmentKind, KnowledgeSet, SourceRef, SqlFragment};

    /// A knowledge set engineered so the needed instruction shares almost
    /// no vocabulary with the *question*, but plenty with the *example*
    /// the question retrieves — the situation context expansion exists
    /// for.
    fn bridge_knowledge() -> KnowledgeSet {
        let mut ks = KnowledgeSet::new();
        // The example a QoQFP question retrieves: it mentions the ranking
        // multiplier vocabulary.
        ks.apply(Edit::InsertExample {
            intent: None,
            description: "QoQFP ranking uses a negative multiplier on the metric change".into(),
            fragment: SqlFragment::new(
                FragmentKind::OrderBy,
                "ORDER BY (-1 * (metric_b - metric_a))",
                "main",
            ),
            term: Some("QoQFP".into()),
            source: SourceRef::QueryLog { log_id: 1 },
        })
        .unwrap();
        // The instruction that matters — no question vocabulary at all,
        // only the example's.
        ks.apply(Edit::InsertInstruction {
            intent: None,
            text: "apply a negative multiplier when ranking the metric change".into(),
            sql_hint: Some("-1 * (metric_b - metric_a)".into()),
            term: None,
            source: SourceRef::Document {
                doc_id: 1,
                section: "metrics".into(),
            },
        })
        .unwrap();
        // Distractor instructions that *do* share question vocabulary.
        for (i, text) in [
            "organisations in Canada report in CAD currency",
            "best results should be limited to five organisations",
            "Canada and USA fiscal years both end in December",
        ]
        .iter()
        .enumerate()
        {
            ks.apply(Edit::InsertInstruction {
                intent: None,
                text: (*text).into(),
                sql_hint: None,
                term: None,
                source: SourceRef::Document {
                    doc_id: 2,
                    section: format!("s{i}"),
                },
            })
            .unwrap();
        }
        ks
    }

    #[test]
    fn context_expansion_promotes_the_bridged_instruction() {
        let index = KnowledgeIndex::build(bridge_knowledge());
        let question = "Identify the organisations with the best QoQFP in Canada";

        // Without expansion: plain query embedding.
        let plain = index.embedder().embed(question);
        let without: Vec<String> = index
            .top_instructions(&plain, &[], 5)
            .into_iter()
            .map(|(i, _)| i.text.clone())
            .collect();

        // With expansion: the retrieved example's text joins the query —
        // operator 4's re-ranking input per §3.1.1.
        let examples = index.top_examples(&plain, &[], 2);
        let expansion_texts: Vec<String> =
            examples.iter().map(|(e, _)| e.retrieval_text()).collect();
        let refs: Vec<&str> = expansion_texts.iter().map(|s| s.as_str()).collect();
        let expanded = index.embedder().embed_expanded(question, &refs);
        let with: Vec<String> = index
            .top_instructions(&expanded, &[], 5)
            .into_iter()
            .map(|(i, _)| i.text.clone())
            .collect();

        let needle = "negative multiplier";
        let rank_without = without.iter().position(|t| t.contains(needle));
        let rank_with = with.iter().position(|t| t.contains(needle));
        let rank_with = rank_with.expect("expanded retrieval must surface the instruction");
        match rank_without {
            None => {} // promoted from absent — the strongest form of the claim
            Some(rw) => assert!(
                rank_with < rw,
                "expansion did not improve the rank: {rank_with} !< {rw}\n\
                 without: {without:?}\nwith: {with:?}"
            ),
        }
        assert_eq!(
            rank_with, 0,
            "the bridged instruction should rank first: {with:?}"
        );
    }

    #[test]
    fn expansion_does_not_hijack_unrelated_queries() {
        // A question with no relation to the example must keep its own
        // ranking: the original query dominates the expansion (§3.1.1's
        // expansion is additive, not a replacement).
        let index = KnowledgeIndex::build(bridge_knowledge());
        let question = "organisations in Canada and their currency";
        let plain = index.embedder().embed(question);
        let examples = index.top_examples(&plain, &[], 1);
        let expansion_texts: Vec<String> =
            examples.iter().map(|(e, _)| e.retrieval_text()).collect();
        let refs: Vec<&str> = expansion_texts.iter().map(|s| s.as_str()).collect();
        let expanded = index.embedder().embed_expanded(question, &refs);
        let top = index.top_instructions(&expanded, &[], 1);
        assert!(
            top[0].0.text.contains("CAD currency"),
            "currency question lost its best instruction: {:?}",
            top[0].0.text
        );
    }
}
