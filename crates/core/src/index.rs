//! Retrieval index over a knowledge set.
//!
//! Built once per knowledge-set version; the pipeline's compounding
//! retrieval operators (§3.1.1) query it with progressively expanded
//! embeddings.

use genedit_knowledge::tenants::{StoredVectors, TenantSnapshot, TenantStoreError};
use genedit_knowledge::{Example, Instruction, KnowledgeSet, SchemaElement};
use genedit_retrieval::{Embedder, Embedding, VectorIndex, Vocabulary};

/// A knowledge set plus embedding indexes for its three element kinds.
pub struct KnowledgeIndex {
    ks: KnowledgeSet,
    embedder: Embedder,
    examples: VectorIndex,
    instructions: VectorIndex,
    schema: VectorIndex,
}

impl KnowledgeIndex {
    /// Fit the vocabulary over the whole knowledge corpus and index every
    /// element.
    pub fn build(ks: KnowledgeSet) -> KnowledgeIndex {
        KnowledgeIndex::build_with_vectors(ks, None)
    }

    /// [`KnowledgeIndex::build`], but reuse pre-computed embedding
    /// vectors when they still describe this knowledge set (same
    /// dimensionality as the freshly fitted vocabulary, one vector per
    /// element). Vectors that do not match are ignored and everything is
    /// re-embedded — the result is identical either way, because the
    /// vocabulary fit and the embedder are deterministic functions of
    /// the corpus.
    pub fn build_with_vectors(ks: KnowledgeSet, stored: Option<&StoredVectors>) -> KnowledgeIndex {
        let mut vocab = Vocabulary::new();
        for e in ks.examples() {
            vocab.add_document(&e.retrieval_text());
        }
        for i in ks.instructions() {
            vocab.add_document(&i.retrieval_text());
        }
        for s in ks.schema_elements() {
            vocab.add_document(&s.retrieval_text());
        }
        let embedder = Embedder::new(vocab);
        let usable = stored.filter(|v| {
            v.dim == embedder.dim()
                && v.examples.len() == ks.examples().len()
                && v.instructions.len() == ks.instructions().len()
                && v.schema.len() == ks.schema_elements().len()
        });

        let mut examples = VectorIndex::new();
        let mut instructions = VectorIndex::new();
        let mut schema = VectorIndex::new();
        match usable {
            Some(v) => {
                for (pos, vec) in v.examples.iter().enumerate() {
                    examples.insert(pos, vec.clone());
                }
                for (pos, vec) in v.instructions.iter().enumerate() {
                    instructions.insert(pos, vec.clone());
                }
                for (pos, vec) in v.schema.iter().enumerate() {
                    schema.insert(pos, vec.clone());
                }
            }
            None => {
                for (pos, e) in ks.examples().iter().enumerate() {
                    examples.insert(pos, embedder.embed(&e.retrieval_text()));
                }
                for (pos, i) in ks.instructions().iter().enumerate() {
                    instructions.insert(pos, embedder.embed(&i.retrieval_text()));
                }
                for (pos, s) in ks.schema_elements().iter().enumerate() {
                    schema.insert(pos, embedder.embed(&s.retrieval_text()));
                }
            }
        }
        KnowledgeIndex {
            ks,
            embedder,
            examples,
            instructions,
            schema,
        }
    }

    /// Build from a tenant store snapshot: the knowledge content and any
    /// stored vectors are read through pinned buffer-pool pages, so a
    /// cold tenant pages in without replaying its WAL and — when vectors
    /// were written back — without re-embedding its corpus.
    pub fn from_snapshot(snapshot: &TenantSnapshot) -> Result<KnowledgeIndex, TenantStoreError> {
        let ks = snapshot.knowledge_set()?;
        let vectors = snapshot.vectors()?;
        Ok(KnowledgeIndex::build_with_vectors(ks, vectors.as_ref()))
    }

    /// The embedding vectors of every indexed element, in content order —
    /// what [`genedit_knowledge::tenants::TenantKnowledgeStore::put_vectors`]
    /// persists so the next cold page-in skips re-embedding.
    pub fn export_vectors(&self) -> StoredVectors {
        StoredVectors {
            dim: self.embedder.dim(),
            examples: self
                .ks
                .examples()
                .iter()
                .map(|e| self.embedder.embed(&e.retrieval_text()))
                .collect(),
            instructions: self
                .ks
                .instructions()
                .iter()
                .map(|i| self.embedder.embed(&i.retrieval_text()))
                .collect(),
            schema: self
                .ks
                .schema_elements()
                .iter()
                .map(|s| self.embedder.embed(&s.retrieval_text()))
                .collect(),
        }
    }

    /// The knowledge set this index was built over.
    pub fn knowledge(&self) -> &KnowledgeSet {
        &self.ks
    }

    /// The embedder fitted to this knowledge set's corpus.
    pub fn embedder(&self) -> &Embedder {
        &self.embedder
    }

    /// Top-k examples by cosine similarity to a query embedding. Examples
    /// attached to one of `intents` are boosted, implementing the paper's
    /// "uses the user intents to retrieve their associated examples …
    /// then retrieves further relevant examples based on the query".
    ///
    /// Selection is *kind-diversified*: the best example of each fragment
    /// kind is taken first, then remaining slots fill by score. Decomposed
    /// examples exist to cover sub-statement patterns (§3.2.1), so the
    /// selection must span clause kinds, not just repeat the top-scoring
    /// one — this is what lets the CoT plan ground every step.
    pub fn top_examples(
        &self,
        query: &Embedding,
        intents: &[String],
        k: usize,
    ) -> Vec<(&Example, f32)> {
        let hits = self.examples.search(query, self.examples.len(), f32::MIN);
        let mut scored: Vec<(&Example, f32)> = hits
            .into_iter()
            .map(|h| {
                let ex = &self.ks.examples()[h.id];
                let boost = if ex
                    .intent
                    .as_deref()
                    .map(|i| intents.iter().any(|x| x == i))
                    .unwrap_or(false)
                {
                    0.15
                } else {
                    0.0
                };
                (ex, h.score + boost)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

        let mut out: Vec<(&Example, f32)> = Vec::with_capacity(k);
        let mut kinds_taken: std::collections::BTreeSet<_> = Default::default();
        // Pass 1: best example per fragment kind, in score order.
        for (ex, score) in &scored {
            if out.len() >= k {
                break;
            }
            if kinds_taken.insert(ex.fragment.kind) {
                out.push((*ex, *score));
            }
        }
        // Pass 2: fill remaining slots by raw score.
        for (ex, score) in &scored {
            if out.len() >= k {
                break;
            }
            if !out.iter().any(|(e, _)| e.id == ex.id) {
                out.push((*ex, *score));
            }
        }
        out
    }

    /// Top-k instructions; same intent boost.
    pub fn top_instructions(
        &self,
        query: &Embedding,
        intents: &[String],
        k: usize,
    ) -> Vec<(&Instruction, f32)> {
        let hits = self
            .instructions
            .search(query, self.instructions.len(), f32::MIN);
        let mut scored: Vec<(&Instruction, f32)> = hits
            .into_iter()
            .map(|h| {
                let ins = &self.ks.instructions()[h.id];
                let boost = if ins
                    .intent
                    .as_deref()
                    .map(|i| intents.iter().any(|x| x == i))
                    .unwrap_or(false)
                {
                    0.15
                } else {
                    0.0
                };
                (ins, h.score + boost)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }

    /// Top-k schema elements by similarity (used as the re-rank filter
    /// after the LLM linking call).
    pub fn top_schema(&self, query: &Embedding, k: usize) -> Vec<(&SchemaElement, f32)> {
        self.schema
            .search(query, k, f32::MIN)
            .into_iter()
            .map(|h| (&self.ks.schema_elements()[h.id], h.score))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genedit_knowledge::{Edit, FragmentKind, Intent, SourceRef, SqlFragment};

    fn sample_index() -> KnowledgeIndex {
        let mut ks = KnowledgeSet::new();
        ks.apply(Edit::AddIntent(Intent::new("fin", "Financial", "money")))
            .unwrap();
        ks.apply(Edit::InsertExample {
            intent: Some("fin".into()),
            description: "filter by ownership flag COC for our organizations".into(),
            fragment: SqlFragment::new(FragmentKind::Where, "WHERE FLAG = 'COC'", "main"),
            term: Some("COC".into()),
            source: SourceRef::Manual,
        })
        .unwrap();
        ks.apply(Edit::InsertExample {
            intent: None,
            description: "order players by jersey number".into(),
            fragment: SqlFragment::new(FragmentKind::OrderBy, "ORDER BY JERSEY", "main"),
            term: None,
            source: SourceRef::Manual,
        })
        .unwrap();
        ks.apply(Edit::InsertInstruction {
            intent: Some("fin".into()),
            text: "QoQFP compares quarterly financials".into(),
            sql_hint: None,
            term: Some("QoQFP".into()),
            source: SourceRef::Manual,
        })
        .unwrap();
        KnowledgeIndex::build(ks)
    }

    #[test]
    fn relevant_example_ranks_first() {
        let idx = sample_index();
        let q = idx
            .embedder()
            .embed("show our organizations with ownership flag");
        let top = idx.top_examples(&q, &[], 2);
        assert_eq!(top[0].0.term.as_deref(), Some("COC"));
        assert!(top[0].1 > top[1].1);
    }

    #[test]
    fn intent_boost_changes_ranking() {
        let idx = sample_index();
        // A query equally unrelated to both examples: the intent boost
        // must pull the fin example up.
        let q = idx.embedder().embed("zzz unrelated words qqq");
        let without = idx.top_examples(&q, &[], 2);
        let with = idx.top_examples(&q, &["fin".to_string()], 2);
        let fin_pos_without = without
            .iter()
            .position(|(e, _)| e.intent.as_deref() == Some("fin"))
            .unwrap();
        let fin_pos_with = with
            .iter()
            .position(|(e, _)| e.intent.as_deref() == Some("fin"))
            .unwrap();
        assert!(fin_pos_with <= fin_pos_without);
        assert_eq!(fin_pos_with, 0);
    }

    #[test]
    fn k_truncates() {
        let idx = sample_index();
        let q = idx.embedder().embed("anything");
        assert_eq!(idx.top_examples(&q, &[], 1).len(), 1);
        assert_eq!(idx.top_instructions(&q, &[], 10).len(), 1);
        assert!(idx.top_schema(&q, 5).is_empty()); // no schema elements
    }
}
