//! Continuous improvement (§4): the edits-recommendation module.
//!
//! Four operators turn free-text feedback into recommended knowledge-set
//! edits (§4.1):
//! 1. **Generate Targets** — which retrieved instructions/examples the
//!    feedback concerns, with a short why,
//! 2. **Expand Feedback** — a fuller explanation tying feedback to the
//!    targets,
//! 3. **Planning of Edits** — a step-by-step plan of required changes,
//! 4. **Generate Edits** — the concrete [`Edit`]s in knowledge-set form.
//!
//! [`FeedbackSession`] is the programmatic equivalent of the Feedback
//! Solver UI (§4.2.1): stage recommended edits, regenerate against the
//! staged knowledge set, iterate, then submit through regression testing.

use crate::index::KnowledgeIndex;
use crate::pipeline::{GenEditPipeline, GenerationResult};
use genedit_knowledge::{Edit, KnowledgeSet, RetrievalStage, SourceRef, StagingArea};
use genedit_llm::LanguageModel;
use genedit_retrieval::tokenize;
use genedit_sql::catalog::Database;
use genedit_telemetry::{names, Trace, Tracer};

/// A target the feedback is judged relevant to (operator 1 output).
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackTarget {
    /// Which knowledge element (or gap) the feedback concerns.
    pub kind: TargetKind,
    /// Why the feedback concerns this element (or gap).
    pub why: String,
}

/// What a [`FeedbackTarget`] points at.
#[derive(Debug, Clone, PartialEq)]
pub enum TargetKind {
    /// An example fragment that was used in the generation.
    Example(genedit_knowledge::ExampleId),
    /// An instruction that was used in the generation.
    Instruction(genedit_knowledge::InstructionId),
    /// The feedback names knowledge that was never retrieved — a gap to
    /// fill with an insertion.
    MissingKnowledge {
        /// The missing subject matter, as extracted from the feedback.
        topic: String,
    },
}

/// A recommended edit with its explanation trail (operators 2–4 outputs).
#[derive(Debug, Clone)]
pub struct RecommendedEdit {
    /// The concrete knowledge-set edit to stage.
    pub edit: Edit,
    /// Human-readable rationale for the edit.
    pub explanation: String,
    /// The edit-plan steps that produced this recommendation.
    pub plan_steps: Vec<String>,
}

/// Operator 1: determine which of the used instructions/examples the
/// feedback is relevant to. Deterministic token-overlap implementation of
/// the paper's LLM call (the structure — not the scoring model — is what
/// the module contributes).
pub fn generate_targets(
    feedback: &str,
    generation: &GenerationResult,
    knowledge: &KnowledgeSet,
) -> Vec<FeedbackTarget> {
    let fb_tokens: std::collections::BTreeSet<String> = tokenize(feedback).into_iter().collect();
    let overlap = |text: &str| -> usize {
        tokenize(text)
            .iter()
            .filter(|t| fb_tokens.contains(*t))
            .count()
    };

    let mut targets = Vec::new();
    for id in &generation.used_examples {
        if let Some(ex) = knowledge.example(*id) {
            let score = overlap(&ex.retrieval_text());
            if score >= 2 {
                targets.push(FeedbackTarget {
                    kind: TargetKind::Example(*id),
                    why: format!(
                        "feedback shares {score} terms with example {} ({})",
                        id, ex.description
                    ),
                });
            }
        }
    }
    for id in &generation.used_instructions {
        if let Some(ins) = knowledge.instruction(*id) {
            let score = overlap(&ins.retrieval_text());
            if score >= 2 {
                targets.push(FeedbackTarget {
                    kind: TargetKind::Instruction(*id),
                    why: format!(
                        "feedback shares {score} terms with instruction {} ({})",
                        id, ins.text
                    ),
                });
            }
        }
    }
    if targets.is_empty() {
        // Nothing retrieved matches: the knowledge set has a gap.
        let topic: Vec<String> = tokenize(feedback)
            .into_iter()
            .filter(|t| t.len() > 3)
            .take(6)
            .collect();
        targets.push(FeedbackTarget {
            kind: TargetKind::MissingKnowledge {
                topic: topic.join(" "),
            },
            why: "no retrieved knowledge matches the feedback; new knowledge is needed".into(),
        });
    }
    targets
}

/// Operator 2: expand the why into a fuller explanation.
pub fn expand_feedback(feedback: &str, question: &str, targets: &[FeedbackTarget]) -> String {
    let mut out = format!(
        "The user asked: \"{question}\". The generated SQL was judged wrong because: \
         \"{feedback}\". "
    );
    for t in targets {
        match &t.kind {
            TargetKind::Example(id) => out.push_str(&format!(
                "Example {id} likely taught the wrong pattern ({}). ",
                t.why
            )),
            TargetKind::Instruction(id) => out.push_str(&format!(
                "Instruction {id} either misled generation or needs strengthening ({}). ",
                t.why
            )),
            TargetKind::MissingKnowledge { topic } => {
                out.push_str(&format!("The knowledge set lacks coverage of: {topic}. "))
            }
        }
    }
    out
}

/// Operators 3 + 4: plan the changes, then produce concrete edits.
///
/// The generated edits follow the paper's three failure buckets (§1):
/// misunderstood query context, wrong decomposed-example calculations, and
/// retrieval misses — each becomes an insert/update plus, for retrieval
/// misses, a retrieval hint.
pub fn generate_edits(
    feedback: &str,
    question: &str,
    generation: &GenerationResult,
    knowledge: &KnowledgeSet,
) -> Vec<RecommendedEdit> {
    generate_edits_with_id(feedback, question, generation, knowledge, 0)
}

/// Like [`generate_edits`], carrying the feedback's id into the provenance
/// of every produced edit (the knowledge-set library groups history by
/// feedback, Fig. 4).
pub fn generate_edits_with_id(
    feedback: &str,
    question: &str,
    generation: &GenerationResult,
    knowledge: &KnowledgeSet,
    feedback_id: u64,
) -> Vec<RecommendedEdit> {
    let tracer = Tracer::new("feedback");
    generate_edits_traced(
        feedback,
        question,
        generation,
        knowledge,
        feedback_id,
        &tracer,
    )
}

/// Operator 3: plan the changes — one step list per target, consumed by
/// the edits the generate phase produces for that target.
pub fn plan_edits(targets: &[FeedbackTarget]) -> Vec<Vec<String>> {
    targets
        .iter()
        .map(|target| match &target.kind {
            TargetKind::Instruction(id) => vec![
                format!("Locate instruction {id}."),
                "Append the user's clarification so future retrieval carries it.".to_string(),
            ],
            TargetKind::Example(id) => vec![
                format!("Locate example {id}."),
                "Annotate its description with the corrected interpretation.".to_string(),
            ],
            TargetKind::MissingKnowledge { topic } => vec![
                "No existing knowledge matches the feedback.".to_string(),
                format!("Insert a new instruction covering: {topic}."),
            ],
        })
        .collect()
}

/// The four-operator feedback chain, recording one span per operator on
/// `tracer` (attrs: targets matched, explanation size, steps planned,
/// edits produced).
pub fn generate_edits_traced(
    feedback: &str,
    question: &str,
    generation: &GenerationResult,
    knowledge: &KnowledgeSet,
    feedback_id: u64,
    tracer: &Tracer,
) -> Vec<RecommendedEdit> {
    let span = tracer.span(names::FEEDBACK_TARGETS);
    let targets = generate_targets(feedback, generation, knowledge);
    span.attr("targets", targets.len());
    span.finish();

    let span = tracer.span(names::FEEDBACK_EXPAND);
    let explanation = expand_feedback(feedback, question, &targets);
    span.attr("chars", explanation.len());
    span.finish();

    let span = tracer.span(names::FEEDBACK_PLAN);
    let plans = plan_edits(&targets);
    span.attr("planned", plans.len())
        .attr("steps", plans.iter().map(|p| p.len()).sum::<usize>());
    span.finish();

    let span = tracer.span(names::FEEDBACK_EDITS);
    let mut out = Vec::new();
    for (target, plan_steps) in targets.iter().zip(&plans) {
        match &target.kind {
            TargetKind::Instruction(id) => {
                let Some(ins) = knowledge.instruction(*id) else {
                    continue;
                };
                let new_text = format!("{} — clarified by feedback: {}", ins.text, feedback);
                out.push(RecommendedEdit {
                    edit: Edit::UpdateInstruction {
                        id: *id,
                        text: Some(new_text),
                        sql_hint: None,
                        source: SourceRef::Feedback { feedback_id },
                    },
                    explanation: explanation.clone(),
                    plan_steps: plan_steps.clone(),
                });
            }
            TargetKind::Example(id) => {
                let Some(ex) = knowledge.example(*id) else {
                    continue;
                };
                out.push(RecommendedEdit {
                    edit: Edit::UpdateExample {
                        id: *id,
                        description: Some(format!(
                            "{} (corrected per feedback: {feedback})",
                            ex.description
                        )),
                        fragment: None,
                        term: None,
                        source: SourceRef::Feedback { feedback_id },
                    },
                    explanation: explanation.clone(),
                    plan_steps: plan_steps.clone(),
                });
            }
            TargetKind::MissingKnowledge { topic } => {
                out.push(RecommendedEdit {
                    edit: Edit::InsertInstruction {
                        intent: generation.intents.first().cloned(),
                        text: format!("When the user mentions {topic}: {feedback}"),
                        sql_hint: None,
                        term: dominant_term(feedback),
                        source: SourceRef::Feedback { feedback_id },
                    },
                    explanation: explanation.clone(),
                    plan_steps: plan_steps.clone(),
                });
                out.push(RecommendedEdit {
                    edit: Edit::AddRetrievalHint {
                        stage: RetrievalStage::InstructionSelection,
                        text: format!("boost knowledge about: {topic}"),
                    },
                    explanation: explanation.clone(),
                    plan_steps: vec![
                        "Help retrieval surface the new knowledge next time.".to_string()
                    ],
                });
            }
        }
    }
    span.attr("edits", out.len());
    span.finish();
    out
}

/// Pull an acronym-like token out of feedback text so new instructions are
/// indexed under the domain term they explain.
fn dominant_term(feedback: &str) -> Option<String> {
    feedback
        .split(|c: char| !c.is_alphanumeric())
        .find(|t| t.len() >= 3 && t.chars().filter(|c| c.is_ascii_uppercase()).count() >= 2)
        .map(|t| t.to_string())
}

/// An interactive feedback session over one question — the programmatic
/// Feedback Solver (§4.2.1).
pub struct FeedbackSession<'a, M> {
    pipeline: &'a GenEditPipeline<M>,
    db: &'a Database,
    /// The deployed knowledge set (untouched until submission).
    deployed: &'a KnowledgeSet,
    question: String,
    staging: StagingArea,
    /// All recommendations from the latest feedback round.
    recommendations: Vec<RecommendedEdit>,
    /// The latest generation (against deployed + staged edits).
    pub latest: GenerationResult,
    /// History of (feedback, number of recommendations) rounds.
    rounds: Vec<(String, usize)>,
    /// One trace per feedback round (the four edit operators).
    feedback_traces: Vec<Trace>,
}

impl<'a, M: LanguageModel> FeedbackSession<'a, M> {
    /// Open a session: generate the initial SQL for the question.
    pub fn open(
        pipeline: &'a GenEditPipeline<M>,
        db: &'a Database,
        deployed: &'a KnowledgeSet,
        question: impl Into<String>,
    ) -> Self {
        let question = question.into();
        let index = KnowledgeIndex::build(deployed.clone());
        let latest = pipeline.generate(&question, &index, db, &[]);
        FeedbackSession {
            pipeline,
            db,
            deployed,
            question,
            staging: StagingArea::new(),
            recommendations: Vec::new(),
            latest,
            rounds: Vec::new(),
            feedback_traces: Vec::new(),
        }
    }

    /// The question this session iterates on.
    pub fn question(&self) -> &str {
        &self.question
    }

    /// Number of edits currently staged.
    pub fn staged_count(&self) -> usize {
        self.staging.len()
    }

    /// The recommendations produced by the latest feedback round.
    pub fn recommendations(&self) -> &[RecommendedEdit] {
        &self.recommendations
    }

    /// Every feedback round so far: the text submitted and how many
    /// edits it produced.
    pub fn rounds(&self) -> &[(String, usize)] {
        &self.rounds
    }

    /// The trace of each feedback round, in submission order.
    pub fn feedback_traces(&self) -> &[Trace] {
        &self.feedback_traces
    }

    /// Submit feedback: produces recommended edits against the *staged*
    /// view of the knowledge set. The round number becomes the feedback id
    /// carried by the edits' provenance.
    pub fn submit_feedback(&mut self, feedback: &str) -> usize {
        // A staged edit that no longer applies (e.g. its target was
        // deleted under it) degrades to the deployed view rather than
        // panicking the session.
        let staged_ks = self
            .staging
            .materialize(self.deployed)
            .unwrap_or_else(|_| self.deployed.clone());
        let feedback_id = self.rounds.len() as u64 + 1;
        let tracer = Tracer::new("feedback");
        self.recommendations = generate_edits_traced(
            feedback,
            &self.question,
            &self.latest,
            &staged_ks,
            feedback_id,
            &tracer,
        );
        self.feedback_traces.push(tracer.finish());
        self.rounds
            .push((feedback.to_string(), self.recommendations.len()));
        self.recommendations.len()
    }

    /// Stage one of the current recommendations by index; returns its
    /// staging handle.
    pub fn stage(&mut self, recommendation_index: usize) -> Option<u64> {
        let rec = self.recommendations.get(recommendation_index)?;
        Some(self.staging.stage(rec.edit.clone()))
    }

    /// Stage every current recommendation.
    pub fn stage_all(&mut self) -> usize {
        let edits: Vec<Edit> = self
            .recommendations
            .iter()
            .map(|r| r.edit.clone())
            .collect();
        for e in edits {
            self.staging.stage(e);
        }
        self.staging.len()
    }

    /// Withdraw a staged edit by its staging handle. Returns whether the
    /// handle was live.
    pub fn unstage(&mut self, handle: u64) -> bool {
        self.staging.unstage(handle).is_some()
    }

    /// Regenerate the query against deployed + staged edits ("the user can
    /// regenerate the query and continue iterating", §4.2.1).
    pub fn regenerate(&mut self) -> &GenerationResult {
        let staged_ks = self
            .staging
            .materialize(self.deployed)
            .unwrap_or_else(|_| self.deployed.clone());
        let index = KnowledgeIndex::build(staged_ks);
        self.latest = self.pipeline.generate(&self.question, &index, self.db, &[]);
        &self.latest
    }

    /// Finish the session, handing the staged edits to the caller for
    /// regression testing + merge (see [`crate::regression`]).
    pub fn into_staged(self) -> StagingArea {
        self.staging
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::GenEditPipeline;
    use genedit_bird::{DomainBundle, SPORTS};
    use genedit_llm::{OracleConfig, OracleModel, TaskRegistry};

    fn setup() -> (DomainBundle, KnowledgeSet, OracleModel) {
        let bundle = DomainBundle::build(&SPORTS, (8, 7, 3), 42);
        let ks = bundle.build_knowledge();
        let mut reg = TaskRegistry::new();
        for t in &bundle.tasks {
            reg.register(t.clone());
        }
        let oracle = OracleModel::with_config(
            reg,
            OracleConfig {
                noise_rate: 0.0,
                ..Default::default()
            },
        );
        (bundle, ks, oracle)
    }

    fn degraded_knowledge(ks: &KnowledgeSet) -> KnowledgeSet {
        // Remove every instruction AND example mentioning the ownership
        // term so the "our" tasks fail — the paper's running-example
        // failure (term knowledge can live in either store).
        let mut ks = ks.clone();
        let doomed: Vec<_> = ks
            .instructions()
            .iter()
            .filter(|i| i.retrieval_text().to_uppercase().contains("COC"))
            .map(|i| i.id)
            .collect();
        for id in doomed {
            ks.apply(Edit::DeleteInstruction { id }).unwrap();
        }
        let doomed: Vec<_> = ks
            .examples()
            .iter()
            .filter(|e| e.retrieval_text().to_uppercase().contains("COC"))
            .map(|e| e.id)
            .collect();
        for id in doomed {
            ks.apply(Edit::DeleteExample { id }).unwrap();
        }
        ks
    }

    #[test]
    fn feedback_on_missing_knowledge_recommends_insertion() {
        let (bundle, ks, oracle) = setup();
        let ks = degraded_knowledge(&ks);
        let pipeline = GenEditPipeline::new(&oracle);
        let task = bundle
            .tasks
            .iter()
            .find(|t| t.task_id.ends_with("s05"))
            .expect("the 'our' term task");

        let mut session = FeedbackSession::open(&pipeline, &bundle.db, &ks, &task.question);
        // Initial generation is wrong (ownership filter dropped).
        let (ok, _) = genedit_bird::score_prediction(
            &bundle.db,
            &task.gold_sql,
            session.latest.sql.as_deref(),
        );
        assert!(!ok, "degraded knowledge should fail first");

        let n = session.submit_feedback(
            "This answer includes all organizations but I only care about our \
             organizations: filter OWNERSHIP_FLAG = 'COC'",
        );
        assert!(n >= 1);
        assert!(session
            .recommendations()
            .iter()
            .any(|r| matches!(r.edit, Edit::InsertInstruction { .. })));

        session.stage_all();
        session.regenerate();
        let (ok, note) = genedit_bird::score_prediction(
            &bundle.db,
            &task.gold_sql,
            session.latest.sql.as_deref(),
        );
        assert!(
            ok,
            "after staging edits the query should be right: {note:?}"
        );
    }

    #[test]
    fn targets_find_related_instruction() {
        let (bundle, ks, oracle) = setup();
        let pipeline = GenEditPipeline::new(&oracle);
        let task = bundle
            .tasks
            .iter()
            .find(|t| t.task_id.ends_with("s05"))
            .unwrap();
        let index = KnowledgeIndex::build(ks.clone());
        let generation = pipeline.generate(&task.question, &index, &bundle.db, &[]);
        let targets = generate_targets(
            "the COC ownership flag filter is missing for our organizations",
            &generation,
            &ks,
        );
        assert!(targets
            .iter()
            .any(|t| matches!(t.kind, TargetKind::Instruction(_))));
    }

    #[test]
    fn expansion_mentions_question_and_feedback() {
        let targets = vec![FeedbackTarget {
            kind: TargetKind::MissingKnowledge {
                topic: "ownership".into(),
            },
            why: "gap".into(),
        }];
        let s = expand_feedback("wrong orgs", "our best orgs", &targets);
        assert!(s.contains("our best orgs"));
        assert!(s.contains("wrong orgs"));
        assert!(s.contains("ownership"));
    }

    #[test]
    fn unstage_and_round_history() {
        let (bundle, ks, oracle) = setup();
        let ks = degraded_knowledge(&ks);
        let pipeline = GenEditPipeline::new(&oracle);
        let task = bundle
            .tasks
            .iter()
            .find(|t| t.task_id.ends_with("s05"))
            .unwrap();
        let mut session = FeedbackSession::open(&pipeline, &bundle.db, &ks, &task.question);
        session.submit_feedback("only our organizations please, the COC ones");
        let handle = session.stage(0).unwrap();
        assert_eq!(session.staged_count(), 1);
        assert!(session.unstage(handle));
        assert_eq!(session.staged_count(), 0);
        assert!(!session.unstage(handle));
        assert_eq!(session.rounds().len(), 1);
    }

    #[test]
    fn feedback_round_records_the_four_operator_spans() {
        let (bundle, ks, oracle) = setup();
        let ks = degraded_knowledge(&ks);
        let pipeline = GenEditPipeline::new(&oracle);
        let task = bundle
            .tasks
            .iter()
            .find(|t| t.task_id.ends_with("s05"))
            .unwrap();
        let mut session = FeedbackSession::open(&pipeline, &bundle.db, &ks, &task.question);
        session.submit_feedback("only our organizations please, the COC ones");
        assert_eq!(session.feedback_traces().len(), 1);
        let trace = &session.feedback_traces()[0];
        let order: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            order,
            vec![
                names::FEEDBACK_TARGETS,
                names::FEEDBACK_EXPAND,
                names::FEEDBACK_PLAN,
                names::FEEDBACK_EDITS,
            ]
        );
        let edits = trace.find(names::FEEDBACK_EDITS).unwrap();
        assert_eq!(
            edits.attr("edits").map(|a| a.to_string()),
            Some(session.recommendations().len().to_string())
        );
    }

    #[test]
    fn dominant_term_extraction() {
        assert_eq!(dominant_term("use the COC flag"), Some("COC".into()));
        assert_eq!(dominant_term("QoQFP is quarterly"), Some("QoQFP".into()));
        assert_eq!(dominant_term("no acronyms here"), None);
    }
}
