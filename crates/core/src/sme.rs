//! Scripted subject-matter-expert simulator.
//!
//! §4's evaluation exercises the feedback loop with human SMEs; this
//! simulator stands in for them (see DESIGN.md's substitution table). It
//! inspects a wrong prediction against the task's knowledge requirements
//! and emits the class of natural-language feedback the paper's Fig. 3
//! shows ("This response queries all sports organizations but I only care
//! about our organizations").

use genedit_llm::{Corruption, TaskKnowledge};

/// Produce feedback for a wrong prediction, or `None` when the simulator
/// cannot articulate what is wrong (matching real users who just say
/// "this looks off" — callers treat that as unresolvable feedback).
pub fn feedback_for(task: &TaskKnowledge, predicted_sql: Option<&str>) -> Option<String> {
    let predicted = predicted_sql?;
    let upper = predicted.to_uppercase();

    // Check the task's term requirements in order: the SME notices the
    // symptom of the first violated one.
    for req in &task.required_terms {
        match &req.corruption {
            Corruption::DropWhereConjunct { marker } => {
                if !upper.contains(&marker.to_uppercase())
                    && task
                        .gold_sql
                        .to_uppercase()
                        .contains(&marker.to_uppercase())
                {
                    return Some(format!(
                        "This response queries all rows but I only care about our own ones — \
                         {} must be filtered (the {} convention)",
                        marker, req.term
                    ));
                }
            }
            Corruption::SwapAggregate { from, to } => {
                if upper.contains(&format!("{}(", to.to_uppercase()))
                    && task
                        .gold_sql
                        .to_uppercase()
                        .contains(&format!("{}(", from.to_uppercase()))
                {
                    return Some(format!(
                        "The {} calculation is wrong: it must aggregate with {} (see the {} \
                         definition), not {}",
                        req.term, from, req.term, to
                    ));
                }
            }
            Corruption::StripNegOneMultiplier => {
                let gold_has = task.gold_sql.contains("-1 *");
                if gold_has && !predicted.contains("-1 *") {
                    return Some(format!(
                        "The ranking direction is wrong: {} requires applying a -1 multiplier \
                         when calculating the change in performance metrics",
                        req.term
                    ));
                }
            }
            Corruption::ReplaceStringLiteral { from, .. } => {
                if !predicted.contains(from.as_str()) && task.gold_sql.contains(from.as_str()) {
                    return Some(format!(
                        "The {} filter should use the value '{}' (see the {} definition)",
                        req.term, from, req.term
                    ));
                }
            }
            Corruption::RenameColumn { from, to } | Corruption::RenameTable { from, to } => {
                if upper.contains(&to.to_uppercase()) {
                    return Some(format!(
                        "The query uses {} but the {} data lives in {}",
                        to, req.term, from
                    ));
                }
            }
            Corruption::FlipOrderDirections => {
                return Some(format!(
                    "Best and worst are swapped — check the {} ranking direction",
                    req.term
                ));
            }
        }
    }

    // No articulate diagnosis.
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use genedit_llm::{Difficulty, TermRequirement};

    fn task() -> TaskKnowledge {
        TaskKnowledge {
            task_id: "t".into(),
            question: "our best orgs".into(),
            db_name: "db".into(),
            gold_sql: "SELECT SUM(R) FROM F WHERE OWNERSHIP_FLAG = 'COC' \
                       ORDER BY (-1 * (A - B)) DESC"
                .into(),
            intent: "fin".into(),
            difficulty: Difficulty::Moderate,
            required_terms: vec![
                TermRequirement {
                    term: "COC".into(),
                    corruption: Corruption::DropWhereConjunct {
                        marker: "OWNERSHIP_FLAG".into(),
                    },
                },
                TermRequirement {
                    term: "QoQFP".into(),
                    corruption: Corruption::StripNegOneMultiplier,
                },
            ],
            required_tables: vec![],
            required_columns: vec![],
            evidence: vec![],
            distractor_table: None,
            distractor_column: None,
        }
    }

    #[test]
    fn diagnoses_dropped_ownership_filter() {
        let fb = feedback_for(
            &task(),
            Some("SELECT SUM(R) FROM F ORDER BY (-1 * (A - B)) DESC"),
        )
        .unwrap();
        assert!(fb.contains("OWNERSHIP_FLAG"));
        assert!(fb.contains("COC"));
    }

    #[test]
    fn diagnoses_missing_neg_one() {
        let fb = feedback_for(
            &task(),
            Some("SELECT SUM(R) FROM F WHERE OWNERSHIP_FLAG = 'COC' ORDER BY (A - B) DESC"),
        )
        .unwrap();
        assert!(fb.contains("-1 multiplier"));
        assert!(fb.contains("QoQFP"));
    }

    #[test]
    fn correct_looking_query_gets_no_feedback() {
        let t = task();
        assert!(feedback_for(&t, Some(&t.gold_sql.clone())).is_none());
        assert!(feedback_for(&t, None).is_none());
    }

    #[test]
    fn first_violated_term_wins() {
        // Both corruptions present: the ownership complaint comes first.
        let fb = feedback_for(&task(), Some("SELECT SUM(R) FROM F ORDER BY (A - B) DESC")).unwrap();
        assert!(fb.contains("OWNERSHIP_FLAG"));
    }
}
