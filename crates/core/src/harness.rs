//! Evaluation harness: run GenEdit (with ablations) and the baselines over
//! a benchmark workload, producing Table-1/Table-2-style reports.

use crate::baselines::{run_baseline, MethodProfile};
use crate::config::{Ablation, PipelineConfig};
use crate::index::KnowledgeIndex;
use crate::pipeline::GenEditPipeline;
use genedit_bird::{score_prediction, EvalReport, TaskOutcome, Workload};
use genedit_knowledge::KnowledgeSet;
use genedit_llm::{
    LanguageModel, ModelUsage, OracleConfig, OracleModel, RecordingModel, ResilienceState,
};
use genedit_telemetry::{operator_breakdown, MetricsRegistry, Trace};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Runs methods over one workload with a shared model and a shared
/// metrics registry: every GenEdit generation folds its trace into the
/// registry, and each report carries its own operator breakdown.
///
/// Defaults to the deterministic oracle; `with_model` substitutes any
/// [`LanguageModel`] (e.g. a [`genedit_llm::FaultInjector`] around the
/// oracle for chaos runs), and `with_resilience` attaches a shared
/// retry/breaker runtime that every pipeline built by this harness uses.
pub struct Harness<'w, M: LanguageModel = OracleModel> {
    workload: &'w Workload,
    model: RecordingModel<M>,
    metrics: Arc<MetricsRegistry>,
    resilience: Option<Arc<ResilienceState>>,
    warnings: Mutex<Vec<String>>,
}

impl<'w> Harness<'w> {
    /// Harness over the default-configured deterministic oracle.
    pub fn new(workload: &'w Workload) -> Harness<'w> {
        Harness::with_oracle_config(workload, OracleConfig::default())
    }

    /// Harness over an oracle with an explicit failure-model config.
    pub fn with_oracle_config(workload: &'w Workload, config: OracleConfig) -> Harness<'w> {
        let oracle = OracleModel::with_config(workload.registry(), config);
        Harness::with_model(workload, oracle)
    }
}

impl<'w, M: LanguageModel> Harness<'w, M> {
    /// Run the workload against an arbitrary model instead of the oracle.
    pub fn with_model(workload: &'w Workload, model: M) -> Harness<'w, M> {
        Harness {
            workload,
            model: RecordingModel::new(model),
            metrics: Arc::new(MetricsRegistry::default()),
            resilience: None,
            warnings: Mutex::new(Vec::new()),
        }
    }

    /// Attach a shared resilience runtime: every pipeline this harness
    /// builds wraps its model calls in retry/backoff + circuit breaking.
    pub fn with_resilience(mut self, state: Arc<ResilienceState>) -> Harness<'w, M> {
        self.resilience = Some(state);
        self
    }

    /// Cumulative model-call accounting across everything run so far.
    pub fn model_usage(&self) -> ModelUsage {
        self.model.usage()
    }

    /// Zero the cumulative model-call accounting.
    pub fn reset_usage(&self) {
        self.model.reset_usage()
    }

    /// The wrapped model (e.g. to read a fault injector's log).
    pub fn model(&self) -> &M {
        self.model.inner()
    }

    /// The registry every GenEdit run reports into. Shareable (`Arc`)
    /// with other harnesses or exporters.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Non-fatal anomalies the harness survived instead of aborting on
    /// (invalid domain logs, unknown domain names, …).
    pub fn warnings(&self) -> Vec<String> {
        self.warnings_lock().clone()
    }

    fn warnings_lock(&self) -> std::sync::MutexGuard<'_, Vec<String>> {
        self.warnings
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn warn(&self, message: String) {
        self.metrics.incr("harness.warnings", 1);
        self.warnings_lock().push(message);
    }

    fn build_pipeline(&self, config: PipelineConfig) -> GenEditPipeline<&RecordingModel<M>> {
        let mut pipeline = GenEditPipeline::with_config(&self.model, config)
            .with_metrics(Arc::clone(&self.metrics));
        if let Some(state) = &self.resilience {
            pipeline = pipeline.with_resilience_state(Arc::clone(state));
        }
        pipeline
    }

    /// Build per-domain knowledge indexes, optionally with full-query
    /// (non-decomposed) examples.
    pub fn build_indexes(&self, decompose: bool) -> HashMap<String, KnowledgeIndex> {
        self.workload
            .domains
            .iter()
            .map(|bundle| {
                let mut cfg = bundle.preprocess_config();
                cfg.decompose_examples = decompose;
                let ks = match genedit_knowledge::build_knowledge_set(
                    &cfg,
                    &bundle.logs,
                    &bundle.docs,
                    &bundle.db,
                ) {
                    Ok(ks) => ks,
                    // Degrade rather than abort the whole evaluation: the
                    // domain runs knowledge-free and the anomaly is
                    // reported through `warnings()`.
                    Err(err) => {
                        self.warn(format!(
                            "knowledge build failed for domain {} ({err}); \
                             running with an empty knowledge set",
                            bundle.db.name
                        ));
                        KnowledgeSet::new()
                    }
                };
                (bundle.db.name.clone(), KnowledgeIndex::build(ks))
            })
            .collect()
    }

    /// Run GenEdit under an ablation over the whole workload.
    pub fn run_genedit(&self, ablation: Ablation) -> EvalReport {
        let indexes = self.build_indexes(!ablation.needs_full_query_examples());
        self.run_genedit_with(ablation.config(), ablation.label(), &indexes)
    }

    /// Run GenEdit with explicit config and pre-built indexes (used by the
    /// feedback-loop experiments, which edit the knowledge sets between
    /// rounds).
    pub fn run_genedit_with(
        &self,
        config: PipelineConfig,
        label: &str,
        indexes: &HashMap<String, KnowledgeIndex>,
    ) -> EvalReport {
        let pipeline = self.build_pipeline(config);
        let mut report = EvalReport::new(label);
        let mut traces: Vec<Trace> = Vec::new();
        for bundle in &self.workload.domains {
            let index = &indexes[&bundle.db.name];
            for task in &bundle.tasks {
                let result = pipeline.generate(&task.question, index, &bundle.db, &task.evidence);
                let (correct, note) =
                    score_prediction(&bundle.db, &task.gold_sql, result.sql.as_deref());
                report.push(TaskOutcome {
                    task_id: task.task_id.clone(),
                    difficulty: task.difficulty,
                    correct,
                    attempts: result.attempts,
                    note,
                });
                traces.push(result.trace);
            }
        }
        report.set_operators(operator_breakdown(&traces));
        report
    }

    /// Run GenEdit over a single domain with a caller-supplied knowledge
    /// set (e.g. a staged one). Returns the per-task outcomes.
    pub fn run_genedit_on_domain(
        &self,
        config: &PipelineConfig,
        db_name: &str,
        knowledge: KnowledgeSet,
    ) -> Vec<TaskOutcome> {
        let bundle = match self.workload.domains.iter().find(|b| b.db.name == db_name) {
            Some(bundle) => bundle,
            None => {
                self.warn(format!(
                    "domain {db_name} not in the workload; returning no outcomes"
                ));
                return Vec::new();
            }
        };
        let index = KnowledgeIndex::build(knowledge);
        let pipeline = self.build_pipeline(config.clone());
        bundle
            .tasks
            .iter()
            .map(|task| {
                let result = pipeline.generate(&task.question, &index, &bundle.db, &task.evidence);
                let (correct, note) =
                    score_prediction(&bundle.db, &task.gold_sql, result.sql.as_deref());
                TaskOutcome {
                    task_id: task.task_id.clone(),
                    difficulty: task.difficulty,
                    correct,
                    attempts: result.attempts,
                    note,
                }
            })
            .collect()
    }

    /// Run one baseline over the whole workload.
    pub fn run_baseline(&self, profile: &MethodProfile) -> EvalReport {
        let indexes = self.build_indexes(true);
        let mut report = EvalReport::new(profile.name);
        for bundle in &self.workload.domains {
            let index = &indexes[&bundle.db.name];
            let log_pairs: Vec<(String, String)> = bundle
                .logs
                .iter()
                .map(|l| (l.question.clone(), l.sql.clone()))
                .collect();
            for task in &bundle.tasks {
                let r = run_baseline(
                    profile,
                    &self.model,
                    index,
                    &bundle.db,
                    &task.question,
                    &log_pairs,
                    &task.evidence,
                );
                let (correct, note) =
                    score_prediction(&bundle.db, &task.gold_sql, r.sql.as_deref());
                report.push(TaskOutcome {
                    task_id: task.task_id.clone(),
                    difficulty: task.difficulty,
                    correct,
                    attempts: r.attempts,
                    note,
                });
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genedit_beats_its_ablations_on_small_suite() {
        let w = Workload::small(42);
        let harness = Harness::new(&w);
        let full = harness.run_genedit(Ablation::None);
        let no_instructions = harness.run_genedit(Ablation::WithoutInstructions);
        assert!(
            full.ex(None) >= no_instructions.ex(None),
            "full {} < w/o instructions {}",
            full.ex(None),
            no_instructions.ex(None)
        );
        assert!(
            full.ex(None) > 40.0,
            "full pipeline EX too low: {}",
            full.ex(None)
        );
    }

    #[test]
    fn usage_accounting_accumulates() {
        let w = Workload::small(42);
        let harness = Harness::new(&w);
        harness.run_genedit(Ablation::None);
        let usage = harness.model_usage();
        assert!(usage.total_calls() > w.task_count());
        assert!(usage.calls.contains_key("plan"));
        assert!(usage.calls.contains_key("sql"));
        harness.reset_usage();
        assert_eq!(harness.model_usage().total_calls(), 0);
    }

    #[test]
    fn report_breaks_down_operators_and_ablation_removes_rows() {
        use genedit_telemetry::names;
        let w = Workload::small(42);
        let harness = Harness::new(&w);

        let full = harness.run_genedit(Ablation::None);
        for name in [
            names::REFORMULATE,
            names::INTENT,
            names::EXAMPLES,
            names::INSTRUCTIONS,
            names::SCHEMA_LINKING,
            names::PLAN,
            names::SQL_ATTEMPT,
        ] {
            let stats = full
                .operators
                .get(name)
                .unwrap_or_else(|| panic!("operator {name} missing from breakdown"));
            assert!(stats.count >= w.task_count(), "{name} count too low");
            assert!(stats.total_ms >= 0.0 && stats.mean_ms >= 0.0);
        }
        // Every model call is attributed: the root rows own them all.
        let root = &full.operators[names::GENERATE];
        assert_eq!(root.llm_calls, full.operators[names::LLM_COMPLETE].count);
        assert!(full.operators[names::PLAN].llm_calls >= w.task_count());

        // Disabling an operator removes its rows from the breakdown.
        let ablated = harness.run_genedit(Ablation::WithoutInstructions);
        assert!(!ablated.operators.contains_key(names::INSTRUCTIONS));
        assert!(ablated.operators.contains_key(names::EXAMPLES));

        // The shared registry saw both runs.
        let snapshot = harness.metrics().snapshot();
        assert_eq!(
            snapshot.counters["span.pipeline.generate.count"],
            2 * w.task_count() as u64
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let w = Workload::small(42);
        let h1 = Harness::new(&w);
        let h2 = Harness::new(&w);
        let a = h1.run_genedit(Ablation::None);
        let b = h2.run_genedit(Ablation::None);
        assert_eq!(a.ex(None), b.ex(None));
        for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
            assert_eq!(x.correct, y.correct, "task {}", x.task_id);
        }
    }
}
