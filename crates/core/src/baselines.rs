//! Baseline method implementations (Table 1 comparison set).
//!
//! Each baseline is an *approximation faithful to its context-assembly
//! strategy* rather than a line-by-line port (none of the original
//! systems can run without their exact LLM stack — see DESIGN.md):
//!
//! * **CHESS** — strong schema selection, full-query examples, benchmark
//!   evidence, internal decomposition (NL plan), candidate sampling.
//! * **MAC-SQL** — multi-agent sub-question decomposition (NL plan),
//!   linked schema, no example store.
//! * **TA-SQL** — task-alignment reformulation, linked schema, no plan.
//! * **DAIL-SQL** — full-query few-shot examples over the full schema,
//!   single shot.
//! * **C3-SQL** — zero-shot with calibration hints; no examples, no
//!   linking, whole schema dumped (empty schema section = "everything
//!   attached" to the oracle).

use crate::index::KnowledgeIndex;
use genedit_llm::{
    hash01, CompletionRequest, LanguageModel, Plan, Prompt, PromptExample, PromptSchemaElement,
    TaskKind,
};
use genedit_sql::catalog::Database;

/// How a method supplies few-shot examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExampleStyle {
    /// No few-shot examples at all.
    None,
    /// Traditional full-query examples drawn from the historical logs.
    FullQuery,
}

/// How a method supplies the schema.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchemaStyle {
    /// Dump everything (the oracle treats an empty schema section as
    /// "full warehouse schema attached").
    Dump,
    /// Ship every catalogued element explicitly.
    Full,
    /// LLM linking followed by lossy filtering with the given recall.
    Linked {
        /// Probability each truly-needed element survives the filter.
        recall: f64,
    },
}

/// Whether the method decomposes generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStyle {
    /// Single-shot generation, no decomposition step.
    None,
    /// Sub-question decomposition without pseudo-SQL.
    NlPlan,
}

/// A baseline's context-assembly profile.
#[derive(Debug, Clone)]
pub struct MethodProfile {
    /// Display name, matching the paper's Table 1 row label.
    pub name: &'static str,
    /// How the method supplies few-shot examples.
    pub examples: ExampleStyle,
    /// Whether benchmark-provided evidence strings join the prompt.
    pub include_evidence: bool,
    /// How the method supplies the schema.
    pub schema: SchemaStyle,
    /// Whether (and how) the method decomposes generation.
    pub plan: PlanStyle,
    /// Internal sampling/revision compute, as a capacity multiplier for
    /// the oracle's bounded-reasoning model (1.0 = plain prompting).
    pub reasoning_effort: f64,
    /// SQL candidates sampled per attempt.
    pub candidates: usize,
    /// Self-correction retries after a failed validation.
    pub max_retries: usize,
}

/// The paper's comparison set (Table 1), in its row order.
pub fn paper_baselines() -> Vec<MethodProfile> {
    vec![
        MethodProfile {
            name: "CHESS",
            examples: ExampleStyle::FullQuery,
            include_evidence: true,
            schema: SchemaStyle::Linked { recall: 0.97 },
            plan: PlanStyle::None,
            reasoning_effort: 2.0, // candidate sampling + revision agents
            candidates: 3,
            max_retries: 2,
        },
        MethodProfile {
            name: "MAC-SQL",
            examples: ExampleStyle::None,
            include_evidence: true,
            schema: SchemaStyle::Linked { recall: 0.85 },
            // The decomposer agent's effect is captured by the effort
            // multiplier; sub-question text itself adds no grounding.
            plan: PlanStyle::None,
            reasoning_effort: 1.3,
            candidates: 1,
            max_retries: 2,
        },
        MethodProfile {
            name: "TA-SQL",
            examples: ExampleStyle::None,
            include_evidence: true,
            schema: SchemaStyle::Linked { recall: 0.95 },
            plan: PlanStyle::None,
            reasoning_effort: 1.15, // task-alignment pre-pass
            candidates: 1,
            max_retries: 1,
        },
        MethodProfile {
            name: "DAIL-SQL",
            examples: ExampleStyle::FullQuery,
            include_evidence: true,
            schema: SchemaStyle::Dump,
            plan: PlanStyle::None,
            reasoning_effort: 1.0,
            candidates: 1,
            max_retries: 1,
        },
        MethodProfile {
            name: "C3-SQL",
            examples: ExampleStyle::None,
            include_evidence: true,
            schema: SchemaStyle::Dump,
            plan: PlanStyle::None,
            reasoning_effort: 1.0,
            candidates: 1,
            max_retries: 1,
        },
    ]
}

/// Result of one baseline generation.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// The generated SQL, if any attempt produced one.
    pub sql: Option<String>,
    /// Attempts consumed (1 = no retries needed).
    pub attempts: usize,
    /// Whether the final SQL parsed and executed cleanly.
    pub validated: bool,
}

/// Run one baseline on one question.
///
/// `full_query_examples` are the historical log queries (the material a
/// baseline would mine its few-shot store from); `evidence` is the
/// benchmark-provided external knowledge.
pub fn run_baseline(
    profile: &MethodProfile,
    model: &dyn LanguageModel,
    index: &KnowledgeIndex,
    db: &Database,
    question: &str,
    full_query_examples: &[(String, String)],
    evidence: &[String],
) -> BaselineResult {
    let ks = index.knowledge();

    // Examples.
    let examples: Vec<PromptExample> = match profile.examples {
        ExampleStyle::None => Vec::new(),
        ExampleStyle::FullQuery => {
            // Select by similarity to the question, like DAIL-SQL's
            // masked-question matching.
            let q = index.embedder().embed(question);
            let mut scored: Vec<(&(String, String), f32)> = full_query_examples
                .iter()
                .map(|pair| {
                    let emb = index.embedder().embed(&pair.0);
                    (pair, genedit_retrieval::cosine(&q, &emb))
                })
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            scored
                .into_iter()
                .take(4)
                .map(|((q, sql), _)| PromptExample {
                    description: q.clone(),
                    sql: sql.clone(),
                    kind: None,
                    term: None,
                })
                .collect()
        }
    };

    // Schema.
    let all_schema: Vec<PromptSchemaElement> = ks
        .schema_elements()
        .iter()
        .map(|s| PromptSchemaElement {
            table: s.table.clone(),
            column: s.column.clone(),
            description: s.description.clone(),
            top_values: s.top_values.clone(),
        })
        .collect();
    let schema: Vec<PromptSchemaElement> = match profile.schema {
        SchemaStyle::Dump => Vec::new(),
        SchemaStyle::Full => all_schema,
        SchemaStyle::Linked { recall } => {
            let mut link = Prompt::new(TaskKind::SchemaLinking, question);
            link.schema = all_schema.clone();
            // Baselines have no degradation ladder (that's GenEdit's
            // resilience story): a failed or wrong-variant linking call
            // simply links nothing.
            let keys: Vec<String> = model
                .complete(&CompletionRequest::new(link))
                .ok()
                .and_then(|r| r.as_items().map(|v| v.to_vec()))
                .unwrap_or_default();
            all_schema
                .into_iter()
                .filter(|el| keys.iter().any(|k| k == &el.key()))
                .filter(|el| {
                    // Lossy filtering models the method's linking quality.
                    el.column.is_none()
                        || hash01(&[profile.name, "recall", &el.key(), question], 0) < recall
                })
                .collect()
        }
    };

    // Base prompt.
    let mut base = Prompt::new(TaskKind::SqlGeneration, question);
    base.examples = examples;
    base.schema = schema;
    base.reasoning_effort = profile.reasoning_effort;
    if profile.include_evidence {
        base.evidence = evidence.to_vec();
    }

    // Plan (sub-question decomposition without pseudo-SQL).
    if profile.plan == PlanStyle::NlPlan {
        let mut plan_prompt = base.clone();
        plan_prompt.task = TaskKind::PlanGeneration;
        let plan: Plan = model
            .complete(&CompletionRequest::new(plan_prompt))
            .ok()
            .and_then(|r| r.as_plan().cloned())
            .unwrap_or_default();
        base.plan = Some(plan.without_pseudo_sql());
    }

    // Generate with retries.
    let mut errors: Vec<String> = Vec::new();
    let mut last_sql = None;
    for attempt in 0..=profile.max_retries {
        let mut prompt = base.clone();
        prompt.errors = errors.clone();
        let mut round_errors = Vec::new();
        for seed in 0..profile.candidates.max(1) as u64 {
            let sql = match model
                .complete(&CompletionRequest::with_seed(prompt.clone(), seed))
                .ok()
                .and_then(|r| r.as_sql().map(|s| s.to_string()))
            {
                Some(s) => s,
                None => continue,
            };
            match genedit_sql::parser::parse_statement(&sql)
                .map_err(|e| e.to_string())
                .and_then(|_| {
                    genedit_sql::exec::execute_sql(db, &sql)
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                }) {
                Ok(()) => {
                    return BaselineResult {
                        sql: Some(sql),
                        attempts: attempt + 1,
                        validated: true,
                    }
                }
                Err(e) => {
                    round_errors.push(e);
                    last_sql = Some(sql);
                }
            }
        }
        errors.extend(round_errors);
    }
    BaselineResult {
        sql: last_sql,
        attempts: profile.max_retries + 1,
        validated: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genedit_bird::{DomainBundle, SPORTS};
    use genedit_llm::{OracleConfig, OracleModel, TaskRegistry};

    fn setup() -> (DomainBundle, KnowledgeIndex, OracleModel) {
        let bundle = DomainBundle::build(&SPORTS, (4, 2, 1), 42);
        let index = KnowledgeIndex::build(bundle.build_knowledge());
        let mut reg = TaskRegistry::new();
        for t in &bundle.tasks {
            reg.register(t.clone());
        }
        let oracle = OracleModel::with_config(
            reg,
            OracleConfig {
                noise_rate: 0.0,
                ..Default::default()
            },
        );
        (bundle, index, oracle)
    }

    fn log_pairs(bundle: &DomainBundle) -> Vec<(String, String)> {
        bundle
            .logs
            .iter()
            .map(|l| (l.question.clone(), l.sql.clone()))
            .collect()
    }

    #[test]
    fn five_paper_baselines() {
        let names: Vec<&str> = paper_baselines().iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec!["CHESS", "MAC-SQL", "TA-SQL", "DAIL-SQL", "C3-SQL"]
        );
    }

    #[test]
    fn baseline_with_evidence_solves_simple_term_task() {
        // Larger bundle: the tiny test bundle may not include an
        // evidence-carrying term task.
        let bundle = DomainBundle::build(&SPORTS, (24, 7, 3), 42);
        let index = KnowledgeIndex::build(bundle.build_knowledge());
        let mut reg = TaskRegistry::new();
        for t in &bundle.tasks {
            reg.register(t.clone());
        }
        let oracle = OracleModel::with_config(
            reg,
            OracleConfig {
                noise_rate: 0.0,
                ..Default::default()
            },
        );
        let chess = &paper_baselines()[0];
        let task = bundle
            .tasks
            .iter()
            .find(|t| {
                t.difficulty == genedit_llm::Difficulty::Simple
                    && !t.required_terms.is_empty()
                    && !t.evidence.is_empty()
            })
            .expect("a term task with evidence");
        let r = run_baseline(
            chess,
            &oracle,
            &index,
            &bundle.db,
            &task.question,
            &log_pairs(&bundle),
            &task.evidence,
        );
        let (ok, note) =
            genedit_bird::score_prediction(&bundle.db, &task.gold_sql, r.sql.as_deref());
        assert!(ok, "{note:?} {:?}", r.sql);
    }

    #[test]
    fn zero_shot_baseline_struggles_on_challenging() {
        let (bundle, index, oracle) = setup();
        let c3 = paper_baselines()
            .into_iter()
            .find(|p| p.name == "C3-SQL")
            .unwrap();
        let task = bundle
            .tasks
            .iter()
            .find(|t| t.difficulty == genedit_llm::Difficulty::Challenging)
            .unwrap();
        let r = run_baseline(
            &c3,
            &oracle,
            &index,
            &bundle.db,
            &task.question,
            &[],
            &task.evidence,
        );
        let (ok, _) = genedit_bird::score_prediction(&bundle.db, &task.gold_sql, r.sql.as_deref());
        // With no plan and a dumped schema, the QoQ flagship task should
        // not come out EX-correct.
        assert!(!ok, "{:?}", r.sql);
    }

    #[test]
    fn baseline_runs_are_deterministic() {
        let (bundle, index, oracle) = setup();
        let dail = paper_baselines()
            .into_iter()
            .find(|p| p.name == "DAIL-SQL")
            .unwrap();
        let task = &bundle.tasks[1];
        let a = run_baseline(
            &dail,
            &oracle,
            &index,
            &bundle.db,
            &task.question,
            &log_pairs(&bundle),
            &task.evidence,
        );
        let b = run_baseline(
            &dail,
            &oracle,
            &index,
            &bundle.db,
            &task.question,
            &log_pairs(&bundle),
            &task.evidence,
        );
        assert_eq!(a.sql, b.sql);
        assert_eq!(a.attempts, b.attempts);
    }
}
