//! Pipeline configuration and the Table-2 ablation switches.

use genedit_llm::ResiliencePolicy;

/// Configuration of the GenEdit generation pipeline (§2.1, §3).
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Examples kept after re-ranking (operator 3).
    pub example_top_k: usize,
    /// Instructions kept after re-ranking (operator 4).
    pub instruction_top_k: usize,
    /// Schema elements kept after linking + re-rank filtering (operator 5).
    pub schema_top_k: usize,
    /// Candidate SQL queries sampled per generation call (§3: "one or
    /// more candidate SQL queries … GenEdit picks the 'best' one").
    pub candidates: usize,
    /// Maximum regenerations on syntactic/semantic errors (§3: "might
    /// regenerate the query up to k times").
    pub max_retries: usize,
    /// Operator 1: canonical-form reformulation.
    pub use_reformulation: bool,
    /// Operator 2: intent classification.
    pub use_intent_classification: bool,
    /// Operator 5: schema linking (off = ship the full schema).
    pub use_schema_linking: bool,
    /// Operator 4: instruction selection.
    pub use_instructions: bool,
    /// Operator 3: example selection.
    pub use_examples: bool,
    /// First generation call: CoT plan.
    pub use_plan: bool,
    /// Attach pseudo-SQL to plan steps.
    pub use_pseudo_sql: bool,
    /// Feed benchmark evidence strings to the model. GenEdit relies on its
    /// knowledge set instead (the evidence's content entered the set
    /// during pre-processing), so this is off by default.
    pub include_evidence: bool,
    /// How the "best" candidate is picked when `candidates > 1` (§3:
    /// "If more than one candidate query is generated, GenEdit picks the
    /// 'best' one").
    pub candidate_selection: CandidateSelection,
    /// Retry/backoff + circuit-breaker policy wrapped around every model
    /// call. `None` (the default) leaves the model path untouched — zero
    /// overhead when the backend is healthy and trusted.
    pub resilience: Option<ResiliencePolicy>,
}

/// Candidate-picking strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateSelection {
    /// Accept the first candidate that parses and executes.
    FirstValid,
    /// Execute every candidate and pick the SQL whose result the largest
    /// number of candidates agree on (self-consistency voting); ties break
    /// toward the earliest candidate.
    MajorityResult,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            example_top_k: 10,
            instruction_top_k: 6,
            schema_top_k: 12,
            candidates: 2,
            max_retries: 2,
            use_reformulation: true,
            use_intent_classification: true,
            use_schema_linking: true,
            use_instructions: true,
            use_examples: true,
            use_plan: true,
            use_pseudo_sql: true,
            include_evidence: false,
            candidate_selection: CandidateSelection::FirstValid,
            resilience: None,
        }
    }
}

/// The ablations of Table 2. `WithoutDecomposition` acts at pre-processing
/// time (examples stored as full queries) rather than at inference time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// Full GenEdit, nothing removed.
    None,
    /// Skip the schema-linking operator (full schema shipped).
    WithoutSchemaLinking,
    /// Drop retrieved instructions from the prompt.
    WithoutInstructions,
    /// Drop retrieved examples from the prompt.
    WithoutExamples,
    /// Strip pseudo-SQL from example fragments.
    WithoutPseudoSql,
    /// Store examples as full queries instead of decomposed fragments.
    WithoutDecomposition,
}

impl Ablation {
    /// Every ablation, in Table 2 row order.
    pub const ALL: [Ablation; 6] = [
        Ablation::None,
        Ablation::WithoutSchemaLinking,
        Ablation::WithoutInstructions,
        Ablation::WithoutExamples,
        Ablation::WithoutPseudoSql,
        Ablation::WithoutDecomposition,
    ];

    /// Table 2 row label for this ablation.
    pub fn label(&self) -> &'static str {
        match self {
            Ablation::None => "GenEdit",
            Ablation::WithoutSchemaLinking => "w/o Schema Linking",
            Ablation::WithoutInstructions => "w/o Instructions",
            Ablation::WithoutExamples => "w/o Examples",
            Ablation::WithoutPseudoSql => "w/o Pseudo-SQL",
            Ablation::WithoutDecomposition => "w/o Decomposition",
        }
    }

    /// Apply the inference-time part of this ablation to a config.
    pub fn apply(&self, config: &mut PipelineConfig) {
        match self {
            Ablation::None | Ablation::WithoutDecomposition => {}
            Ablation::WithoutSchemaLinking => config.use_schema_linking = false,
            Ablation::WithoutInstructions => config.use_instructions = false,
            Ablation::WithoutExamples => config.use_examples = false,
            Ablation::WithoutPseudoSql => config.use_pseudo_sql = false,
        }
    }

    /// Does this ablation require the knowledge set to be rebuilt with
    /// full-query examples?
    pub fn needs_full_query_examples(&self) -> bool {
        matches!(self, Ablation::WithoutDecomposition)
    }

    /// A default [`PipelineConfig`] with this ablation applied.
    pub fn config(&self) -> PipelineConfig {
        let mut c = PipelineConfig::default();
        self.apply(&mut c);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_toggle_expected_switch() {
        assert!(!Ablation::WithoutSchemaLinking.config().use_schema_linking);
        assert!(!Ablation::WithoutInstructions.config().use_instructions);
        assert!(!Ablation::WithoutExamples.config().use_examples);
        assert!(!Ablation::WithoutPseudoSql.config().use_pseudo_sql);
        let full = Ablation::None.config();
        assert!(full.use_schema_linking && full.use_instructions && full.use_examples);
        assert!(Ablation::WithoutDecomposition.config().use_examples);
        assert!(Ablation::WithoutDecomposition.needs_full_query_examples());
    }

    #[test]
    fn labels_match_table2() {
        assert_eq!(Ablation::WithoutPseudoSql.label(), "w/o Pseudo-SQL");
        assert_eq!(Ablation::ALL.len(), 6);
    }
}
