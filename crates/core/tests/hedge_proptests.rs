//! Hedging property tests: the full GenEdit pipeline over hedged
//! dispatch and a latency-spike schedule, at arbitrary seeds, spike
//! rates, and hedge policies.
//!
//! The property: **hedging never changes answers**. Whichever copy wins
//! each race — and the winner varies with OS scheduling, spike
//! placement, and the hedge delay — the pipeline's output for a fixed
//! pipeline seed is byte-identical to the plain, unhedged, unspiked
//! run.
//!
//! The schedules here are timing-only (latency spikes) on purpose:
//! error-side faults key off the injector's *call counter*, and hedge
//! duplicates consume counter slots, so an error schedule legitimately
//! diverges between hedged and unhedged runs (different calls fail).
//! Spikes delay answers without changing them, which is exactly the
//! regime where the byte-identity contract must hold unconditionally.

use genedit_bird::Workload;
use genedit_core::{GenEditPipeline, GenerationResult, KnowledgeIndex};
use genedit_llm::{
    Clock, FaultConfig, FaultInjector, HedgePolicy, HedgedModel, OracleModel, SystemClock,
};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn workload() -> &'static Workload {
    static WORKLOAD: OnceLock<Workload> = OnceLock::new();
    WORKLOAD.get_or_init(|| Workload::small(42))
}

/// Semantic fingerprint of a generation, excluding the trace (span
/// timings legitimately differ between hedged and plain runs).
fn fingerprint(r: &GenerationResult) -> String {
    format!(
        "sql={:?}|reform={:?}|intents={:?}|ex={:?}|ins={:?}|schema={:?}|errors={:?}|validated={}",
        r.sql,
        r.reformulated,
        r.intents,
        r.used_examples,
        r.used_instructions,
        r.used_schema,
        r.errors,
        r.validated
    )
}

/// Run every task of the workload's first bundle through `pipeline`,
/// returning the fingerprints in task order.
fn run_all<M: genedit_llm::LanguageModel>(pipeline: &GenEditPipeline<M>) -> Vec<String> {
    let w = workload();
    let bundle = &w.domains[0];
    let index = KnowledgeIndex::build(bundle.build_knowledge());
    bundle
        .tasks
        .iter()
        .map(|task| {
            fingerprint(&pipeline.generate(&task.question, &index, &bundle.db, &task.evidence))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary spike schedules × arbitrary hedge policies: the hedged
    /// pipeline's outputs are byte-identical to the plain pipeline's.
    /// Each case races real threads, so the hedge-win interleaving
    /// differs run to run — the answers must not.
    #[test]
    fn hedged_pipeline_output_is_byte_identical(
        fault_seed in 0u64..10_000,
        spike_rate in 0.0f64..0.5,
        delay_ms in 1u64..6,
        min_observations in 0u64..16,
    ) {
        let w = workload();
        let plain = GenEditPipeline::new(OracleModel::new(w.registry()));
        let expected = run_all(&plain);

        let injector = FaultInjector::new(
            OracleModel::new(w.registry()),
            FaultConfig {
                latency_spike: spike_rate,
                spike: Duration::from_millis(10),
                ..FaultConfig::default()
            },
            fault_seed,
        )
        .with_clock(Arc::new(SystemClock::new()) as Arc<dyn Clock>);
        let hedged = HedgedModel::new(
            injector,
            HedgePolicy {
                min_delay: Duration::from_millis(delay_ms),
                max_delay: Duration::from_millis(delay_ms),
                min_observations,
                ..HedgePolicy::default()
            },
        );
        let pipeline = GenEditPipeline::new(hedged);
        let got = run_all(&pipeline);

        prop_assert_eq!(&got, &expected, "hedged run diverged from the plain pipeline");
    }
}

/// The same stack run twice: whatever interleaving each run's races
/// take, both runs (and the plain baseline) agree byte for byte.
#[test]
fn repeated_hedged_runs_agree() {
    let w = workload();
    let plain = GenEditPipeline::new(OracleModel::new(w.registry()));
    let expected = run_all(&plain);
    for round in 0..2 {
        let injector = FaultInjector::new(
            OracleModel::new(w.registry()),
            FaultConfig {
                latency_spike: 0.3,
                spike: Duration::from_millis(10),
                ..FaultConfig::default()
            },
            7,
        )
        .with_clock(Arc::new(SystemClock::new()) as Arc<dyn Clock>);
        let hedged = HedgedModel::new(
            injector,
            HedgePolicy {
                min_delay: Duration::from_millis(2),
                max_delay: Duration::from_millis(2),
                min_observations: 5,
                ..HedgePolicy::default()
            },
        );
        let pipeline = GenEditPipeline::new(hedged);
        assert_eq!(
            run_all(&pipeline),
            expected,
            "hedged round {round} diverged from the plain pipeline"
        );
    }
}
