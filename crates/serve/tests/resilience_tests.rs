//! Fault-containment tests for the serving runtime: per-request panic
//! isolation, supervised worker respawn, tenant quarantine, the
//! submit/shutdown race, unvalidated-result caching, and bounded drain.

use genedit_bird::{DomainBundle, SPORTS};
use genedit_core::KnowledgeIndex;
use genedit_llm::{
    CompletionRequest, CompletionResponse, LanguageModel, ModelError, OracleConfig, OracleModel,
    TaskRegistry,
};
use genedit_serve::{
    QuarantineConfig, QueryOutcome, QueryRequest, Rejected, ServeConfig, ServeRuntime,
    SupervisorConfig, Ticket, DRAIN_GRACE,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Marker that makes [`PoisonModel`] panic: requests whose question
/// carries it are poison pills, everything else passes through.
const POISON: &str = "POISON";

/// Suppress the default panic printout for *injected* poison panics so
/// chaos tests don't spray stderr; every other panic (including test
/// assertion failures) still prints through the saved default hook.
fn quiet_poison_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if message.contains(POISON) {
                return;
            }
            default(info);
        }));
    });
}

fn setup() -> (DomainBundle, OracleModel) {
    let bundle = DomainBundle::build(&SPORTS, (8, 7, 3), 42);
    let mut reg = TaskRegistry::new();
    for t in &bundle.tasks {
        reg.register(t.clone());
    }
    let oracle = OracleModel::with_config(
        reg,
        OracleConfig {
            noise_rate: 0.0,
            pseudo_drift_probability: 0.0,
            drift_probability: 0.0,
            canonical_form_penalty: 0.0,
            ..Default::default()
        },
    );
    (bundle, oracle)
}

/// A model that panics whenever the request's question carries the
/// poison marker (checked against the original question too, so a
/// reformulated prompt stays poisonous).
struct PoisonModel<M> {
    inner: M,
}

impl<M: LanguageModel> LanguageModel for PoisonModel<M> {
    fn name(&self) -> &str {
        "poison"
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        let original = request.prompt.original_question.as_deref().unwrap_or("");
        if request.prompt.question.contains(POISON) || original.contains(POISON) {
            panic!("{POISON}-pill request");
        }
        self.inner.complete(request)
    }
}

/// A model whose error switch can be flipped at runtime: while broken it
/// fails every call (the pipeline degrades to an unvalidated result),
/// afterwards it passes through.
struct SwitchModel<M> {
    inner: M,
    broken: Arc<AtomicBool>,
}

impl<M: LanguageModel> LanguageModel for SwitchModel<M> {
    fn name(&self) -> &str {
        "switch"
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        if self.broken.load(Ordering::SeqCst) {
            return Err(ModelError::Transient("switched off".to_string()));
        }
        self.inner.complete(request)
    }
}

/// A gate the test holds closed to pin workers inside a model call.
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }
}

struct GatedModel<M> {
    inner: M,
    gate: Arc<Gate>,
}

impl<M: LanguageModel> LanguageModel for GatedModel<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        self.gate.wait();
        self.inner.complete(request)
    }
}

/// Wait for a ticket with an explicit bound, so a stranded ticket fails
/// the test with a message instead of hanging the harness.
fn wait_bounded(ticket: &Ticket, bound: Duration) -> QueryOutcome {
    let deadline = Instant::now() + bound;
    loop {
        if let Some(outcome) = ticket.try_wait() {
            return outcome;
        }
        assert!(
            Instant::now() < deadline,
            "ticket {} never resolved",
            ticket.request_id()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Spin until the pool is back at `n` live workers.
fn wait_workers<M: LanguageModel + 'static>(runtime: &ServeRuntime<M>, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while runtime.workers_alive() != n {
        assert!(
            Instant::now() < deadline,
            "pool stuck at {} workers, wanted {n}",
            runtime.workers_alive()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn fast_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        poll_interval: Duration::from_millis(1),
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(5),
        respawn_budget: 64,
    }
}

#[test]
fn panicking_request_resolves_its_ticket_and_pool_recovers() {
    quiet_poison_panics();
    let (bundle, oracle) = setup();
    let index = Arc::new(KnowledgeIndex::build(bundle.build_knowledge()));
    let runtime = ServeRuntime::start(
        PoisonModel { inner: oracle },
        index,
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 2,
            supervisor: fast_supervisor(),
            ..ServeConfig::default()
        },
    );
    assert_eq!(runtime.workers_alive(), 2);

    let poison = runtime
        .submit(QueryRequest::new("acme", format!("{POISON} this request")))
        .unwrap();
    let outcome = wait_bounded(&poison, Duration::from_secs(10));
    match outcome {
        QueryOutcome::Failed { ref reason } => {
            assert!(
                reason.contains(POISON),
                "panic payload should surface in the outcome, got {reason:?}"
            );
        }
        other => panic!("poison request should fail, got {other:?}"),
    }
    assert_eq!(runtime.metrics().counter("serve.panic"), 1);

    // The retired worker respawns and clean traffic keeps completing.
    wait_workers(&runtime, 2);
    assert!(runtime.metrics().counter("serve.worker.respawned") >= 1);
    for task in bundle.tasks.iter().take(3) {
        let ticket = runtime
            .submit(QueryRequest::new("acme", &task.question))
            .unwrap();
        let outcome = wait_bounded(&ticket, Duration::from_secs(10));
        assert!(
            outcome.is_completed(),
            "clean request after a panic should complete, got {outcome:?}"
        );
    }
    runtime.shutdown();
}

#[test]
fn repeated_panics_keep_respawning_within_budget() {
    quiet_poison_panics();
    let (bundle, oracle) = setup();
    let index = Arc::new(KnowledgeIndex::build(bundle.build_knowledge()));
    let runtime = ServeRuntime::start(
        PoisonModel { inner: oracle },
        index,
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 2,
            supervisor: fast_supervisor(),
            ..ServeConfig::default()
        },
    );
    for i in 0..4 {
        let ticket = runtime
            .submit(QueryRequest::new("acme", format!("{POISON} #{i}")))
            .unwrap();
        let outcome = wait_bounded(&ticket, Duration::from_secs(10));
        assert!(matches!(outcome, QueryOutcome::Failed { .. }));
        wait_workers(&runtime, 2);
    }
    assert_eq!(runtime.metrics().counter("serve.panic"), 4);
    assert!(runtime.metrics().counter("serve.worker.respawned") >= 4);
    assert_eq!(runtime.metrics().counter("serve.worker.abandoned"), 0);
    runtime.shutdown();
}

#[test]
fn exhausted_respawn_budget_abandons_slot_and_shutdown_still_resolves_queue() {
    quiet_poison_panics();
    let (bundle, oracle) = setup();
    let index = Arc::new(KnowledgeIndex::build(bundle.build_knowledge()));
    let runtime = ServeRuntime::start(
        PoisonModel { inner: oracle },
        index,
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 1,
            supervisor: SupervisorConfig {
                respawn_budget: 0,
                ..fast_supervisor()
            },
            ..ServeConfig::default()
        },
    );
    let poison = runtime
        .submit(QueryRequest::new("acme", format!("{POISON} once")))
        .unwrap();
    assert!(matches!(
        wait_bounded(&poison, Duration::from_secs(10)),
        QueryOutcome::Failed { .. }
    ));
    // Budget 0: the slot is abandoned instead of respawned.
    let deadline = Instant::now() + Duration::from_secs(5);
    while runtime.metrics().counter("serve.worker.abandoned") == 0 {
        assert!(Instant::now() < deadline, "slot never abandoned");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(runtime.workers_alive(), 0);

    // Work queued behind a fully-dead pool must still resolve at
    // shutdown instead of stranding its caller.
    let stuck = runtime
        .submit(QueryRequest::new("acme", &bundle.tasks[0].question))
        .unwrap();
    runtime.shutdown();
    assert!(matches!(
        wait_bounded(&stuck, Duration::from_secs(5)),
        QueryOutcome::Cancelled
    ));
}

#[test]
fn panicked_verdict_lands_in_the_flight_recorder() {
    quiet_poison_panics();
    let (bundle, oracle) = setup();
    let index = Arc::new(KnowledgeIndex::build(bundle.build_knowledge()));
    let runtime = ServeRuntime::start(
        PoisonModel { inner: oracle },
        index,
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 1,
            supervisor: fast_supervisor(),
            observability: genedit_serve::ObsConfig {
                recorder: Some(genedit_telemetry::RecorderConfig::default()),
                ..Default::default()
            },
            ..ServeConfig::default()
        },
    );
    let poison = runtime
        .submit(QueryRequest::new("acme", format!("{POISON} recorded")))
        .unwrap();
    wait_bounded(&poison, Duration::from_secs(10));
    let dump = runtime.flight_recorder().unwrap().dump_jsonl();
    assert!(
        dump.contains("Panicked"),
        "flight recorder should carry the Panicked verdict: {dump}"
    );
    runtime.shutdown();
}

#[test]
fn quarantine_trips_probes_and_recovers_end_to_end() {
    quiet_poison_panics();
    let (bundle, oracle) = setup();
    let index = Arc::new(KnowledgeIndex::build(bundle.build_knowledge()));
    let runtime = ServeRuntime::start(
        PoisonModel { inner: oracle },
        index,
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 2,
            supervisor: fast_supervisor(),
            quarantine: QuarantineConfig {
                enabled: true,
                window: Duration::from_secs(30),
                min_samples: 3,
                failure_ratio: 0.5,
                cooldown: Duration::from_millis(150),
                probe_quota: 1,
            },
            ..ServeConfig::default()
        },
    );
    use genedit_serve::QuarantineState;

    // Three poison requests from one tenant trip its breaker.
    for i in 0..3 {
        let ticket = runtime
            .submit(QueryRequest::new("evil", format!("{POISON} #{i}")))
            .unwrap();
        assert!(matches!(
            wait_bounded(&ticket, Duration::from_secs(10)),
            QueryOutcome::Failed { .. }
        ));
        wait_workers(&runtime, 2);
    }
    assert_eq!(runtime.quarantine_state("evil"), QuarantineState::Open);
    assert_eq!(
        runtime
            .submit(QueryRequest::new("evil", "anything"))
            .map(|_| ()),
        Err(Rejected::Quarantined)
    );
    // The healthy tenant is untouched by its neighbor's quarantine.
    let good = runtime
        .submit(QueryRequest::new("good", &bundle.tasks[0].question))
        .unwrap();
    assert!(wait_bounded(&good, Duration::from_secs(10)).is_completed());
    assert_eq!(runtime.quarantine_state("good"), QuarantineState::Closed);

    // After the cooldown a single clean probe closes the breaker.
    std::thread::sleep(Duration::from_millis(200));
    let probe = runtime
        .submit(QueryRequest::new("evil", &bundle.tasks[1].question))
        .unwrap();
    assert!(wait_bounded(&probe, Duration::from_secs(10)).is_completed());
    assert_eq!(runtime.quarantine_state("evil"), QuarantineState::Closed);
    let after = runtime
        .submit(QueryRequest::new("evil", &bundle.tasks[2].question))
        .unwrap();
    assert!(wait_bounded(&after, Duration::from_secs(10)).is_completed());
    assert!(runtime.metrics().counter("serve.quarantine.tripped") >= 1);
    assert!(runtime.metrics().counter("serve.quarantine.recovered") >= 1);
    runtime.shutdown();
}

#[test]
fn failed_probe_reopens_quarantine() {
    quiet_poison_panics();
    let (bundle, oracle) = setup();
    let index = Arc::new(KnowledgeIndex::build(bundle.build_knowledge()));
    let runtime = ServeRuntime::start(
        PoisonModel { inner: oracle },
        index,
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 1,
            supervisor: fast_supervisor(),
            quarantine: QuarantineConfig {
                enabled: true,
                window: Duration::from_secs(30),
                min_samples: 2,
                failure_ratio: 0.5,
                cooldown: Duration::from_millis(100),
                probe_quota: 1,
            },
            ..ServeConfig::default()
        },
    );
    use genedit_serve::QuarantineState;
    for i in 0..2 {
        let ticket = runtime
            .submit(QueryRequest::new("evil", format!("{POISON} #{i}")))
            .unwrap();
        wait_bounded(&ticket, Duration::from_secs(10));
        wait_workers(&runtime, 1);
    }
    assert_eq!(runtime.quarantine_state("evil"), QuarantineState::Open);
    std::thread::sleep(Duration::from_millis(150));
    // The probe itself is poison: straight back to Open.
    let probe = runtime
        .submit(QueryRequest::new("evil", format!("{POISON} probe")))
        .unwrap();
    assert!(matches!(
        wait_bounded(&probe, Duration::from_secs(10)),
        QueryOutcome::Failed { .. }
    ));
    assert_eq!(runtime.quarantine_state("evil"), QuarantineState::Open);
    assert_eq!(
        runtime
            .submit(QueryRequest::new("evil", "anything"))
            .map(|_| ()),
        Err(Rejected::Quarantined)
    );
    assert!(runtime.metrics().counter("serve.quarantine.retripped") >= 1);
    runtime.shutdown();
}

#[test]
fn unvalidated_results_are_never_cached() {
    let (bundle, oracle) = setup();
    let index = Arc::new(KnowledgeIndex::build(bundle.build_knowledge()));
    let broken = Arc::new(AtomicBool::new(true));
    let runtime = ServeRuntime::start(
        SwitchModel {
            inner: oracle,
            broken: Arc::clone(&broken),
        },
        index,
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let question = &bundle.tasks[0].question;
    // Total outage: the request completes but fails validation. The old
    // runtime cached this result and replayed the broken SQL for the
    // whole epoch.
    let first = runtime.submit(QueryRequest::new("acme", question)).unwrap();
    match wait_bounded(&first, Duration::from_secs(10)) {
        QueryOutcome::Completed { result, cached, .. } => {
            assert!(!result.validated, "outage result should fail validation");
            assert!(!cached);
        }
        other => panic!("expected completion, got {other:?}"),
    }
    // Backend recovers: the same question must re-execute (no cache
    // hit on the unvalidated result) and now validate.
    broken.store(false, Ordering::SeqCst);
    let second = runtime.submit(QueryRequest::new("acme", question)).unwrap();
    match wait_bounded(&second, Duration::from_secs(10)) {
        QueryOutcome::Completed { result, cached, .. } => {
            assert!(!cached, "the unvalidated result must not have been cached");
            assert!(result.validated);
        }
        other => panic!("expected completion, got {other:?}"),
    }
    // The validated result *is* cached.
    let third = runtime.submit(QueryRequest::new("acme", question)).unwrap();
    match wait_bounded(&third, Duration::from_secs(10)) {
        QueryOutcome::Completed { result, cached, .. } => {
            assert!(cached);
            assert!(result.validated);
        }
        other => panic!("expected completion, got {other:?}"),
    }
    runtime.shutdown();
}

#[test]
fn submit_shutdown_race_never_strands_a_ticket() {
    let (bundle, oracle) = setup();
    let index = Arc::new(KnowledgeIndex::build(bundle.build_knowledge()));
    let runtime = Arc::new(ServeRuntime::start(
        oracle,
        index,
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 2,
            queue_capacity: 1024,
            ..ServeConfig::default()
        },
    ));
    let questions: Vec<String> = bundle.tasks.iter().map(|t| t.question.clone()).collect();
    let mut submitters = Vec::new();
    for worker in 0..4 {
        let runtime = Arc::clone(&runtime);
        let questions = questions.clone();
        submitters.push(std::thread::spawn(move || {
            let mut tickets = Vec::new();
            for i in 0usize.. {
                let q = &questions[(worker + i) % questions.len()];
                match runtime.submit(QueryRequest::new("acme", q)) {
                    Ok(ticket) => tickets.push(ticket),
                    Err(Rejected::ShuttingDown) => break,
                    Err(Rejected::QueueFull) => std::thread::sleep(Duration::from_millis(1)),
                    Err(other) => panic!("unexpected rejection {other:?}"),
                }
            }
            tickets
        }));
    }
    // Shut down while all four submitters are still hammering: any
    // submit that loses the race under the scheduler lock must answer
    // ShuttingDown, and any that won must resolve below.
    std::thread::sleep(Duration::from_millis(20));
    runtime.shutdown();
    let tickets: Vec<Ticket> = submitters
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    assert!(!tickets.is_empty(), "submitters never got a request in");
    // Every accepted ticket resolves — none stranded behind the race.
    for ticket in &tickets {
        let outcome = wait_bounded(ticket, Duration::from_secs(10));
        assert!(
            outcome.is_completed() || matches!(outcome, QueryOutcome::Cancelled),
            "unexpected outcome {outcome:?}"
        );
    }
}

#[test]
fn drain_with_deadline_is_bounded_and_resolves_everything() {
    let (bundle, oracle) = setup();
    let index = Arc::new(KnowledgeIndex::build(bundle.build_knowledge()));
    let gate = Gate::new();
    let runtime = ServeRuntime::start(
        GatedModel {
            inner: oracle,
            gate: Arc::clone(&gate),
        },
        index,
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    // One request wedged inside the model call, two stuck behind it.
    let wedged = runtime
        .submit(QueryRequest::new("acme", &bundle.tasks[0].question))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while runtime.queue_depth() > 0 {
        assert!(Instant::now() < deadline, "worker never picked up request");
        std::thread::sleep(Duration::from_millis(1));
    }
    let queued_a = runtime
        .submit(QueryRequest::new("acme", &bundle.tasks[1].question))
        .unwrap();
    let queued_b = runtime
        .submit(QueryRequest::new("acme", &bundle.tasks[2].question))
        .unwrap();

    let timeout = Duration::from_millis(150);
    let started = Instant::now();
    let report = runtime.shutdown_with_deadline(timeout);
    let elapsed = started.elapsed();
    assert!(
        elapsed < timeout + DRAIN_GRACE + Duration::from_secs(2),
        "drain took {elapsed:?}, bound was {timeout:?} + {DRAIN_GRACE:?}"
    );
    assert!(!report.clean);
    assert_eq!(report.forced_queued, 2);
    assert_eq!(report.cancelled_inflight, 1);
    assert_eq!(report.forced_inflight, 1, "gated worker never sees cancel");
    assert_eq!(report.detached_workers, 1);
    // Every ticket resolved despite the wedged worker.
    assert!(matches!(
        wait_bounded(&wedged, Duration::from_secs(5)),
        QueryOutcome::Cancelled
    ));
    for ticket in [&queued_a, &queued_b] {
        assert!(matches!(
            wait_bounded(ticket, Duration::from_secs(5)),
            QueryOutcome::Cancelled
        ));
    }
    // Unblock the detached thread so it can exit.
    gate.open();
}

#[test]
fn drain_with_deadline_is_clean_when_work_finishes_in_time() {
    let (bundle, oracle) = setup();
    let index = Arc::new(KnowledgeIndex::build(bundle.build_knowledge()));
    let runtime = ServeRuntime::start(
        oracle,
        index,
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let tickets: Vec<Ticket> = bundle
        .tasks
        .iter()
        .take(6)
        .map(|t| {
            runtime
                .submit(QueryRequest::new("acme", &t.question))
                .unwrap()
        })
        .collect();
    let report = runtime.shutdown_with_deadline(Duration::from_secs(30));
    assert!(report.clean, "expected clean drain, got {report:?}");
    assert_eq!(report.forced_queued, 0);
    assert_eq!(report.cancelled_inflight, 0);
    assert_eq!(report.forced_inflight, 0);
    assert_eq!(report.detached_workers, 0);
    for ticket in &tickets {
        assert!(wait_bounded(ticket, Duration::from_secs(5)).is_completed());
    }
}

#[test]
fn try_start_returns_a_working_runtime() {
    let (bundle, oracle) = setup();
    let index = Arc::new(KnowledgeIndex::build(bundle.build_knowledge()));
    let runtime = ServeRuntime::try_start(
        oracle,
        index,
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig::default(),
    )
    .expect("spawning a normal pool succeeds");
    assert_eq!(runtime.workers_alive(), 2);
    let ticket = runtime
        .submit(QueryRequest::new("acme", &bundle.tasks[0].question))
        .unwrap();
    assert!(wait_bounded(&ticket, Duration::from_secs(10)).is_completed());
    runtime.shutdown();
}
