//! End-to-end tests for the serving runtime: cache correctness across
//! knowledge commits, backpressure/shedding, deadlines, cancellation,
//! fairness, and multi-threaded consistency.

use genedit_bird::{DomainBundle, SPORTS};
use genedit_core::regression::{submit_edits_durable, GoldenQuery, SubmissionResult};
use genedit_core::{GenEditPipeline, GenerationResult, KnowledgeIndex};
use genedit_knowledge::{
    DurableKnowledgeStore, Edit, KnowledgeSet, MemFs, SourceRef, StagingArea, StoreConfig, StoreFs,
};
use genedit_llm::{
    BatchConfig, CompletionRequest, CompletionResponse, HedgePolicy, LanguageModel, ModelError,
    OracleConfig, OracleModel, TaskRegistry,
};
use genedit_serve::{
    ObsConfig, Priority, QueryOutcome, QueryRequest, Rejected, ServeConfig, ServeRuntime,
};
use genedit_telemetry::recorder::dump_from_jsonl;
use genedit_telemetry::span::AttrValue;
use genedit_telemetry::{RecorderConfig, SloConfig};
use std::collections::BTreeSet;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

fn setup() -> (DomainBundle, KnowledgeSet, OracleModel) {
    let bundle = DomainBundle::build(&SPORTS, (8, 7, 3), 42);
    let ks = bundle.build_knowledge();
    let mut reg = TaskRegistry::new();
    for t in &bundle.tasks {
        reg.register(t.clone());
    }
    let oracle = OracleModel::with_config(
        reg,
        OracleConfig {
            noise_rate: 0.0,
            pseudo_drift_probability: 0.0,
            drift_probability: 0.0,
            canonical_form_penalty: 0.0,
            ..Default::default()
        },
    );
    (bundle, ks, oracle)
}

/// Canonical semantic fingerprint of a generation — everything the
/// caller acts on, excluding the trace (span timings differ run to run).
/// Cached replays must be byte-identical under this view.
fn fingerprint(r: &GenerationResult) -> String {
    format!(
        "sql={:?}|reform={:?}|intents={:?}|ex={:?}|ins={:?}|schema={:?}|errors={:?}|validated={}",
        r.sql,
        r.reformulated,
        r.intents,
        r.used_examples,
        r.used_instructions,
        r.used_schema,
        r.errors,
        r.validated
    )
}

/// A gate the test holds closed to pin workers inside a model call,
/// making queue states deterministic.
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }
}

struct GatedModel<M> {
    inner: M,
    gate: Arc<Gate>,
}

impl<M: LanguageModel> LanguageModel for GatedModel<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        self.gate.wait();
        self.inner.complete(request)
    }
}

/// Spin until the admission queue is empty (a worker picked the head
/// request up), so subsequent submissions see a deterministic queue.
fn wait_queue_empty<M: LanguageModel + 'static>(runtime: &ServeRuntime<M>) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while runtime.queue_depth() > 0 {
        assert!(Instant::now() < deadline, "queue never drained");
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn completed(outcome: &QueryOutcome) -> (&GenerationResult, bool, u64) {
    match outcome {
        QueryOutcome::Completed {
            result,
            cached,
            service_seq,
            ..
        } => (result.as_ref(), *cached, *service_seq),
        other => panic!("expected Completed, got {other:?}"),
    }
}

#[test]
fn served_result_matches_direct_pipeline() {
    let (bundle, ks, oracle) = setup();
    let index = Arc::new(KnowledgeIndex::build(ks.clone()));
    let direct = GenEditPipeline::new(&oracle);
    let expected = fingerprint(&direct.generate(
        &bundle.tasks[0].question,
        &KnowledgeIndex::build(ks.clone()),
        &bundle.db,
        &[],
    ));

    let runtime = ServeRuntime::start(
        oracle,
        index,
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let ticket = runtime
        .submit(QueryRequest::new("acme", &bundle.tasks[0].question))
        .unwrap();
    let outcome = ticket.wait();
    let (result, cached, _) = completed(&outcome);
    assert!(!cached);
    assert_eq!(fingerprint(result), expected);
    assert!(!result.trace.spans.is_empty());
    runtime.shutdown();
}

#[test]
fn repeat_question_hits_the_result_cache() {
    let (bundle, ks, oracle) = setup();
    let runtime = ServeRuntime::start(
        oracle,
        Arc::new(KnowledgeIndex::build(ks)),
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let q = &bundle.tasks[1].question;
    let first = runtime.submit(QueryRequest::new("acme", q)).unwrap().wait();
    let second = runtime.submit(QueryRequest::new("acme", q)).unwrap().wait();
    let (r1, c1, _) = completed(&first);
    let (r2, c2, _) = completed(&second);
    assert!(!c1);
    assert!(c2, "second identical request must be served from cache");
    assert_eq!(fingerprint(r1), fingerprint(r2));
    let metrics = runtime.metrics();
    assert_eq!(metrics.counter("serve.cache.hit"), 1);
    assert_eq!(metrics.counter("serve.cache.miss"), 1);
    // A different tenant asking the same question must NOT see the
    // cached entry — cache keys are tenant-scoped.
    let other = runtime
        .submit(QueryRequest::new("globex", q))
        .unwrap()
        .wait();
    let (_, c3, _) = completed(&other);
    assert!(!c3, "cross-tenant cache hit");
    runtime.shutdown();
}

/// Satellite requirement: a staged-edit commit through the durable store
/// bumps the knowledge epoch; after the runtime publishes the new
/// snapshot, a previously cached question is regenerated (cache miss +
/// fresh trace), not replayed stale.
#[test]
fn knowledge_commit_invalidates_cached_answers() {
    let (bundle, ks, oracle) = setup();
    let mem = Arc::new(MemFs::new());
    let fs: Arc<dyn StoreFs> = Arc::clone(&mem) as Arc<dyn StoreFs>;
    let mut store =
        DurableKnowledgeStore::open_with(fs, "k.json", "k.wal", StoreConfig::default(), None)
            .unwrap();
    for logged in ks.log() {
        store.apply(logged.edit.clone()).unwrap();
    }
    let epoch0 = store.epoch();

    let oracle = Arc::new(oracle);
    let runtime = ServeRuntime::start(
        Arc::clone(&oracle),
        Arc::new(KnowledgeIndex::build(store.set().clone())),
        epoch0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let q = &bundle.tasks[0].question;
    let cold = runtime.submit(QueryRequest::new("acme", q)).unwrap().wait();
    let warm = runtime.submit(QueryRequest::new("acme", q)).unwrap().wait();
    assert!(!completed(&cold).1);
    assert!(completed(&warm).1, "expected a cache hit before the commit");
    assert_eq!(runtime.metrics().counter("serve.cache.miss"), 1);

    // Commit a staged edit batch through the regression gate.
    let direct = GenEditPipeline::new(Arc::clone(&oracle));
    let mut staging = StagingArea::new();
    staging.stage(Edit::InsertInstruction {
        intent: None,
        text: "serving-epoch invalidation note".into(),
        sql_hint: None,
        term: None,
        source: SourceRef::Feedback { feedback_id: 77 },
    });
    let golden: Vec<GoldenQuery> = bundle
        .tasks
        .iter()
        .take(3)
        .map(|t| GoldenQuery {
            question: t.question.clone(),
            gold_sql: t.gold_sql.clone(),
        })
        .collect();
    let submission = submit_edits_durable(
        &direct,
        &bundle.db,
        &mut store,
        staging,
        &golden,
        |outcome| outcome.passed(),
        "serve invalidation test",
    )
    .unwrap();
    assert!(matches!(submission, SubmissionResult::Merged { .. }));
    let epoch1 = store.epoch();
    assert!(epoch1 > epoch0, "commit must advance the knowledge epoch");

    runtime.publish(Arc::new(KnowledgeIndex::build(store.set().clone())), epoch1);
    assert_eq!(runtime.epoch(), epoch1);

    let after = runtime.submit(QueryRequest::new("acme", q)).unwrap().wait();
    let (result, cached, _) = completed(&after);
    assert!(!cached, "epoch bump must invalidate the cached answer");
    assert!(
        !result.trace.spans.is_empty(),
        "regeneration must carry a fresh trace"
    );
    // Two misses total: the cold request and the post-commit regeneration.
    assert_eq!(runtime.metrics().counter("serve.cache.miss"), 2);
    assert_eq!(runtime.metrics().counter("serve.cache.hit"), 1);
    runtime.shutdown();
}

#[test]
fn saturated_queue_sheds_earliest_deadline_first() {
    let (bundle, ks, oracle) = setup();
    let gate = Gate::new();
    let runtime = ServeRuntime::start(
        GatedModel {
            inner: oracle,
            gate: Arc::clone(&gate),
        },
        Arc::new(KnowledgeIndex::build(ks)),
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 1,
            queue_capacity: 1,
            result_cache_capacity: 0,
            reform_cache_capacity: 0,
            ..ServeConfig::default()
        },
    );
    let q = &bundle.tasks[0].question;
    // r0 occupies the single worker (blocked inside the model call).
    let r0 = runtime.submit(QueryRequest::new("a", q)).unwrap();
    wait_queue_empty(&runtime);
    // r1 fills the queue with a near deadline.
    let r1 = runtime
        .submit(QueryRequest::new("b", q).with_deadline_in(Duration::from_millis(50)))
        .unwrap();
    // r2 has far more runway: r1 (earliest deadline) is shed for it.
    let r2 = runtime
        .submit(QueryRequest::new("c", q).with_deadline_in(Duration::from_secs(30)))
        .unwrap();
    assert!(matches!(r1.wait(), QueryOutcome::Shed));
    // r3 has no deadline ("latest possible"): sheds r2 in turn.
    let r3 = runtime.submit(QueryRequest::new("d", q)).unwrap();
    assert!(matches!(r2.wait(), QueryOutcome::Shed));
    // r4: queue holds only no-deadline work — nothing to shed, reject.
    let rejected = runtime.submit(QueryRequest::new("e", q));
    assert!(matches!(rejected, Err(Rejected::QueueFull)));

    let metrics = runtime.metrics();
    assert_eq!(metrics.counter("serve.shed"), 2);
    assert_eq!(metrics.counter("serve.rejected"), 1);
    gate.open();
    assert!(r0.wait().is_completed());
    assert!(r3.wait().is_completed());
    runtime.shutdown();
}

#[test]
fn deadline_expires_while_queued() {
    let (bundle, ks, oracle) = setup();
    let gate = Gate::new();
    let runtime = ServeRuntime::start(
        GatedModel {
            inner: oracle,
            gate: Arc::clone(&gate),
        },
        Arc::new(KnowledgeIndex::build(ks)),
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let q = &bundle.tasks[0].question;
    let r0 = runtime.submit(QueryRequest::new("a", q)).unwrap();
    wait_queue_empty(&runtime);
    let doomed = runtime
        .submit(QueryRequest::new("b", q).with_deadline_in(Duration::from_millis(20)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(40));
    gate.open();
    assert!(matches!(doomed.wait(), QueryOutcome::Expired));
    assert!(r0.wait().is_completed());
    assert_eq!(runtime.metrics().counter("serve.expired"), 1);
    runtime.shutdown();
}

#[test]
fn cancellation_resolves_queued_request() {
    let (bundle, ks, oracle) = setup();
    let gate = Gate::new();
    let runtime = ServeRuntime::start(
        GatedModel {
            inner: oracle,
            gate: Arc::clone(&gate),
        },
        Arc::new(KnowledgeIndex::build(ks)),
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let q = &bundle.tasks[0].question;
    let r0 = runtime.submit(QueryRequest::new("a", q)).unwrap();
    wait_queue_empty(&runtime);
    let victim = runtime.submit(QueryRequest::new("b", q)).unwrap();
    victim.cancel();
    gate.open();
    assert!(matches!(victim.wait(), QueryOutcome::Cancelled));
    assert!(r0.wait().is_completed());
    assert_eq!(runtime.metrics().counter("serve.cancelled"), 1);
    runtime.shutdown();
}

#[test]
fn flooding_tenant_does_not_starve_others() {
    let (bundle, ks, oracle) = setup();
    let gate = Gate::new();
    let runtime = ServeRuntime::start(
        GatedModel {
            inner: oracle,
            gate: Arc::clone(&gate),
        },
        Arc::new(KnowledgeIndex::build(ks)),
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 1,
            result_cache_capacity: 0,
            reform_cache_capacity: 0,
            ..ServeConfig::default()
        },
    );
    // Pin the worker, then let the hot tenant flood the queue before
    // the cold tenant's single request arrives.
    let pin = runtime
        .submit(QueryRequest::new("hot", &bundle.tasks[0].question))
        .unwrap();
    wait_queue_empty(&runtime);
    let hot: Vec<_> = (0..8)
        .map(|i| {
            runtime
                .submit(QueryRequest::new(
                    "hot",
                    &bundle.tasks[i % bundle.tasks.len()].question,
                ))
                .unwrap()
        })
        .collect();
    let cold = runtime
        .submit(QueryRequest::new("cold", &bundle.tasks[1].question))
        .unwrap();
    gate.open();
    let (_, _, cold_seq) = completed(&cold.wait());
    // Service seq 0 is the pinned request; DRR must schedule the cold
    // tenant within the first round, not behind the 8-deep hot backlog.
    assert!(
        cold_seq <= 2,
        "cold tenant served at position {cold_seq} despite DRR"
    );
    assert!(pin.wait().is_completed());
    for t in hot {
        assert!(t.wait().is_completed());
    }
    runtime.shutdown();
}

/// Satellite requirement: a request whose deadline has already passed at
/// submit time is rejected up front with [`Rejected::DeadlineExpired`],
/// consuming no queue slot and shedding nothing.
#[test]
fn stale_deadline_is_rejected_at_submit() {
    let (bundle, ks, oracle) = setup();
    let gate = Gate::new();
    let runtime = ServeRuntime::start(
        GatedModel {
            inner: oracle,
            gate: Arc::clone(&gate),
        },
        Arc::new(KnowledgeIndex::build(ks)),
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 1,
            queue_capacity: 1,
            result_cache_capacity: 0,
            reform_cache_capacity: 0,
            ..ServeConfig::default()
        },
    );
    let q = &bundle.tasks[0].question;
    // Pin the worker, then fill the single queue slot with live work.
    let r0 = runtime.submit(QueryRequest::new("a", q)).unwrap();
    wait_queue_empty(&runtime);
    let queued = runtime.submit(QueryRequest::new("b", q)).unwrap();

    // An already-expired deadline must bounce without touching the queue
    // (the queued no-deadline request would otherwise be shed-eligible).
    let stale = QueryRequest::new("c", q).with_deadline(Instant::now() - Duration::from_millis(1));
    assert!(matches!(
        runtime.submit(stale),
        Err(Rejected::DeadlineExpired)
    ));
    assert_eq!(runtime.queue_depth(), 1, "stale request consumed a slot");
    assert_eq!(runtime.metrics().counter("serve.rejected"), 1);
    assert_eq!(runtime.metrics().counter("serve.shed"), 0);

    gate.open();
    assert!(r0.wait().is_completed());
    assert!(queued.wait().is_completed());
    runtime.shutdown();
}

/// Tentpole invariant: serving over an enabled [`BatchScheduler`] (calls
/// coalesce across the worker pool) returns byte-identical results to
/// the unbatched direct pipeline for every question.
#[test]
fn batched_serving_matches_direct_pipeline() {
    let (bundle, ks, oracle) = setup();
    let direct = GenEditPipeline::new(&oracle);
    let direct_index = KnowledgeIndex::build(ks.clone());
    let questions: Vec<&str> = bundle
        .tasks
        .iter()
        .take(4)
        .map(|t| t.question.as_str())
        .collect();
    let expected: Vec<String> = questions
        .iter()
        .map(|q| fingerprint(&direct.generate(q, &direct_index, &bundle.db, &[])))
        .collect();

    let runtime = ServeRuntime::start(
        oracle,
        Arc::new(KnowledgeIndex::build(ks)),
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            // Caches off so every request exercises the batched path.
            result_cache_capacity: 0,
            reform_cache_capacity: 0,
            batch: BatchConfig::default(),
            ..ServeConfig::default()
        },
    );
    let tickets: Vec<_> = (0..16)
        .map(|i| {
            runtime
                .submit(QueryRequest::new("acme", questions[i % questions.len()]))
                .unwrap()
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let outcome = ticket.wait();
        let (result, _, _) = completed(&outcome);
        assert_eq!(
            fingerprint(result),
            expected[i % questions.len()],
            "request {i} diverged under batching"
        );
    }
    runtime.shutdown();
}

/// Satellite requirement: N threads hammering the runtime concurrently
/// never observe torn results or another tenant's (or question's)
/// cached answer — every outcome matches the direct-pipeline result for
/// the exact question submitted.
#[test]
fn concurrent_hammering_is_consistent_per_question() {
    let (bundle, ks, oracle) = setup();
    let direct = GenEditPipeline::new(&oracle);
    let direct_index = KnowledgeIndex::build(ks.clone());
    let questions: Vec<&str> = bundle
        .tasks
        .iter()
        .take(4)
        .map(|t| t.question.as_str())
        .collect();
    let expected: Vec<String> = questions
        .iter()
        .map(|q| fingerprint(&direct.generate(q, &direct_index, &bundle.db, &[])))
        .collect();

    let runtime = ServeRuntime::start(
        oracle,
        Arc::new(KnowledgeIndex::build(ks)),
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 4,
            queue_capacity: 256,
            ..ServeConfig::default()
        },
    );
    std::thread::scope(|scope| {
        for worker in 0..8 {
            let runtime = &runtime;
            let questions = &questions;
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..4 {
                    let qi = (worker + round) % questions.len();
                    let tenant = format!("tenant-{}", worker % 2);
                    let ticket = runtime
                        .submit(
                            QueryRequest::new(tenant, questions[qi])
                                .with_priority(Priority::Normal),
                        )
                        .unwrap();
                    let outcome = ticket.wait();
                    let (result, _, _) = completed(&outcome);
                    assert_eq!(
                        fingerprint(result),
                        expected[qi],
                        "worker {worker} round {round} observed a torn or foreign result"
                    );
                }
            });
        }
    });
    let metrics = runtime.metrics();
    let served = metrics.counter("serve.completed");
    assert_eq!(served, 8 * 4);
    // With 2 tenants × 4 questions over 32 requests, repeats dominate:
    // the cache must have served a substantial share.
    assert!(metrics.counter("serve.cache.hit") >= 8);
    runtime.shutdown();
}

/// The `request_id` attribute the pipeline stamps on a trace's root span,
/// if any span carries one.
fn trace_request_id(trace: &genedit_telemetry::Trace) -> Option<String> {
    trace
        .all_spans()
        .iter()
        .find_map(|s| match s.attr("request_id") {
            Some(AttrValue::Str(id)) => Some(id.clone()),
            _ => None,
        })
}

/// Tentpole acceptance: one request ID, assigned at admission, appears in
/// (1) the generation's root span attributes, (2) the latency
/// histogram's exemplars, and (3) the flight recorder — so traces,
/// metrics, and postmortem dumps all join on it.
#[test]
fn request_id_joins_spans_exemplars_and_recorder() {
    let (bundle, ks, oracle) = setup();
    let runtime = ServeRuntime::start(
        oracle,
        Arc::new(KnowledgeIndex::build(ks)),
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 2,
            result_cache_capacity: 0,
            reform_cache_capacity: 0,
            observability: ObsConfig {
                metrics: true,
                slo: None,
                // Sample *every* normal request so the join is total.
                recorder: Some(RecorderConfig {
                    keep_normal_one_in: 1,
                    ..RecorderConfig::default()
                }),
                dump_path: None,
            },
            ..ServeConfig::default()
        },
    );
    let mut expected_ids = BTreeSet::new();
    let tickets: Vec<_> = (0..6)
        .map(|i| {
            let ticket = runtime
                .submit(QueryRequest::new(
                    "acme",
                    &bundle.tasks[i % bundle.tasks.len()].question,
                ))
                .unwrap();
            expected_ids.insert(ticket.request_id().to_string());
            ticket
        })
        .collect();
    for ticket in &tickets {
        let outcome = ticket.wait();
        let (result, _, _) = completed(&outcome);
        // (1) the trace's root span carries the admission-assigned ID.
        assert_eq!(
            trace_request_id(&result.trace).as_deref(),
            Some(ticket.request_id()),
            "trace does not carry the ticket's request ID"
        );
    }
    // (2) the serve.request histogram holds exemplars keyed by the same
    // IDs (6 requests fit the exemplar ring).
    let exemplars = runtime.metrics().exemplars();
    let exemplar_ids: BTreeSet<String> = exemplars
        .get("serve.request")
        .expect("serve.request recorded exemplars")
        .iter()
        .map(|e| e.request_id.clone())
        .collect();
    assert_eq!(exemplar_ids, expected_ids, "exemplars do not join");
    // …and the Prometheus exposition attaches the most recent of them
    // to the +Inf bucket, OpenMetrics-style.
    let prom = runtime.prometheus();
    let inf_line = prom
        .lines()
        .find(|l| l.starts_with("genedit_serve_request_bucket{le=\"+Inf\"}"))
        .expect("serve.request +Inf bucket rendered");
    assert!(
        expected_ids
            .iter()
            .any(|id| inf_line.contains(&format!("request_id=\"{id}\""))),
        "no submitted request ID on the exemplar line: {inf_line}"
    );
    // (3) the flight recorder retained every request under those IDs,
    // each carrying the matching trace.
    let recorder = runtime.flight_recorder().expect("recorder configured");
    let recorded: BTreeSet<String> = recorder
        .contents()
        .iter()
        .map(|r| r.request_id.clone())
        .collect();
    assert_eq!(recorded, expected_ids, "recorder does not join");
    for record in recorder.contents() {
        assert_eq!(
            trace_request_id(&record.trace).as_deref(),
            Some(record.request_id.as_str()),
            "recorded trace and record disagree on the request ID"
        );
    }
    runtime.shutdown();
}

/// A model whose every 5th call stalls: deterministic answers (the
/// inner oracle keys on prompt + seed alone), non-deterministic timing.
/// Exactly the shape hedged dispatch exists for.
struct SpikyModel<M> {
    inner: M,
    calls: std::sync::atomic::AtomicU64,
}

impl<M: LanguageModel> LanguageModel for SpikyModel<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        let n = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        if n % 5 == 4 {
            std::thread::sleep(Duration::from_millis(40));
        }
        self.inner.complete(request)
    }
}

/// Tentpole acceptance: serving with hedged dispatch enabled over a
/// model with latency spikes returns byte-identical results to the
/// direct unhedged pipeline, and the hedge actually fires (the spikes
/// dwarf the hedge delay).
#[test]
fn hedged_serving_matches_direct_pipeline() {
    let (bundle, ks, oracle) = setup();
    let direct = GenEditPipeline::new(&oracle);
    let direct_index = KnowledgeIndex::build(ks.clone());
    let questions: Vec<&str> = bundle
        .tasks
        .iter()
        .take(4)
        .map(|t| t.question.as_str())
        .collect();
    let expected: Vec<String> = questions
        .iter()
        .map(|q| fingerprint(&direct.generate(q, &direct_index, &bundle.db, &[])))
        .collect();

    let runtime = ServeRuntime::start(
        SpikyModel {
            inner: oracle,
            calls: std::sync::atomic::AtomicU64::new(0),
        },
        Arc::new(KnowledgeIndex::build(ks)),
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 2,
            // Caches off so every request exercises the hedged path.
            result_cache_capacity: 0,
            reform_cache_capacity: 0,
            hedge: HedgePolicy {
                min_delay: Duration::from_millis(5),
                max_delay: Duration::from_millis(5),
                min_observations: 4,
                ..HedgePolicy::default()
            },
            ..ServeConfig::default()
        },
    );
    let tickets: Vec<_> = (0..12)
        .map(|i| {
            runtime
                .submit(QueryRequest::new("acme", questions[i % questions.len()]))
                .unwrap()
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let outcome = ticket.wait();
        let (result, _, _) = completed(&outcome);
        assert_eq!(
            fingerprint(result),
            expected[i % questions.len()],
            "request {i} diverged under hedging"
        );
    }
    let stats = runtime.hedge_stats();
    assert!(
        stats.fired >= 1,
        "40ms spikes over a 5ms hedge delay never fired a hedge"
    );
    assert_eq!(stats.fired, stats.won + stats.wasted);
    runtime.shutdown();
}

/// A model that fails every call: generations complete unvalidated, so
/// every request burns error budget deterministically.
struct OutageModel;

impl LanguageModel for OutageModel {
    fn name(&self) -> &str {
        "outage"
    }

    fn complete(&self, _request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        Err(ModelError::Transient("total outage".to_string()))
    }
}

/// Tentpole acceptance: a sustained error burn fires the SLO's burn-rate
/// alert, which dumps the flight recorder as JSONL; the dump's request
/// IDs join back to the submitted tickets and the metric exemplars.
#[test]
fn slo_breach_dumps_joinable_flight_record() {
    let (bundle, ks, _oracle) = setup();
    let dump_path = std::env::temp_dir().join(format!(
        "genedit_slo_dump_{}_{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&dump_path);
    let runtime = ServeRuntime::start(
        OutageModel,
        Arc::new(KnowledgeIndex::build(ks)),
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 2,
            result_cache_capacity: 0,
            reform_cache_capacity: 0,
            observability: ObsConfig {
                metrics: true,
                // 100% errors → burn = 1/0.01 = 100 ≫ 14.4: the fast
                // rule fires as soon as min_samples (10) arrive.
                slo: Some(SloConfig::default_rules("serve.request", 0.99, 60_000.0)),
                recorder: Some(RecorderConfig::default()),
                dump_path: Some(dump_path.clone()),
            },
            ..ServeConfig::default()
        },
    );
    let mut submitted = BTreeSet::new();
    let tickets: Vec<_> = (0..16)
        .map(|i| {
            let t = runtime
                .submit(QueryRequest::new(
                    "acme",
                    &bundle.tasks[i % bundle.tasks.len()].question,
                ))
                .unwrap();
            submitted.insert(t.request_id().to_string());
            t
        })
        .collect();
    for t in &tickets {
        let outcome = t.wait();
        let (result, _, _) = completed(&outcome);
        assert!(!result.validated, "outage model cannot validate");
    }
    assert!(
        runtime.metrics().counter("serve.slo.fired") >= 1,
        "16 consecutive errors must fire the burn-rate alert"
    );
    assert!(
        runtime.slo_firing(),
        "alert must still be firing mid-outage"
    );
    assert_eq!(
        runtime.metrics().counter("serve.slo.dumps"),
        runtime.metrics().counter("serve.slo.fired"),
        "every fire must write a dump"
    );

    let dump = std::fs::read_to_string(&dump_path).expect("breach wrote the dump file");
    let records = dump_from_jsonl(&dump).expect("dump parses as recorder JSONL");
    assert!(
        records.len() >= 10,
        "dump must hold at least min_samples records, got {}",
        records.len()
    );
    let exemplars = runtime.metrics().exemplars();
    let exemplar_ids: BTreeSet<&str> = exemplars
        .get("serve.request")
        .expect("serve.request recorded exemplars")
        .iter()
        .map(|e| e.request_id.as_str())
        .collect();
    for record in &records {
        assert!(
            submitted.contains(&record.request_id),
            "dumped {} was never submitted",
            record.request_id
        );
        assert_eq!(
            trace_request_id(&record.trace).as_deref(),
            Some(record.request_id.as_str()),
            "dumped trace does not join to its record"
        );
    }
    // The exemplar ring (last 16 observations) and the dump cover the
    // same request population.
    assert!(!exemplar_ids.is_empty());
    for id in &exemplar_ids {
        assert!(submitted.contains(*id), "exemplar {id} never submitted");
    }
    let _ = std::fs::remove_file(&dump_path);
    runtime.shutdown();
}

/// Cold-tenant admission through the disk-backed tenant directory: a
/// request from a tenant the directory knows pages its knowledge in from
/// the store and serves a result byte-identical to a pipeline run over
/// the all-in-RAM index built from the same knowledge. Tenants the store
/// has never seen fall back to the globally published snapshot.
#[test]
fn cold_tenant_pages_in_and_matches_all_in_ram_path() {
    use genedit_knowledge::tenants::{TenantKnowledgeStore, TenantStoreConfig};
    use genedit_serve::TenantDirectory;

    let (bundle, ks, oracle) = setup();

    // Seed the disk-backed store by replaying the knowledge set's own
    // edit log for tenant "acme".
    let fs: Arc<dyn StoreFs> = Arc::new(MemFs::new());
    let store = Arc::new(TenantKnowledgeStore::new_with(
        fs,
        "/kb",
        TenantStoreConfig {
            page_size: 1024,
            pool_budget_bytes: 64 * 1024,
            shards: 4,
            store: StoreConfig::default(),
        },
        None,
    ));
    let mut staging = StagingArea::new();
    for logged in ks.log() {
        staging.stage(logged.edit.clone());
    }
    store.commit("acme", staging, "seed").unwrap();

    // The expected answer comes from the ordinary all-in-RAM path.
    let direct = GenEditPipeline::new(&oracle);
    let expected = fingerprint(&direct.generate(
        &bundle.tasks[0].question,
        &KnowledgeIndex::build(ks),
        &bundle.db,
        &[],
    ));

    // The runtime's *global* snapshot is empty: only the tenant
    // directory can supply acme's knowledge.
    let dir = Arc::new(TenantDirectory::new(Arc::clone(&store), 8));
    let runtime = ServeRuntime::start(
        oracle,
        Arc::new(KnowledgeIndex::build(KnowledgeSet::new())),
        0,
        Arc::new(bundle.db.clone()),
        ServeConfig {
            workers: 1,
            tenants: Some(Arc::clone(&dir)),
            ..ServeConfig::default()
        },
    );

    let outcome = runtime
        .submit(QueryRequest::new("acme", &bundle.tasks[0].question))
        .unwrap()
        .wait();
    let (result, cached, _) = completed(&outcome);
    assert!(!cached);
    assert_eq!(
        fingerprint(result),
        expected,
        "paged-in tenant index must reproduce the all-in-RAM result"
    );
    assert_eq!(runtime.metrics().counter("serve.tenant.error"), 0);

    // Second request for the same tenant hits the directory's index
    // cache — no second page-in.
    let outcome = runtime
        .submit(QueryRequest::new("acme", &bundle.tasks[1].question))
        .unwrap()
        .wait();
    completed(&outcome);
    assert_eq!(dir.resident(), 1);

    // A tenant the store has never seen falls back to the (empty)
    // global snapshot and still completes.
    let outcome = runtime
        .submit(QueryRequest::new("ghost", &bundle.tasks[0].question))
        .unwrap()
        .wait();
    assert!(matches!(outcome, QueryOutcome::Completed { .. }));
    assert_eq!(runtime.metrics().counter("serve.tenant.error"), 0);

    runtime.shutdown();
}
