//! Property tests for the serving runtime's panic containment: under an
//! arbitrary seeded poison-pill schedule, every admitted ticket resolves
//! to a terminal outcome and the result cache never serves a corrupted
//! (unvalidated) entry.

use genedit_bird::{DomainBundle, SPORTS};
use genedit_core::KnowledgeIndex;
use genedit_llm::{FaultConfig, FaultInjector, OracleConfig, OracleModel, TaskRegistry};
use genedit_serve::{QueryOutcome, QueryRequest, ServeConfig, ServeRuntime, SupervisorConfig};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Suppress the default panic printout for the injector's poison-pill
/// panics; everything else still prints through the saved default hook.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if message.contains("injected poison-pill panic") {
                return;
            }
            default(info);
        }));
    });
}

/// One bundle for every case: building the domain is the expensive part
/// and the runtime under test never mutates it.
fn bundle() -> &'static DomainBundle {
    static BUNDLE: OnceLock<DomainBundle> = OnceLock::new();
    BUNDLE.get_or_init(|| DomainBundle::build(&SPORTS, (8, 7, 3), 42))
}

fn oracle() -> OracleModel {
    let mut reg = TaskRegistry::new();
    for t in &bundle().tasks {
        reg.register(t.clone());
    }
    OracleModel::with_config(
        reg,
        OracleConfig {
            noise_rate: 0.0,
            pseudo_drift_probability: 0.0,
            drift_probability: 0.0,
            canonical_form_penalty: 0.0,
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// For any (seed, panic rate, request mix, pool size): every ticket
    /// resolves, panicked requests fail cleanly, and no cache hit ever
    /// replays an unvalidated result.
    #[test]
    fn arbitrary_panic_schedules_strand_nothing(
        seed in any::<u64>(),
        panic_rate in 0.0f64..0.35,
        workers in 1usize..=3,
        picks in proptest::collection::vec(0usize..8, 6..=18),
    ) {
        quiet_injected_panics();
        let bundle = bundle();
        let index = Arc::new(KnowledgeIndex::build(bundle.build_knowledge()));
        let model = FaultInjector::new(
            oracle(),
            FaultConfig::panic_only(panic_rate),
            seed,
        );
        let runtime = ServeRuntime::start(
            model,
            index,
            0,
            Arc::new(bundle.db.clone()),
            ServeConfig {
                workers,
                supervisor: SupervisorConfig {
                    poll_interval: Duration::from_millis(1),
                    backoff_base: Duration::from_millis(1),
                    backoff_max: Duration::from_millis(5),
                    respawn_budget: 10_000,
                },
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<_> = picks
            .iter()
            .map(|&i| {
                let task = &bundle.tasks[i % bundle.tasks.len()];
                runtime
                    .submit(QueryRequest::new("acme", &task.question))
                    .unwrap()
            })
            .collect();
        let deadline = Instant::now() + Duration::from_secs(60);
        for ticket in &tickets {
            let outcome = loop {
                if let Some(outcome) = ticket.try_wait() {
                    break outcome;
                }
                prop_assert!(
                    Instant::now() < deadline,
                    "ticket {} stranded under panic schedule",
                    ticket.request_id()
                );
                std::thread::sleep(Duration::from_millis(1));
            };
            match outcome {
                QueryOutcome::Completed { result, cached, .. } => {
                    if cached {
                        prop_assert!(
                            result.validated,
                            "cache replayed an unvalidated result"
                        );
                    }
                }
                QueryOutcome::Failed { reason } => {
                    prop_assert!(
                        reason.contains("injected poison-pill panic"),
                        "unexpected failure reason {reason:?}"
                    );
                }
                other => {
                    return Err(TestCaseError::fail(format!(
                        "no deadline or cancel in play, got {other:?}"
                    )));
                }
            }
        }
        // The pool is never left short-handed: the supervisor restores
        // every retired worker (budget is effectively unlimited here).
        let pool_deadline = Instant::now() + Duration::from_secs(10);
        while runtime.workers_alive() != workers {
            prop_assert!(
                Instant::now() < pool_deadline,
                "pool stuck at {}/{} workers",
                runtime.workers_alive(),
                workers
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        runtime.shutdown();
    }
}
