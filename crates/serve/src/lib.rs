//! # genedit-serve — concurrent serving runtime for the GenEdit pipeline
//!
//! The paper runs GenEdit as an enterprise service: many tenants, shared
//! deployed knowledge, and a continuous-improvement loop committing edits
//! under live traffic. This crate is that serving seam:
//!
//! - **Admission control** — a bounded queue with explicit backpressure.
//!   A saturated queue sheds the request with the *earliest* deadline in
//!   favor of one with more runway, or answers [`Rejected::QueueFull`].
//! - **Per-tenant fairness** — deficit round-robin across tenant
//!   sub-queues, weighted by [`Priority`] cost, so one tenant flooding
//!   the queue cannot starve the others.
//! - **Worker pool** — N threads, each owning a pipeline clone over a
//!   shared `Arc<KnowledgeIndex>` snapshot and `Arc<Database>`; the
//!   model is shared behind `Arc` (the [`LanguageModel`] trait is
//!   `Send + Sync` for exactly this).
//! - **Cooperative cancellation** — each request carries a
//!   `CancelToken` holding its deadline; the pipeline checks it between
//!   operators and gives the slot back instead of finishing an answer
//!   nobody is waiting for.
//! - **Epoch-keyed caching** — full-result and reformulation caches
//!   keyed by `(tenant, question-hash, knowledge epoch)`. A durable
//!   knowledge commit bumps the epoch ([`ServeRuntime::publish`]), so
//!   a knowledge deploy invalidates every cached answer *by
//!   construction* — no scan, no stale SQL after an edit lands.
//! - **Fault containment** — every request runs under a per-request
//!   panic boundary ([`QueryOutcome::Failed`] instead of a hung caller),
//!   a supervisor respawns retired workers with backoff, tenants whose
//!   requests keep failing are quarantined at admission
//!   ([`QuarantineConfig`]), and
//!   [`ServeRuntime::shutdown_with_deadline`] drains with a hard bound.
//!
//! [`LanguageModel`]: genedit_llm::LanguageModel
//!
//! ```
//! use genedit_bird::{DomainBundle, SPORTS};
//! use genedit_llm::{OracleModel, TaskRegistry};
//! use genedit_core::KnowledgeIndex;
//! use genedit_serve::{QueryRequest, ServeConfig, ServeRuntime};
//! use std::sync::Arc;
//!
//! let bundle = DomainBundle::build(&SPORTS, (4, 2, 1), 7);
//! let index = Arc::new(KnowledgeIndex::build(bundle.build_knowledge()));
//! let mut registry = TaskRegistry::new();
//! for t in &bundle.tasks {
//!     registry.register(t.clone());
//! }
//! let runtime = ServeRuntime::start(
//!     OracleModel::new(registry),
//!     index,
//!     0,
//!     Arc::new(bundle.db.clone()),
//!     ServeConfig::default(),
//! );
//! let ticket = runtime.submit(QueryRequest::new("acme", &bundle.tasks[0].question)).unwrap();
//! let outcome = ticket.wait();
//! assert!(outcome.is_completed());
//! runtime.shutdown();
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod quarantine;
pub mod request;
pub mod runtime;
mod sched;
pub mod supervisor;
pub mod tenants;

pub use cache::{fnv64, CacheKey, EpochCache};
pub use quarantine::{Gate, QuarantineConfig, QuarantineState, TenantQuarantine};
pub use request::{Priority, QueryOutcome, QueryRequest, Rejected, Ticket};
pub use runtime::{DrainReport, ObsConfig, ServeConfig, ServeRuntime, DRAIN_GRACE};
pub use supervisor::SupervisorConfig;
pub use tenants::TenantDirectory;
