//! Epoch-keyed, capacity-bounded caches.
//!
//! Cache keys embed the **knowledge epoch** — the deployed knowledge
//! set's edit-log length, as reported by `DurableKnowledgeStore::epoch`.
//! A committed edit batch bumps the epoch, so every entry written under
//! the old epoch silently stops matching: no invalidation scan, no stale
//! answers after a knowledge deploy. Stale entries age out of the LRU
//! bound like any other cold entry.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

/// FNV-1a 64-bit hash — stable across platforms/runs so cache keys (and
/// the sweep's reported hit rates) are reproducible.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Cache key: `(tenant, question-hash, knowledge epoch)`. Tenant scoping
/// keeps one tenant's results invisible to another even for identical
/// question text.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Tenant the entry belongs to.
    pub tenant: String,
    /// [`fnv64`] hash of the question text.
    pub qhash: u64,
    /// Knowledge epoch the entry was computed under.
    pub epoch: u64,
}

impl CacheKey {
    /// Key for `question` as asked by `tenant` under `epoch`.
    pub fn new(tenant: &str, question: &str, epoch: u64) -> CacheKey {
        CacheKey {
            tenant: tenant.to_string(),
            qhash: fnv64(question.as_bytes()),
            epoch,
        }
    }
}

struct Entry<V> {
    value: V,
    last_used: u64,
}

struct Inner<V> {
    map: HashMap<CacheKey, Entry<V>>,
    tick: u64,
}

/// A thread-safe bounded LRU map keyed by [`CacheKey`]. Capacity 0
/// disables the cache entirely (every `get` misses, `insert` is a no-op).
pub struct EpochCache<V> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
}

impl<V: Clone> EpochCache<V> {
    /// Cache holding at most `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> EpochCache<V> {
        EpochCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<V>> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up a key, refreshing its recency on hit.
    pub fn get(&self, key: &CacheKey) -> Option<V> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(key).map(|e| {
            e.last_used = tick;
            e.value.clone()
        })
    }

    /// Insert (or refresh) an entry. Returns the number of entries
    /// evicted to stay within capacity (0 or 1).
    pub fn insert(&self, key: CacheKey, value: V) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let mut evicted = 0;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            // Evict the least-recently-used entry. O(n) scan is fine:
            // capacity is a small config bound, not data-sized.
            if let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&lru);
                evicted = 1;
            }
        }
        inner.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tenant: &str, q: &str, epoch: u64) -> CacheKey {
        CacheKey::new(tenant, q, epoch)
    }

    #[test]
    fn fnv64_is_stable() {
        // Pinned value: a silent hash change would orphan nothing (keys
        // are ephemeral) but would break cross-run reproducibility.
        assert_eq!(fnv64(b"revenue per club"), fnv64(b"revenue per club"));
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
    }

    #[test]
    fn epoch_bump_is_a_miss() {
        let cache = EpochCache::new(8);
        cache.insert(key("acme", "q1", 0), 41);
        assert_eq!(cache.get(&key("acme", "q1", 0)), Some(41));
        assert_eq!(cache.get(&key("acme", "q1", 1)), None);
    }

    #[test]
    fn tenants_are_isolated() {
        let cache = EpochCache::new(8);
        cache.insert(key("acme", "q1", 0), 1);
        assert_eq!(cache.get(&key("globex", "q1", 0)), None);
    }

    #[test]
    fn lru_eviction_prefers_cold_entries() {
        let cache = EpochCache::new(2);
        assert_eq!(cache.insert(key("t", "a", 0), 1), 0);
        assert_eq!(cache.insert(key("t", "b", 0), 2), 0);
        // Touch "a" so "b" is the LRU victim.
        assert_eq!(cache.get(&key("t", "a", 0)), Some(1));
        assert_eq!(cache.insert(key("t", "c", 0), 3), 1);
        assert_eq!(cache.get(&key("t", "a", 0)), Some(1));
        assert_eq!(cache.get(&key("t", "b", 0)), None);
        assert_eq!(cache.get(&key("t", "c", 0)), Some(3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let cache = EpochCache::new(0);
        assert_eq!(cache.insert(key("t", "a", 0), 1), 0);
        assert_eq!(cache.get(&key("t", "a", 0)), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let cache = EpochCache::new(2);
        cache.insert(key("t", "a", 0), 1);
        cache.insert(key("t", "b", 0), 2);
        assert_eq!(cache.insert(key("t", "a", 0), 9), 0);
        assert_eq!(cache.get(&key("t", "a", 0)), Some(9));
        assert_eq!(cache.len(), 2);
    }
}
