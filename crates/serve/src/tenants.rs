//! Cold-tenant admission: disk-backed tenants paged in on demand.
//!
//! [`TenantDirectory`] sits between the serving runtime and a
//! [`TenantKnowledgeStore`]: the first request for a tenant (or the
//! first after its knowledge epoch moves) opens an epoch snapshot,
//! materializes the knowledge through pinned buffer-pool pages, and
//! builds the retrieval index — the **cold-tenant page-in** path,
//! recorded under `serve.tenant.page_in`. Subsequent requests at the
//! same epoch hit the bounded index cache and touch neither disk nor
//! the embedder.
//!
//! When a paged-in snapshot has no stored vectors (first load after a
//! commit dropped them), the freshly computed embeddings are written
//! back with [`TenantKnowledgeStore::put_vectors`], so the *next* cold
//! page-in of the same epoch skips re-embedding entirely.

use genedit_core::KnowledgeIndex;
use genedit_knowledge::tenants::{TenantKnowledgeStore, TenantStoreError};
use genedit_telemetry::{names, MetricsRegistry};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// One cached tenant index: valid only while the tenant stays at `epoch`.
struct CachedIndex {
    epoch: u64,
    index: Arc<KnowledgeIndex>,
    last_used: u64,
}

#[derive(Default)]
struct DirState {
    map: HashMap<String, CachedIndex>,
    tick: u64,
}

/// A bounded cache of per-tenant retrieval indexes over a disk-backed
/// [`TenantKnowledgeStore`]. See the module docs for the page-in path.
pub struct TenantDirectory {
    store: Arc<TenantKnowledgeStore>,
    /// Most-recently-used indexes kept resident; least-recent evicted.
    capacity: usize,
    inner: Mutex<DirState>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl fmt::Debug for TenantDirectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TenantDirectory")
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl TenantDirectory {
    /// A directory keeping at most `capacity` tenant indexes resident.
    pub fn new(store: Arc<TenantKnowledgeStore>, capacity: usize) -> TenantDirectory {
        TenantDirectory::with_metrics(store, capacity, None)
    }

    /// [`TenantDirectory::new`] publishing `serve.tenant.*` metrics.
    pub fn with_metrics(
        store: Arc<TenantKnowledgeStore>,
        capacity: usize,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> TenantDirectory {
        TenantDirectory {
            store,
            capacity: capacity.max(1),
            inner: Mutex::new(DirState::default()),
            metrics,
        }
    }

    /// The backing tenant store.
    pub fn store(&self) -> &Arc<TenantKnowledgeStore> {
        &self.store
    }

    fn lock(&self) -> MutexGuard<'_, DirState> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn incr(&self, name: &str) {
        if let Some(m) = &self.metrics {
            m.incr(name, 1);
        }
    }

    /// Whether `tenant` has durable state the directory could serve.
    pub fn knows(&self, tenant: &str) -> bool {
        self.store.tenant_exists(tenant)
    }

    /// The tenant's retrieval index at its current knowledge epoch,
    /// paging in from disk if the tenant is cold or its epoch moved.
    pub fn index_for(&self, tenant: &str) -> Result<(u64, Arc<KnowledgeIndex>), TenantStoreError> {
        let epoch = self.store.epoch(tenant)?;
        {
            let mut state = self.lock();
            state.tick += 1;
            let tick = state.tick;
            if let Some(cached) = state.map.get_mut(tenant) {
                if cached.epoch == epoch {
                    cached.last_used = tick;
                    self.incr("serve.tenant.hit");
                    return Ok((epoch, Arc::clone(&cached.index)));
                }
            }
        }

        // Cold tenant (or stale epoch): page in outside the cache lock so
        // one slow load never blocks hot tenants.
        self.incr("serve.tenant.miss");
        let started = Instant::now();
        let snapshot = self.store.snapshot(tenant)?;
        let epoch = snapshot.epoch();
        let had_vectors = snapshot.vectors()?.is_some();
        let index = Arc::new(KnowledgeIndex::from_snapshot(&snapshot)?);
        drop(snapshot);
        if !had_vectors {
            // Best-effort write-back; a racing commit just means the
            // vectors describe a superseded epoch and are rejected.
            let _ = self
                .store
                .put_vectors(tenant, epoch, &index.export_vectors());
        }
        if let Some(m) = &self.metrics {
            m.observe_duration(names::SERVE_TENANT_PAGE_IN, started.elapsed());
        }

        let mut state = self.lock();
        state.tick += 1;
        let tick = state.tick;
        state.map.insert(
            tenant.to_string(),
            CachedIndex {
                epoch,
                index: Arc::clone(&index),
                last_used: tick,
            },
        );
        while state.map.len() > self.capacity {
            let Some(coldest) = state
                .map
                .iter()
                .min_by_key(|(_, c)| c.last_used)
                .map(|(t, _)| t.clone())
            else {
                break;
            };
            state.map.remove(&coldest);
            self.incr("serve.tenant.evictions");
        }
        Ok((epoch, index))
    }

    /// Drop a tenant's cached index (e.g. after committing knowledge for
    /// it out-of-band). The next request pages it back in at the new
    /// epoch — the epoch check in [`TenantDirectory::index_for`] makes
    /// this optional, but eager invalidation frees the memory now.
    pub fn invalidate(&self, tenant: &str) {
        let mut state = self.lock();
        state.map.remove(tenant);
    }

    /// Number of tenant indexes currently resident.
    pub fn resident(&self) -> usize {
        self.lock().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genedit_knowledge::fs::MemFs;
    use genedit_knowledge::set::Edit;
    use genedit_knowledge::staging::StagingArea;
    use genedit_knowledge::tenants::TenantStoreConfig;
    use genedit_knowledge::types::{FragmentKind, SourceRef, SqlFragment};
    use genedit_knowledge::StoreConfig;

    fn tenant_store() -> Arc<TenantKnowledgeStore> {
        let fs: Arc<dyn genedit_knowledge::StoreFs> = Arc::new(MemFs::new());
        Arc::new(TenantKnowledgeStore::new_with(
            fs,
            "/kb",
            TenantStoreConfig {
                page_size: 1024,
                pool_budget_bytes: 64 * 1024,
                shards: 4,
                store: StoreConfig::default(),
            },
            None,
        ))
    }

    fn seed(store: &Arc<TenantKnowledgeStore>, tenant: &str, desc: &str) -> u64 {
        let mut staging = StagingArea::new();
        staging.stage(Edit::InsertExample {
            intent: None,
            description: desc.into(),
            fragment: SqlFragment::new(FragmentKind::Where, "WHERE A = 1", "main"),
            term: None,
            source: SourceRef::Manual,
        });
        store.commit(tenant, staging, "seed").unwrap()
    }

    #[test]
    fn pages_in_cold_tenant_then_hits_cache() {
        let metrics = Arc::new(MetricsRegistry::new());
        let store = tenant_store();
        let epoch = seed(&store, "acme", "revenue per org");
        let dir = TenantDirectory::with_metrics(store, 4, Some(Arc::clone(&metrics)));

        let (e1, idx1) = dir.index_for("acme").unwrap();
        assert_eq!(e1, epoch);
        assert_eq!(idx1.knowledge().examples().len(), 1);
        let (e2, idx2) = dir.index_for("acme").unwrap();
        assert_eq!(e2, epoch);
        assert!(
            Arc::ptr_eq(&idx1, &idx2),
            "second lookup must hit the cache"
        );
        assert_eq!(metrics.counter("serve.tenant.miss"), 1);
        assert_eq!(metrics.counter("serve.tenant.hit"), 1);
    }

    #[test]
    fn epoch_move_invalidates_cached_index() {
        let store = tenant_store();
        seed(&store, "acme", "first");
        let dir = TenantDirectory::new(Arc::clone(&store), 4);
        let (e1, _) = dir.index_for("acme").unwrap();
        let e2 = seed(&store, "acme", "second");
        assert!(e2 > e1);
        let (e3, idx) = dir.index_for("acme").unwrap();
        assert_eq!(e3, e2);
        assert_eq!(idx.knowledge().examples().len(), 2);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let store = tenant_store();
        for t in ["a", "b", "c"] {
            seed(&store, t, t);
        }
        let dir = TenantDirectory::new(store, 2);
        dir.index_for("a").unwrap();
        dir.index_for("b").unwrap();
        dir.index_for("a").unwrap(); // refresh a; b is now coldest
        dir.index_for("c").unwrap(); // evicts b
        assert_eq!(dir.resident(), 2);
        let metrics_free = dir.index_for("a").unwrap();
        drop(metrics_free);
        assert_eq!(dir.resident(), 2);
    }

    #[test]
    fn unknown_tenant_is_an_error() {
        let dir = TenantDirectory::new(tenant_store(), 2);
        assert!(!dir.knows("ghost"));
        assert!(matches!(
            dir.index_for("ghost"),
            Err(TenantStoreError::UnknownTenant(_))
        ));
    }

    #[test]
    fn vectors_written_back_on_first_page_in() {
        let store = tenant_store();
        let epoch = seed(&store, "acme", "revenue per org");
        {
            let snap = store.snapshot("acme").unwrap();
            assert!(snap.vectors().unwrap().is_none(), "commit drops vectors");
        }
        let dir = TenantDirectory::new(Arc::clone(&store), 4);
        dir.index_for("acme").unwrap();
        let snap = store.snapshot("acme").unwrap();
        assert_eq!(snap.epoch(), epoch);
        assert!(
            snap.vectors().unwrap().is_some(),
            "page-in must persist the computed vectors"
        );
    }
}
