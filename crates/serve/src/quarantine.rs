//! Per-tenant quarantine: a sliding-window failure breaker at the
//! admission gate.
//!
//! A poison-pill tenant — one whose requests reliably panic a worker or
//! fail validation — would otherwise burn the pool one respawn at a
//! time and waste DRR bandwidth its peers could use. The quarantine
//! tracks each tenant's recent outcomes in a sliding window; when the
//! failure ratio trips the threshold the tenant moves to **Open**
//! (every submit answers [`Rejected::Quarantined`](crate::Rejected)),
//! after a cooldown to **HalfOpen** (a bounded number of probe requests
//! are admitted), and back to **Closed** only once the probes succeed.
//! A failed probe re-opens the quarantine for a fresh cooldown.
//!
//! ```text
//!            ratio ≥ threshold                cooldown elapsed
//!  Closed ────────────────────────▶ Open ────────────────────▶ HalfOpen
//!    ▲                               ▲                            │
//!    │      all probes succeed       │      any probe fails       │
//!    └───────────────────────────────┼────────────────────────────┤
//!                                    └────────────────────────────┘
//! ```
//!
//! Time comes from an injectable [`Clock`] so the state machine is unit
//! testable on a [`SimulatedClock`](genedit_telemetry::SimulatedClock)
//! with zero wall-clock sleeps; the serving runtime wires a
//! [`SystemClock`](genedit_telemetry::SystemClock).

use genedit_telemetry::{Clock, MetricsRegistry};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Quarantine policy knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineConfig {
    /// Master switch. The default configuration is disabled so existing
    /// deployments opt in explicitly.
    pub enabled: bool,
    /// Sliding window over which per-tenant outcomes are scored.
    pub window: Duration,
    /// Minimum outcomes inside the window before the breaker may trip —
    /// one unlucky request out of one must not quarantine a tenant.
    pub min_samples: u32,
    /// Trip when `failures / samples` inside the window reaches this
    /// ratio (panics and validation failures both count as failures).
    pub failure_ratio: f64,
    /// How long a tripped tenant stays fully rejected before half-open
    /// probing begins.
    pub cooldown: Duration,
    /// Probes admitted in half-open state. The tenant recovers only
    /// after this many consecutive probe successes.
    pub probe_quota: u32,
}

impl QuarantineConfig {
    /// Quarantine off: every tenant is always admitted.
    pub fn disabled() -> QuarantineConfig {
        QuarantineConfig {
            enabled: false,
            ..QuarantineConfig::default_policy()
        }
    }

    /// A production-shaped default: trip on ≥50% failures over a 10 s
    /// window with at least 5 samples, cool down 30 s, recover after 2
    /// clean probes.
    pub fn default_policy() -> QuarantineConfig {
        QuarantineConfig {
            enabled: true,
            window: Duration::from_secs(10),
            min_samples: 5,
            failure_ratio: 0.5,
            cooldown: Duration::from_secs(30),
            probe_quota: 2,
        }
    }
}

impl Default for QuarantineConfig {
    fn default() -> QuarantineConfig {
        QuarantineConfig::disabled()
    }
}

/// Admission decision for one tenant at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Tenant is healthy (or quarantine is disabled): admit normally.
    Admit,
    /// Tenant is half-open and this request was admitted as a probe —
    /// its outcome decides recovery. The runtime tags the queue entry so
    /// the completion path reports it back as a probe.
    AdmitProbe,
    /// Tenant is quarantined (open, or half-open with its probe quota
    /// already in flight): reject with `Rejected::Quarantined`.
    Reject,
}

/// Public snapshot of a tenant's breaker state, for tests and
/// observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineState {
    /// Healthy; outcomes are being scored.
    Closed,
    /// Tripped; everything rejected until the cooldown elapses.
    Open,
    /// Cooldown over; probes in flight decide recovery.
    HalfOpen,
}

enum TenantState {
    Closed {
        /// (timestamp, failed) outcomes, oldest first, pruned to the
        /// configured window on every touch.
        window: VecDeque<(Duration, bool)>,
    },
    Open {
        until: Duration,
    },
    HalfOpen {
        inflight: u32,
        successes: u32,
    },
}

/// The per-tenant quarantine registry. One instance lives in the serving
/// runtime's shared state; every admission and every completion routes
/// through it.
pub struct TenantQuarantine {
    config: QuarantineConfig,
    clock: Arc<dyn Clock>,
    tenants: Mutex<HashMap<String, TenantState>>,
    metrics: Arc<MetricsRegistry>,
}

impl TenantQuarantine {
    /// A registry over `clock` with the given policy.
    pub fn new(config: QuarantineConfig, clock: Arc<dyn Clock>) -> TenantQuarantine {
        TenantQuarantine {
            config,
            clock,
            tenants: Mutex::new(HashMap::new()),
            metrics: Arc::new(MetricsRegistry::disabled()),
        }
    }

    /// Route `serve.quarantine.*` counters into `metrics`.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> TenantQuarantine {
        self.metrics = metrics;
        self
    }

    /// Whether quarantine is enforced at all.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<String, TenantState>> {
        self.tenants
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Admission check for `tenant`, advancing Open → HalfOpen when the
    /// cooldown has elapsed.
    pub fn check(&self, tenant: &str) -> Gate {
        if !self.config.enabled {
            return Gate::Admit;
        }
        let now = self.clock.now();
        let mut tenants = self.lock();
        let Some(state) = tenants.get_mut(tenant) else {
            return Gate::Admit;
        };
        match state {
            TenantState::Closed { .. } => Gate::Admit,
            TenantState::Open { until } => {
                if now < *until {
                    self.metrics.incr("serve.quarantine.rejected", 1);
                    return Gate::Reject;
                }
                *state = TenantState::HalfOpen {
                    inflight: 1,
                    successes: 0,
                };
                self.metrics.incr("serve.quarantine.probes", 1);
                Gate::AdmitProbe
            }
            TenantState::HalfOpen {
                inflight,
                successes,
            } => {
                if *inflight + *successes >= self.config.probe_quota {
                    self.metrics.incr("serve.quarantine.rejected", 1);
                    return Gate::Reject;
                }
                *inflight += 1;
                self.metrics.incr("serve.quarantine.probes", 1);
                Gate::AdmitProbe
            }
        }
    }

    /// Record a validated completion.
    pub fn on_success(&self, tenant: &str, probe: bool) {
        self.record(tenant, probe, false);
    }

    /// Record a failure: a worker panic or an unvalidated generation.
    pub fn on_failure(&self, tenant: &str, probe: bool) {
        self.record(tenant, probe, true);
    }

    /// Record a neutral resolution (cancelled / expired / shed / drain):
    /// neither evidence of health nor of poison. A probe abandoned this
    /// way returns its slot to the half-open quota.
    pub fn on_abandoned(&self, tenant: &str, probe: bool) {
        if !self.config.enabled || !probe {
            return;
        }
        let mut tenants = self.lock();
        if let Some(TenantState::HalfOpen { inflight, .. }) = tenants.get_mut(tenant) {
            *inflight = inflight.saturating_sub(1);
        }
    }

    fn record(&self, tenant: &str, probe: bool, failed: bool) {
        if !self.config.enabled {
            return;
        }
        let now = self.clock.now();
        let mut tenants = self.lock();
        let state = tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState::Closed {
                window: VecDeque::new(),
            });
        match state {
            TenantState::Closed { window } => {
                window.push_back((now, failed));
                let horizon = now.saturating_sub(self.config.window);
                while window.front().is_some_and(|(t, _)| *t < horizon) {
                    window.pop_front();
                }
                let samples = window.len() as u32;
                let failures = window.iter().filter(|(_, f)| *f).count();
                if samples >= self.config.min_samples.max(1)
                    && failures as f64 / samples as f64 >= self.config.failure_ratio
                {
                    *state = TenantState::Open {
                        until: now + self.config.cooldown,
                    };
                    self.metrics.incr("serve.quarantine.tripped", 1);
                }
            }
            TenantState::HalfOpen {
                inflight,
                successes,
            } => {
                if !probe {
                    // A straggler admitted before the trip: its outcome
                    // is stale evidence either way.
                    return;
                }
                *inflight = inflight.saturating_sub(1);
                if failed {
                    *state = TenantState::Open {
                        until: now + self.config.cooldown,
                    };
                    self.metrics.incr("serve.quarantine.retripped", 1);
                } else {
                    *successes += 1;
                    if *successes >= self.config.probe_quota.max(1) {
                        *state = TenantState::Closed {
                            window: VecDeque::new(),
                        };
                        self.metrics.incr("serve.quarantine.recovered", 1);
                    }
                }
            }
            // In-flight stragglers finishing while fully open: stale.
            TenantState::Open { .. } => {}
        }
    }

    /// The tenant's current breaker state (Closed for unknown tenants).
    /// Pure read: does **not** advance Open → HalfOpen.
    pub fn state(&self, tenant: &str) -> QuarantineState {
        match self.lock().get(tenant) {
            None | Some(TenantState::Closed { .. }) => QuarantineState::Closed,
            Some(TenantState::Open { .. }) => QuarantineState::Open,
            Some(TenantState::HalfOpen { .. }) => QuarantineState::HalfOpen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genedit_telemetry::SimulatedClock;

    fn quarantine(clock: &Arc<SimulatedClock>) -> TenantQuarantine {
        TenantQuarantine::new(
            QuarantineConfig {
                enabled: true,
                window: Duration::from_secs(10),
                min_samples: 4,
                failure_ratio: 0.5,
                cooldown: Duration::from_secs(30),
                probe_quota: 2,
            },
            Arc::clone(clock) as Arc<dyn Clock>,
        )
    }

    #[test]
    fn disabled_config_admits_everything() {
        let clock = Arc::new(SimulatedClock::new());
        let q = TenantQuarantine::new(
            QuarantineConfig::disabled(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        for _ in 0..20 {
            q.on_failure("acme", false);
            assert_eq!(q.check("acme"), Gate::Admit);
        }
        assert_eq!(q.state("acme"), QuarantineState::Closed);
    }

    #[test]
    fn trips_only_past_min_samples_and_ratio() {
        let clock = Arc::new(SimulatedClock::new());
        let q = quarantine(&clock);
        // 3 failures: below min_samples, still closed.
        for _ in 0..3 {
            q.on_failure("acme", false);
        }
        assert_eq!(q.check("acme"), Gate::Admit);
        // 4th outcome is a success: ratio 3/4 ≥ 0.5 — trips.
        q.on_success("acme", false);
        assert_eq!(q.state("acme"), QuarantineState::Open);
        assert_eq!(q.check("acme"), Gate::Reject);
        // A healthy tenant is unaffected.
        assert_eq!(q.check("globex"), Gate::Admit);
    }

    #[test]
    fn successes_dilute_the_window() {
        let clock = Arc::new(SimulatedClock::new());
        let q = quarantine(&clock);
        q.on_failure("acme", false);
        for _ in 0..7 {
            q.on_success("acme", false);
        }
        // The ratio never reaches 0.5 at any prefix of ≥ min_samples
        // outcomes (1/4, 1/5, … 1/8): closed throughout.
        assert_eq!(q.state("acme"), QuarantineState::Closed);
        assert_eq!(q.check("acme"), Gate::Admit);
    }

    #[test]
    fn old_outcomes_age_out_of_the_window() {
        let clock = Arc::new(SimulatedClock::new());
        let q = quarantine(&clock);
        for _ in 0..3 {
            q.on_failure("acme", false);
        }
        // Wait past the window: those failures no longer count.
        clock.advance(Duration::from_secs(11));
        q.on_failure("acme", false);
        // Window holds 1 failure out of 1 sample — below min_samples.
        assert_eq!(q.state("acme"), QuarantineState::Closed);
    }

    #[test]
    fn half_open_probe_success_recovers() {
        let clock = Arc::new(SimulatedClock::new());
        let q = quarantine(&clock);
        for _ in 0..4 {
            q.on_failure("acme", false);
        }
        assert_eq!(q.state("acme"), QuarantineState::Open);
        // Mid-cooldown: still rejected.
        clock.advance(Duration::from_secs(29));
        assert_eq!(q.check("acme"), Gate::Reject);
        // Cooldown over: exactly probe_quota probes pass the gate.
        clock.advance(Duration::from_secs(2));
        assert_eq!(q.check("acme"), Gate::AdmitProbe);
        assert_eq!(q.state("acme"), QuarantineState::HalfOpen);
        assert_eq!(q.check("acme"), Gate::AdmitProbe);
        assert_eq!(q.check("acme"), Gate::Reject, "probe quota exhausted");
        // Both probes succeed: closed, and fresh failures start a new
        // window from zero.
        q.on_success("acme", true);
        q.on_success("acme", true);
        assert_eq!(q.state("acme"), QuarantineState::Closed);
        assert_eq!(q.check("acme"), Gate::Admit);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let clock = Arc::new(SimulatedClock::new());
        let q = quarantine(&clock);
        for _ in 0..4 {
            q.on_failure("acme", false);
        }
        clock.advance(Duration::from_secs(31));
        assert_eq!(q.check("acme"), Gate::AdmitProbe);
        q.on_failure("acme", true);
        assert_eq!(q.state("acme"), QuarantineState::Open);
        assert_eq!(q.check("acme"), Gate::Reject);
        // The re-trip starts a fresh full cooldown.
        clock.advance(Duration::from_secs(29));
        assert_eq!(q.check("acme"), Gate::Reject);
        clock.advance(Duration::from_secs(2));
        assert_eq!(q.check("acme"), Gate::AdmitProbe);
    }

    #[test]
    fn abandoned_probe_returns_its_slot() {
        let clock = Arc::new(SimulatedClock::new());
        let q = quarantine(&clock);
        for _ in 0..4 {
            q.on_failure("acme", false);
        }
        clock.advance(Duration::from_secs(31));
        assert_eq!(q.check("acme"), Gate::AdmitProbe);
        assert_eq!(q.check("acme"), Gate::AdmitProbe);
        assert_eq!(q.check("acme"), Gate::Reject);
        // One probe is cancelled: its slot frees up for a new probe.
        q.on_abandoned("acme", true);
        assert_eq!(q.check("acme"), Gate::AdmitProbe);
    }

    #[test]
    fn stale_non_probe_outcomes_are_ignored_while_open_or_half_open() {
        let clock = Arc::new(SimulatedClock::new());
        let q = quarantine(&clock);
        for _ in 0..4 {
            q.on_failure("acme", false);
        }
        // In-flight pre-trip request completing during Open: no effect.
        q.on_success("acme", false);
        assert_eq!(q.state("acme"), QuarantineState::Open);
        clock.advance(Duration::from_secs(31));
        assert_eq!(q.check("acme"), Gate::AdmitProbe);
        // Another straggler during HalfOpen: also no effect on probes.
        q.on_failure("acme", false);
        assert_eq!(q.state("acme"), QuarantineState::HalfOpen);
        q.on_success("acme", true);
        q.on_success("acme", true);
        assert_eq!(q.state("acme"), QuarantineState::Closed);
    }
}
