//! Worker supervision: keep the pool at configured size.
//!
//! The serving runtime's panic domain is the worker thread. A request
//! that panics is caught at the per-request `catch_unwind` boundary and
//! its ticket resolved, but the worker then **retires** — deliberately
//! exits — rather than keep serving on a thread whose request just
//! unwound (Erlang's "let it crash" discipline, scoped to one thread).
//! The supervisor watches the pool, reaps finished workers, and respawns
//! them with exponential backoff, up to a per-slot budget; a slot that
//! exhausts its budget is abandoned (and counted) instead of flapping
//! forever.
//!
//! The supervisor thread itself holds no request state: it only touches
//! the worker table, so a wedged worker can never wedge supervision.

use genedit_telemetry::MetricsRegistry;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Supervision policy for the worker pool.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// How often the supervisor scans the pool for dead workers.
    pub poll_interval: Duration,
    /// Backoff before the first respawn of a slot; doubles per respawn.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Respawns allowed per worker slot before the slot is abandoned.
    /// The budget bounds the damage of a deterministic crash loop: with
    /// quarantine also enabled the poison source is cut off long before
    /// the budget runs out.
    pub respawn_budget: u32,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            poll_interval: Duration::from_millis(5),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(1),
            respawn_budget: 32,
        }
    }
}

/// One worker slot: the OS thread currently serving it, and how many
/// times the supervisor has had to replace it.
pub(crate) struct WorkerSlot {
    /// `Some(running-or-finished)`, or `None` when the slot is between
    /// threads (pending respawn, or abandoned).
    pub handle: Option<JoinHandle<()>>,
    /// Respawns consumed from the budget.
    pub respawns: u32,
    /// Budget exhausted: the supervisor stops resuscitating this slot.
    pub abandoned: bool,
}

impl WorkerSlot {
    pub fn new(handle: JoinHandle<()>) -> WorkerSlot {
        WorkerSlot {
            handle: Some(handle),
            respawns: 0,
            abandoned: false,
        }
    }

    /// Whether a live (not yet finished) thread occupies this slot.
    pub fn is_alive(&self) -> bool {
        self.handle.as_ref().is_some_and(|h| !h.is_finished())
    }
}

/// The worker table, shared by the runtime (for shutdown joins and pool
/// introspection) and the supervisor thread (for respawns).
pub(crate) type WorkerTable = Arc<Mutex<Vec<WorkerSlot>>>;

pub(crate) fn lock_table(table: &WorkerTable) -> MutexGuard<'_, Vec<WorkerSlot>> {
    table
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Live workers in the pool right now.
pub(crate) fn alive_workers(table: &WorkerTable) -> usize {
    lock_table(table).iter().filter(|s| s.is_alive()).count()
}

/// The supervision loop. Runs on its own thread until `is_shutdown`
/// turns true. `spawn(slot_index)` creates a replacement worker thread
/// for a slot — the runtime provides it as a closure over its shared
/// state, keeping this module free of the model type parameter.
pub(crate) fn supervisor_loop(
    table: WorkerTable,
    config: SupervisorConfig,
    metrics: Arc<MetricsRegistry>,
    is_shutdown: impl Fn() -> bool,
    spawn: impl Fn(usize) -> std::io::Result<JoinHandle<()>>,
) {
    loop {
        if is_shutdown() {
            return;
        }
        // Find (and reap) the first dead slot, releasing the lock before
        // any sleeping so shutdown joins and pool introspection never
        // wait on a backoff.
        let dead = {
            let mut slots = lock_table(&table);
            let mut found = None;
            for (i, slot) in slots.iter_mut().enumerate() {
                if slot.abandoned || slot.is_alive() {
                    continue;
                }
                if let Some(handle) = slot.handle.take() {
                    // Reap: the per-request catch_unwind means worker
                    // threads exit cleanly even after serving a
                    // panicking request, so join errors are unexpected —
                    // but either way the thread is gone.
                    let _ = handle.join();
                }
                if slot.respawns >= config.respawn_budget {
                    slot.abandoned = true;
                    metrics.incr("serve.worker.abandoned", 1);
                    continue;
                }
                slot.respawns += 1;
                found = Some((i, slot.respawns));
                break;
            }
            metrics.set_gauge(
                "serve.workers.alive",
                slots.iter().filter(|s| s.is_alive()).count() as f64,
            );
            found
        };
        let Some((index, attempt)) = dead else {
            std::thread::sleep(config.poll_interval);
            continue;
        };
        let backoff = config
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(config.backoff_max);
        std::thread::sleep(backoff);
        if is_shutdown() {
            return;
        }
        match spawn(index) {
            Ok(handle) => {
                lock_table(&table)[index].handle = Some(handle);
                metrics.incr("serve.worker.respawned", 1);
            }
            Err(_) => {
                // Slot stays empty (handle None, not abandoned): the
                // next scan retries it, consuming more budget, so a
                // transient spawn failure self-heals and a persistent
                // one terminates in `abandoned`.
                metrics.incr("serve.worker.spawn_failed", 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    fn table_of(n: usize) -> WorkerTable {
        let slots = (0..n)
            .map(|_| WorkerSlot::new(std::thread::spawn(|| {})))
            .collect();
        Arc::new(Mutex::new(slots))
    }

    #[test]
    fn respawns_dead_workers_until_shutdown() {
        // Workers that exit immediately: the supervisor keeps respawning
        // until we flip shutdown.
        let table = table_of(2);
        let shutdown = Arc::new(AtomicBool::new(false));
        let spawned = Arc::new(AtomicUsize::new(0));
        let metrics = Arc::new(MetricsRegistry::new());
        let sup = {
            let table = Arc::clone(&table);
            let shutdown = Arc::clone(&shutdown);
            let spawned = Arc::clone(&spawned);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || {
                supervisor_loop(
                    table,
                    SupervisorConfig {
                        poll_interval: Duration::from_millis(1),
                        backoff_base: Duration::from_millis(1),
                        backoff_max: Duration::from_millis(2),
                        respawn_budget: 1_000,
                    },
                    metrics,
                    || shutdown.load(Ordering::SeqCst),
                    move |_| {
                        spawned.fetch_add(1, Ordering::SeqCst);
                        std::thread::Builder::new().spawn(|| {})
                    },
                )
            })
        };
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while spawned.load(Ordering::SeqCst) < 4 {
            assert!(std::time::Instant::now() < deadline, "supervisor stalled");
            std::thread::sleep(Duration::from_millis(1));
        }
        shutdown.store(true, Ordering::SeqCst);
        sup.join().unwrap();
        assert!(metrics.counter("serve.worker.respawned") >= 4);
    }

    #[test]
    fn budget_exhaustion_abandons_the_slot() {
        let table = table_of(1);
        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(MetricsRegistry::new());
        let sup = {
            let table = Arc::clone(&table);
            let shutdown = Arc::clone(&shutdown);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || {
                supervisor_loop(
                    table,
                    SupervisorConfig {
                        poll_interval: Duration::from_millis(1),
                        backoff_base: Duration::from_millis(1),
                        backoff_max: Duration::from_millis(1),
                        respawn_budget: 3,
                    },
                    metrics,
                    || shutdown.load(Ordering::SeqCst),
                    |_| std::thread::Builder::new().spawn(|| {}),
                )
            })
        };
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while metrics.counter("serve.worker.abandoned") == 0 {
            assert!(std::time::Instant::now() < deadline, "slot never abandoned");
            std::thread::sleep(Duration::from_millis(1));
        }
        shutdown.store(true, Ordering::SeqCst);
        sup.join().unwrap();
        assert_eq!(metrics.counter("serve.worker.respawned"), 3);
        assert!(lock_table(&table)[0].abandoned);
        assert_eq!(alive_workers(&table), 0);
    }
}
