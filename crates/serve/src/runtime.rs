//! The serving runtime: worker pool, admission control, epoch-keyed
//! caches, and the per-request execution path.

use crate::cache::{CacheKey, EpochCache};
use crate::request::{QueryOutcome, QueryRequest, Rejected, Ticket, TicketCell};
use crate::sched::{Admitted, DrrScheduler};
use genedit_core::{
    CancelToken, GenEditPipeline, GenerateOptions, GenerationResult, KnowledgeIndex, PipelineConfig,
};
use genedit_llm::{
    BatchConfig, BatchScheduler, HedgePolicy, HedgeStats, HedgedModel, LanguageModel,
};
use genedit_retrieval::Embedding;
use genedit_sql::catalog::Database;
use genedit_telemetry::slo::AlertTransition;
use genedit_telemetry::{
    names, prom, Clock, FlightRecorder, MetricsRegistry, RecordedRequest, RecorderConfig,
    RequestVerdict, SloConfig, SloTracker, SystemClock, Trace,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Observability-plane configuration for a [`ServeRuntime`].
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// When false, the runtime records into a disabled
    /// [`MetricsRegistry`] — every instrumentation call is a cheap
    /// early return. The `obs_sweep` benchmark uses this as the
    /// zero-cost baseline for its overhead gate.
    pub metrics: bool,
    /// SLO to track over completed requests. When set, every completion
    /// feeds a burn-rate tracker; an alert transition to firing triggers
    /// a flight-recorder dump (if both a recorder and `dump_path` are
    /// configured).
    pub slo: Option<SloConfig>,
    /// Flight-recorder policy. When set, completed requests (and
    /// cancelled/shed ones) are offered to a bounded tail-sampling
    /// recorder.
    pub recorder: Option<RecorderConfig>,
    /// Where to write the flight-recorder JSONL dump on an SLO breach.
    pub dump_path: Option<PathBuf>,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            metrics: true,
            slo: None,
            recorder: None,
            dump_path: None,
        }
    }
}

/// Serving runtime configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each owning a pipeline clone over the shared
    /// model, knowledge snapshot, and database.
    pub workers: usize,
    /// Admission queue bound. Beyond this, requests are shed
    /// (oldest-deadline-first) or rejected with
    /// [`Rejected::QueueFull`].
    pub queue_capacity: usize,
    /// DRR quantum: deficit credited per ring visit. With the default
    /// priority costs (1/2/4), quantum 2 serves one Normal request per
    /// tenant per round.
    pub quantum: u32,
    /// Capacity of the full-result cache (0 disables).
    pub result_cache_capacity: usize,
    /// Capacity of the reformulation/embedding cache (0 disables).
    pub reform_cache_capacity: usize,
    /// Pipeline configuration used by every worker.
    pub pipeline: PipelineConfig,
    /// Cross-worker micro-batching of model calls. Every worker pipeline
    /// runs over one shared [`BatchScheduler`], so concurrent calls of
    /// the same task kind coalesce into `complete_batch` dispatches. The
    /// default ([`BatchConfig::disabled`]) passes calls straight through.
    pub batch: BatchConfig,
    /// When `Some(n)` with `n > 1`, workers generate `n` CoT plan and
    /// SQL candidates in parallel per request and select by vote (see
    /// [`GenerateOptions::ensemble_width`]). Pairs naturally with
    /// `batch`: one request's fan-out fills a batch by itself.
    pub ensemble_width: Option<usize>,
    /// Hedged dispatch of model calls: when enabled, a call that
    /// straggles past a percentile-derived delay fires a duplicate and
    /// the first completion wins (see [`HedgedModel`]). Sits *outside*
    /// the batch scheduler so the duplicate can coalesce into a fresh
    /// batch. The default ([`HedgePolicy::disabled`]) passes calls
    /// straight through.
    pub hedge: HedgePolicy,
    /// Observability plane: metrics enablement, SLO burn-rate alerting,
    /// and the tail-sampling flight recorder.
    pub observability: ObsConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            quantum: 2,
            result_cache_capacity: 256,
            reform_cache_capacity: 256,
            pipeline: PipelineConfig::default(),
            batch: BatchConfig::disabled(),
            ensemble_width: None,
            hedge: HedgePolicy::disabled(),
            observability: ObsConfig::default(),
        }
    }
}

/// The published view of deployed knowledge: an immutable index plus the
/// epoch it was built at. Swapped atomically by [`ServeRuntime::publish`].
struct Snapshot {
    epoch: u64,
    index: Arc<KnowledgeIndex>,
}

struct Shared<M> {
    sched: Mutex<DrrScheduler>,
    available: Condvar,
    snapshot: RwLock<Snapshot>,
    db: Arc<Database>,
    /// The shared model every worker pipeline runs over: a process-wide
    /// [`BatchScheduler`] (so concurrent same-kind calls across workers
    /// coalesce) fronted by a [`HedgedModel`] (so stragglers race a
    /// duplicate). Disabled configs on either layer pass straight
    /// through.
    model: Arc<HedgedModel<BatchScheduler<Arc<M>>>>,
    config: ServeConfig,
    metrics: Arc<MetricsRegistry>,
    /// SLO burn-rate tracker over completed requests (system clock).
    slo: Option<SloTracker>,
    /// Tail-sampling flight recorder of completed request traces.
    recorder: Option<FlightRecorder>,
    results: EpochCache<GenerationResult>,
    reforms: EpochCache<(String, Embedding)>,
    shutdown: AtomicBool,
    seq: AtomicU64,
    service_seq: AtomicU64,
}

impl<M> Shared<M> {
    fn lock_sched(&self) -> MutexGuard<'_, DrrScheduler> {
        self.sched
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A concurrent serving runtime over one deployed knowledge snapshot.
///
/// Lifecycle: [`ServeRuntime::start`] spawns the worker pool;
/// [`ServeRuntime::submit`] admits requests (or applies backpressure);
/// [`ServeRuntime::publish`] swaps in a re-built knowledge index after a
/// durable commit, bumping the epoch every cache key embeds;
/// [`ServeRuntime::shutdown`] drains the queue and joins the workers.
pub struct ServeRuntime<M> {
    shared: Arc<Shared<M>>,
    workers: Vec<JoinHandle<()>>,
}

impl<M: LanguageModel + 'static> ServeRuntime<M> {
    /// Spawn the worker pool. `epoch` is the knowledge epoch `index` was
    /// built at — `DurableKnowledgeStore::epoch()` for durable deploys,
    /// 0 for static knowledge sets.
    pub fn start(
        model: M,
        index: Arc<KnowledgeIndex>,
        epoch: u64,
        db: Arc<Database>,
        config: ServeConfig,
    ) -> ServeRuntime<M> {
        let workers = config.workers.max(1);
        let metrics = Arc::new(if config.observability.metrics {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        });
        let slo = config.observability.slo.clone().map(|slo_config| {
            SloTracker::new(slo_config, Arc::new(SystemClock::new()) as Arc<dyn Clock>)
        });
        let recorder = config
            .observability
            .recorder
            .clone()
            .map(FlightRecorder::new);
        let batch = BatchScheduler::new(Arc::new(model), config.batch.clone())
            .with_metrics(Arc::clone(&metrics));
        let model = Arc::new(
            HedgedModel::new(batch, config.hedge.clone()).with_metrics(Arc::clone(&metrics)),
        );
        let shared = Arc::new(Shared {
            sched: Mutex::new(DrrScheduler::new(config.quantum)),
            available: Condvar::new(),
            snapshot: RwLock::new(Snapshot { epoch, index }),
            db,
            model,
            metrics,
            slo,
            recorder,
            results: EpochCache::new(config.result_cache_capacity),
            reforms: EpochCache::new(config.reform_cache_capacity),
            shutdown: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            service_seq: AtomicU64::new(0),
            config,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .filter_map(|h| h.ok())
            .collect();
        ServeRuntime {
            shared,
            workers: handles,
        }
    }

    /// The runtime's metrics registry (`serve.*` counters and latency
    /// histograms, plus every worker pipeline's operator metrics).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.shared.metrics
    }

    /// Prometheus text exposition of the runtime's metrics — counters,
    /// gauges, cumulative histogram buckets, and request-ID exemplars.
    pub fn prometheus(&self) -> String {
        prom::render(&self.shared.metrics)
    }

    /// The flight recorder, when one was configured.
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.shared.recorder.as_ref()
    }

    /// Hedged-dispatch counters (fired / won / wasted) accumulated by
    /// the runtime's model stack. All zeros when hedging is disabled.
    pub fn hedge_stats(&self) -> HedgeStats {
        self.shared.model.stats()
    }

    /// Whether the configured SLO's burn-rate alert is currently firing.
    pub fn slo_firing(&self) -> bool {
        self.shared.slo.as_ref().is_some_and(SloTracker::is_firing)
    }

    /// Current number of queued (admitted, not yet running) requests.
    pub fn queue_depth(&self) -> usize {
        self.shared.lock_sched().len()
    }

    /// The epoch of the currently published knowledge snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared
            .snapshot
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .epoch
    }

    /// Publish a new knowledge snapshot. In-flight generations keep the
    /// snapshot they started with (workers hold an `Arc` clone); new
    /// requests see the new epoch, so every cache entry written under
    /// the old epoch silently stops matching.
    pub fn publish(&self, index: Arc<KnowledgeIndex>, epoch: u64) {
        let mut snap = self
            .shared
            .snapshot
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        snap.index = index;
        snap.epoch = epoch;
    }

    /// Admit a request, returning a [`Ticket`] to wait on — or apply
    /// backpressure.
    ///
    /// At saturation the queued request with the **earliest** deadline
    /// is shed iff the incoming request's deadline is later (no deadline
    /// counts as "latest"): capacity goes to the request with the most
    /// runway. When the incoming request cannot beat any queued
    /// deadline, [`Rejected::QueueFull`] tells the caller to back off.
    pub fn submit(&self, request: QueryRequest) -> Result<Ticket, Rejected> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            self.shared.metrics.incr("serve.rejected", 1);
            return Err(Rejected::ShuttingDown);
        }
        // A deadline already in the past can only ever expire unexecuted;
        // reject it up front instead of letting it occupy a queue slot
        // (and possibly shed a still-viable request) on the way to the
        // same outcome.
        if let Some(deadline) = request.deadline {
            if Instant::now() >= deadline {
                self.shared.metrics.incr("serve.rejected", 1);
                return Err(Rejected::DeadlineExpired);
            }
        }
        let cancel = match request.deadline {
            Some(deadline) => CancelToken::with_deadline(deadline),
            None => CancelToken::new(),
        };
        // The request ID exists from admission on: the same `req-…`
        // string lands on the root span, in metric exemplars, and in
        // flight-recorder dumps.
        let seq = self.shared.seq.fetch_add(1, Ordering::SeqCst);
        let request_id = format!("req-{seq:08x}");
        let (ticket, cell) = Ticket::new(cancel.clone(), request_id.clone());
        let mut sched = self.shared.lock_sched();
        if sched.len() >= self.shared.config.queue_capacity.max(1) {
            let victim = sched.earliest_deadline().and_then(|(deadline, seq)| {
                let incoming_later = match request.deadline {
                    Some(d) => d > deadline,
                    None => true,
                };
                incoming_later.then(|| sched.remove(seq)).flatten()
            });
            match victim {
                Some(shed) => {
                    self.shared.metrics.incr("serve.shed", 1);
                    record_outcome(
                        &self.shared,
                        &shed.request_id,
                        RequestVerdict::Cancelled,
                        shed.enqueued_at.elapsed().as_secs_f64() * 1e3,
                        Trace::empty(names::SERVE_REQUEST),
                        None,
                    );
                    shed.cell.complete(QueryOutcome::Shed);
                }
                None => {
                    drop(sched);
                    self.shared.metrics.incr("serve.rejected", 1);
                    return Err(Rejected::QueueFull);
                }
            }
        }
        let cost = request.priority.cost();
        sched.push(Admitted {
            seq,
            request_id,
            request,
            cell,
            cancel,
            enqueued_at: Instant::now(),
            cost,
        });
        let depth = sched.len();
        drop(sched);
        self.shared.metrics.incr("serve.admitted", 1);
        self.shared
            .metrics
            .set_gauge("serve.queue_depth", depth as f64);
        self.shared.available.notify_one();
        Ok(ticket)
    }

    /// Stop accepting work, drain the queue, and join the workers.
    /// Already-queued requests still execute (or expire on their own
    /// deadlines).
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for handle in self.workers {
            handle.join().ok();
        }
    }
}

fn worker_loop<M: LanguageModel + 'static>(shared: &Shared<M>) {
    let pipeline =
        GenEditPipeline::with_config(Arc::clone(&shared.model), shared.config.pipeline.clone())
            .with_metrics(Arc::clone(&shared.metrics));
    loop {
        let admitted = {
            let mut sched = shared.lock_sched();
            loop {
                if let Some(a) = sched.pop() {
                    break a;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                sched = shared
                    .available
                    .wait(sched)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        shared
            .metrics
            .set_gauge("serve.queue_depth", shared.lock_sched().len() as f64);
        serve_one(shared, &pipeline, admitted);
    }
}

/// Resolve a fired cancel token into its outcome: deadline expiry wins
/// over explicit cancellation when both hold.
fn cancelled_outcome(deadline: Option<Instant>) -> QueryOutcome {
    match deadline {
        Some(d) if Instant::now() >= d => QueryOutcome::Expired,
        _ => QueryOutcome::Cancelled,
    }
}

fn serve_one<M: LanguageModel + 'static, L: LanguageModel>(
    shared: &Shared<M>,
    pipeline: &GenEditPipeline<L>,
    admitted: Admitted,
) {
    let Admitted {
        request_id,
        request,
        cell,
        cancel,
        enqueued_at,
        ..
    } = admitted;
    let started = Instant::now();
    let queue_wait = started.duration_since(enqueued_at);
    if cancel.is_cancelled() {
        // Expired or cancelled while still queued: never executed.
        let outcome = cancelled_outcome(request.deadline);
        let expired = matches!(outcome, QueryOutcome::Expired);
        match outcome {
            QueryOutcome::Expired => shared.metrics.incr("serve.expired", 1),
            _ => shared.metrics.incr("serve.cancelled", 1),
        }
        // A missed deadline burns error budget; an explicit client
        // cancel does not.
        record_outcome(
            shared,
            &request_id,
            RequestVerdict::Cancelled,
            queue_wait.as_secs_f64() * 1e3,
            Trace::empty(names::SERVE_REQUEST),
            expired.then_some(true),
        );
        cell.complete(outcome);
        return;
    }
    let service_seq = shared.service_seq.fetch_add(1, Ordering::SeqCst);
    let (epoch, index) = {
        let snap = shared
            .snapshot
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        (snap.epoch, Arc::clone(&snap.index))
    };
    let key = CacheKey::new(&request.tenant, &request.question, epoch);

    if shared.results.capacity() > 0 {
        if let Some(result) = shared.results.get(&key) {
            shared.metrics.incr("serve.cache.hit", 1);
            finish(
                shared,
                &request.tenant,
                &request_id,
                cell,
                result,
                true,
                queue_wait,
                started,
                service_seq,
            );
            return;
        }
        shared.metrics.incr("serve.cache.miss", 1);
    }

    // Warm the reformulation operator from the epoch-keyed cache: a
    // repeat question under the same epoch skips the operator-1 model
    // call and embeds nothing.
    let warm = shared.reforms.get(&key);
    let (reformulation, query_embedding) = match warm {
        Some((text, emb)) => {
            shared.metrics.incr("serve.reform.hit", 1);
            (Some(text), Some(emb))
        }
        None => {
            shared.metrics.incr("serve.reform.miss", 1);
            (None, None)
        }
    };
    let opts = GenerateOptions {
        cancel: Some(&cancel),
        reformulation,
        query_embedding,
        ensemble_width: shared.config.ensemble_width,
        request_id: Some(&request_id),
    };
    let result = pipeline.generate_with(
        &request.question,
        &index,
        &shared.db,
        &request.evidence,
        &opts,
    );

    if result.cancelled {
        let outcome = cancelled_outcome(request.deadline);
        let expired = matches!(outcome, QueryOutcome::Expired);
        match outcome {
            QueryOutcome::Expired => shared.metrics.incr("serve.expired", 1),
            _ => shared.metrics.incr("serve.cancelled", 1),
        }
        record_outcome(
            shared,
            &request_id,
            RequestVerdict::Cancelled,
            (queue_wait + started.elapsed()).as_secs_f64() * 1e3,
            result.trace.clone(),
            expired.then_some(true),
        );
        cell.complete(outcome);
        return;
    }

    if shared.reforms.capacity() > 0 && !result.reformulated.is_empty() {
        let emb = index.embedder().embed(&result.reformulated);
        shared
            .reforms
            .insert(key.clone(), (result.reformulated.clone(), emb));
    }
    if shared.results.capacity() > 0 {
        let evicted = shared.results.insert(key, result.clone());
        if evicted > 0 {
            shared.metrics.incr("serve.cache.evicted", evicted as u64);
        }
    }
    finish(
        shared,
        &request.tenant,
        &request_id,
        cell,
        result,
        false,
        queue_wait,
        started,
        service_seq,
    );
}

#[allow(clippy::too_many_arguments)]
fn finish<M>(
    shared: &Shared<M>,
    tenant: &str,
    request_id: &str,
    cell: Arc<TicketCell>,
    result: GenerationResult,
    cached: bool,
    queue_wait: std::time::Duration,
    started: Instant,
    service_seq: u64,
) {
    let service = started.elapsed();
    let latency_ms = (queue_wait + service).as_secs_f64() * 1e3;
    shared.metrics.incr("serve.completed", 1);
    shared
        .metrics
        .observe_with_exemplar(names::SERVE_REQUEST, latency_ms, request_id);
    shared
        .metrics
        .observe(&format!("serve.latency_ms.{tenant}"), latency_ms);
    let verdict = if !result.validated {
        RequestVerdict::Error
    } else if result.degraded_operator_count() > 0 {
        RequestVerdict::Degraded
    } else {
        RequestVerdict::Ok
    };
    record_outcome(
        shared,
        request_id,
        verdict,
        latency_ms,
        result.trace.clone(),
        Some(verdict == RequestVerdict::Error),
    );
    cell.complete(QueryOutcome::Completed {
        result: Box::new(result),
        cached,
        queue_wait,
        service,
        service_seq,
    });
}

/// Feed one finished (or abandoned) request into the observability
/// plane: the flight recorder first — so an alert fired by this very
/// request dumps a ring that already contains it — then the SLO tracker
/// and its alert state machine. `slo_error`: `None` keeps the request
/// out of the SLO (explicit client cancels, shed requests), `Some(e)`
/// counts it with error flag `e`.
fn record_outcome<M>(
    shared: &Shared<M>,
    request_id: &str,
    verdict: RequestVerdict,
    latency_ms: f64,
    trace: Trace,
    slo_error: Option<bool>,
) {
    if let Some(recorder) = &shared.recorder {
        recorder.record(RecordedRequest {
            request_id: request_id.to_string(),
            verdict,
            latency_ms,
            trace,
        });
    }
    let (Some(slo), Some(error)) = (&shared.slo, slo_error) else {
        return;
    };
    slo.record(latency_ms, error);
    match slo.evaluate().transition {
        Some(AlertTransition::Fired) => {
            shared.metrics.incr("serve.slo.fired", 1);
            if let (Some(recorder), Some(path)) =
                (&shared.recorder, &shared.config.observability.dump_path)
            {
                if std::fs::write(path, recorder.dump_jsonl()).is_ok() {
                    shared.metrics.incr("serve.slo.dumps", 1);
                }
            }
        }
        Some(AlertTransition::Resolved) => shared.metrics.incr("serve.slo.resolved", 1),
        None => {}
    }
}
