//! The serving runtime: worker pool, admission control, epoch-keyed
//! caches, fault containment, and the per-request execution path.
//!
//! Fault-containment layers (see `DESIGN.md` §15):
//!
//! - every request executes under a per-request `catch_unwind` boundary,
//!   so a panicking operator resolves its ticket with
//!   [`QueryOutcome::Failed`] instead of hanging the caller;
//! - a worker whose request panicked **retires** (exits) and the
//!   supervisor thread respawns it with backoff (see
//!   [`crate::supervisor`]);
//! - tenants whose recent requests keep failing are **quarantined** at
//!   admission (see [`crate::quarantine`]);
//! - [`ServeRuntime::shutdown_with_deadline`] drains with a bound,
//!   force-resolving stragglers instead of joining forever.

use crate::cache::{CacheKey, EpochCache};
use crate::quarantine::{Gate, QuarantineConfig, QuarantineState, TenantQuarantine};
use crate::request::{QueryOutcome, QueryRequest, Rejected, Ticket, TicketCell};
use crate::sched::{Admitted, DrrScheduler};
use crate::tenants::TenantDirectory;

use crate::supervisor::{
    alive_workers, lock_table, supervisor_loop, SupervisorConfig, WorkerSlot, WorkerTable,
};
use genedit_core::{
    CancelToken, GenEditPipeline, GenerateOptions, GenerationResult, KnowledgeIndex, PipelineConfig,
};
use genedit_llm::{
    BatchConfig, BatchScheduler, HedgePolicy, HedgeStats, HedgedModel, LanguageModel,
};
use genedit_retrieval::Embedding;
use genedit_sql::catalog::Database;
use genedit_telemetry::slo::AlertTransition;
use genedit_telemetry::{
    names, prom, Clock, FlightRecorder, MetricsRegistry, RecordedRequest, RecorderConfig,
    RequestVerdict, SloConfig, SloTracker, SystemClock, Trace,
};
use std::collections::HashMap;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Extra time [`ServeRuntime::shutdown_with_deadline`] grants in-flight
/// requests to notice their cancelled tokens after the drain deadline
/// passes, before their tickets are force-resolved and any still-wedged
/// worker threads are detached. The method therefore returns within
/// roughly `timeout + DRAIN_GRACE` plus join overhead.
pub const DRAIN_GRACE: Duration = Duration::from_millis(250);

/// Observability-plane configuration for a [`ServeRuntime`].
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// When false, the runtime records into a disabled
    /// [`MetricsRegistry`] — every instrumentation call is a cheap
    /// early return. The `obs_sweep` benchmark uses this as the
    /// zero-cost baseline for its overhead gate.
    pub metrics: bool,
    /// SLO to track over completed requests. When set, every completion
    /// feeds a burn-rate tracker; an alert transition to firing triggers
    /// a flight-recorder dump (if both a recorder and `dump_path` are
    /// configured).
    pub slo: Option<SloConfig>,
    /// Flight-recorder policy. When set, completed requests (and
    /// cancelled/shed ones) are offered to a bounded tail-sampling
    /// recorder.
    pub recorder: Option<RecorderConfig>,
    /// Where to write the flight-recorder JSONL dump on an SLO breach.
    pub dump_path: Option<PathBuf>,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            metrics: true,
            slo: None,
            recorder: None,
            dump_path: None,
        }
    }
}

/// Serving runtime configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each owning a pipeline clone over the shared
    /// model, knowledge snapshot, and database.
    pub workers: usize,
    /// Admission queue bound. Beyond this, requests are shed
    /// (oldest-deadline-first) or rejected with
    /// [`Rejected::QueueFull`].
    pub queue_capacity: usize,
    /// DRR quantum: deficit credited per ring visit. With the default
    /// priority costs (1/2/4), quantum 2 serves one Normal request per
    /// tenant per round.
    pub quantum: u32,
    /// Capacity of the full-result cache (0 disables).
    pub result_cache_capacity: usize,
    /// Capacity of the reformulation/embedding cache (0 disables).
    pub reform_cache_capacity: usize,
    /// Pipeline configuration used by every worker.
    pub pipeline: PipelineConfig,
    /// Cross-worker micro-batching of model calls. Every worker pipeline
    /// runs over one shared [`BatchScheduler`], so concurrent calls of
    /// the same task kind coalesce into `complete_batch` dispatches. The
    /// default ([`BatchConfig::disabled`]) passes calls straight through.
    pub batch: BatchConfig,
    /// When `Some(n)` with `n > 1`, workers generate `n` CoT plan and
    /// SQL candidates in parallel per request and select by vote (see
    /// [`GenerateOptions::ensemble_width`]). Pairs naturally with
    /// `batch`: one request's fan-out fills a batch by itself.
    pub ensemble_width: Option<usize>,
    /// Hedged dispatch of model calls: when enabled, a call that
    /// straggles past a percentile-derived delay fires a duplicate and
    /// the first completion wins (see [`HedgedModel`]). Sits *outside*
    /// the batch scheduler so the duplicate can coalesce into a fresh
    /// batch. The default ([`HedgePolicy::disabled`]) passes calls
    /// straight through.
    pub hedge: HedgePolicy,
    /// Observability plane: metrics enablement, SLO burn-rate alerting,
    /// and the tail-sampling flight recorder.
    pub observability: ObsConfig,
    /// Worker-pool supervision policy: how aggressively retired (panicked)
    /// workers are respawned, and the per-slot respawn budget.
    pub supervisor: SupervisorConfig,
    /// Per-tenant quarantine policy. Disabled by default; see
    /// [`QuarantineConfig::default_policy`] for a production-shaped
    /// opt-in.
    pub quarantine: QuarantineConfig,
    /// Disk-backed per-tenant knowledge. When set, requests from tenants
    /// the directory knows are served from that tenant's own paged-in
    /// index (cold tenants page in on first request — the
    /// `serve.tenant.page_in` path); everyone else falls back to the
    /// globally published snapshot.
    pub tenants: Option<Arc<TenantDirectory>>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            quantum: 2,
            result_cache_capacity: 256,
            reform_cache_capacity: 256,
            pipeline: PipelineConfig::default(),
            batch: BatchConfig::disabled(),
            ensemble_width: None,
            hedge: HedgePolicy::disabled(),
            observability: ObsConfig::default(),
            supervisor: SupervisorConfig::default(),
            quarantine: QuarantineConfig::disabled(),
            tenants: None,
        }
    }
}

/// What [`ServeRuntime::shutdown_with_deadline`] had to do to finish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// True when every admitted request resolved on its own before the
    /// deadline — nothing was forced.
    pub clean: bool,
    /// Queued (never executed) requests force-resolved as
    /// [`QueryOutcome::Cancelled`] after the deadline passed.
    pub forced_queued: u64,
    /// In-flight requests whose cancel tokens were fired at the deadline.
    pub cancelled_inflight: u64,
    /// In-flight requests whose tickets had to be force-resolved because
    /// they did not notice cancellation within [`DRAIN_GRACE`].
    pub forced_inflight: u64,
    /// Worker threads still running at the end of the grace period,
    /// detached rather than joined (their tickets were already resolved).
    pub detached_workers: u64,
    /// Total wall-clock time the drain took.
    pub elapsed: Duration,
}

/// The published view of deployed knowledge: an immutable index plus the
/// epoch it was built at. Swapped atomically by [`ServeRuntime::publish`].
struct Snapshot {
    epoch: u64,
    index: Arc<KnowledgeIndex>,
}

/// An admitted request currently executing on a worker: enough state for
/// the drain path to cancel it cooperatively and, failing that, resolve
/// its ticket directly (completion is first-wins, so racing the worker
/// is safe).
struct InFlight {
    cell: Arc<TicketCell>,
    cancel: CancelToken,
}

struct Shared<M> {
    sched: Mutex<DrrScheduler>,
    available: Condvar,
    snapshot: RwLock<Snapshot>,
    db: Arc<Database>,
    /// The shared model every worker pipeline runs over: a process-wide
    /// [`BatchScheduler`] (so concurrent same-kind calls across workers
    /// coalesce) fronted by a [`HedgedModel`] (so stragglers race a
    /// duplicate). Disabled configs on either layer pass straight
    /// through.
    model: Arc<HedgedModel<BatchScheduler<Arc<M>>>>,
    config: ServeConfig,
    metrics: Arc<MetricsRegistry>,
    /// SLO burn-rate tracker over completed requests (system clock).
    slo: Option<SloTracker>,
    /// Tail-sampling flight recorder of completed request traces.
    recorder: Option<FlightRecorder>,
    /// Per-tenant failure breaker consulted at admission.
    quarantine: TenantQuarantine,
    /// Requests a worker has dequeued but not yet resolved, keyed by
    /// admission sequence. Maintained under the containment guard so a
    /// panicking request still deregisters.
    inflight: Mutex<HashMap<u64, InFlight>>,
    results: EpochCache<GenerationResult>,
    reforms: EpochCache<(String, Embedding)>,
    shutdown: AtomicBool,
    seq: AtomicU64,
    service_seq: AtomicU64,
}

impl<M> Shared<M> {
    fn lock_sched(&self) -> MutexGuard<'_, DrrScheduler> {
        self.sched
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn lock_inflight(&self) -> MutexGuard<'_, HashMap<u64, InFlight>> {
        self.inflight
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Flip the shutdown flag **under the scheduler lock**. `submit`
    /// re-checks the flag under the same lock before enqueueing, so no
    /// request can slip into the queue after shutdown is observable —
    /// the race that used to strand a ticket behind an exiting pool.
    fn begin_shutdown(&self) {
        let _sched = self.lock_sched();
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// A concurrent serving runtime over one deployed knowledge snapshot.
///
/// Lifecycle: [`ServeRuntime::start`] spawns the worker pool and its
/// supervisor; [`ServeRuntime::submit`] admits requests (or applies
/// backpressure, including per-tenant quarantine);
/// [`ServeRuntime::publish`] swaps in a re-built knowledge index after a
/// durable commit, bumping the epoch every cache key embeds;
/// [`ServeRuntime::shutdown`] drains the queue and joins the workers,
/// while [`ServeRuntime::shutdown_with_deadline`] does the same under a
/// bound, force-resolving whatever will not drain in time.
pub struct ServeRuntime<M> {
    shared: Arc<Shared<M>>,
    table: WorkerTable,
    /// Taken (and joined) by whichever shutdown call gets there first;
    /// behind a mutex so shutdown borrows `&self` and can therefore race
    /// concurrent `submit` calls — which is exactly the race the
    /// under-lock re-check in `submit` exists to win.
    supervisor: Mutex<Option<JoinHandle<()>>>,
}

fn spawn_worker<M: LanguageModel + 'static>(
    shared: &Arc<Shared<M>>,
    slot: usize,
) -> io::Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    thread::Builder::new()
        .name(format!("serve-worker-{slot}"))
        .spawn(move || worker_loop(&shared))
}

/// Stop and join whatever workers exist (used when `try_start` fails
/// partway through spawning the pool).
fn abort_pool<M>(shared: &Shared<M>, table: &WorkerTable) {
    shared.begin_shutdown();
    shared.available.notify_all();
    let handles: Vec<JoinHandle<()>> = lock_table(table)
        .iter_mut()
        .filter_map(|slot| slot.handle.take())
        .collect();
    for handle in handles {
        handle.join().ok();
    }
}

impl<M: LanguageModel + 'static> ServeRuntime<M> {
    /// Spawn the worker pool and its supervisor. `epoch` is the knowledge
    /// epoch `index` was built at — `DurableKnowledgeStore::epoch()` for
    /// durable deploys, 0 for static knowledge sets.
    ///
    /// Panics if a worker (or the supervisor) thread cannot be spawned;
    /// use [`ServeRuntime::try_start`] to handle that error instead. A
    /// partially-spawned pool is never returned or leaked either way.
    pub fn start(
        model: M,
        index: Arc<KnowledgeIndex>,
        epoch: u64,
        db: Arc<Database>,
        config: ServeConfig,
    ) -> ServeRuntime<M> {
        Self::try_start(model, index, epoch, db, config)
            .unwrap_or_else(|err| panic!("serve runtime failed to spawn its thread pool: {err}"))
    }

    /// Fallible [`ServeRuntime::start`]: surfaces the OS error when a
    /// worker or supervisor thread cannot be spawned, after stopping and
    /// joining any workers that did start.
    pub fn try_start(
        model: M,
        index: Arc<KnowledgeIndex>,
        epoch: u64,
        db: Arc<Database>,
        config: ServeConfig,
    ) -> io::Result<ServeRuntime<M>> {
        let workers = config.workers.max(1);
        let metrics = Arc::new(if config.observability.metrics {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        });
        let slo = config.observability.slo.clone().map(|slo_config| {
            SloTracker::new(slo_config, Arc::new(SystemClock::new()) as Arc<dyn Clock>)
        });
        let recorder = config
            .observability
            .recorder
            .clone()
            .map(FlightRecorder::new);
        let quarantine = TenantQuarantine::new(
            config.quarantine.clone(),
            Arc::new(SystemClock::new()) as Arc<dyn Clock>,
        )
        .with_metrics(Arc::clone(&metrics));
        let batch = BatchScheduler::new(Arc::new(model), config.batch.clone())
            .with_metrics(Arc::clone(&metrics));
        let model = Arc::new(
            HedgedModel::new(batch, config.hedge.clone()).with_metrics(Arc::clone(&metrics)),
        );
        let shared = Arc::new(Shared {
            sched: Mutex::new(DrrScheduler::new(config.quantum)),
            available: Condvar::new(),
            snapshot: RwLock::new(Snapshot { epoch, index }),
            db,
            model,
            metrics,
            slo,
            recorder,
            quarantine,
            inflight: Mutex::new(HashMap::new()),
            results: EpochCache::new(config.result_cache_capacity),
            reforms: EpochCache::new(config.reform_cache_capacity),
            shutdown: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            service_seq: AtomicU64::new(0),
            config,
        });
        let table: WorkerTable = Arc::new(Mutex::new(Vec::with_capacity(workers)));
        for i in 0..workers {
            // A failed spawn is surfaced, not silently swallowed: a pool
            // that quietly started with fewer workers than configured
            // would serve at reduced capacity with no signal anywhere.
            match spawn_worker(&shared, i) {
                Ok(handle) => lock_table(&table).push(WorkerSlot::new(handle)),
                Err(err) => {
                    abort_pool(&shared, &table);
                    return Err(err);
                }
            }
        }
        shared
            .metrics
            .set_gauge("serve.workers.alive", workers as f64);
        let supervisor = {
            let sup_table = Arc::clone(&table);
            let sup_config = shared.config.supervisor.clone();
            let sup_metrics = Arc::clone(&shared.metrics);
            let flag_shared = Arc::clone(&shared);
            let spawn_shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("serve-supervisor".to_string())
                .spawn(move || {
                    supervisor_loop(
                        sup_table,
                        sup_config,
                        sup_metrics,
                        move || flag_shared.shutdown.load(Ordering::SeqCst),
                        move |slot| spawn_worker(&spawn_shared, slot),
                    )
                })
        };
        let supervisor = match supervisor {
            Ok(handle) => Some(handle),
            Err(err) => {
                abort_pool(&shared, &table);
                return Err(err);
            }
        };
        Ok(ServeRuntime {
            shared,
            table,
            supervisor: Mutex::new(supervisor),
        })
    }

    /// The runtime's metrics registry (`serve.*` counters and latency
    /// histograms, plus every worker pipeline's operator metrics).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.shared.metrics
    }

    /// Prometheus text exposition of the runtime's metrics — counters,
    /// gauges, cumulative histogram buckets, and request-ID exemplars.
    pub fn prometheus(&self) -> String {
        prom::render(&self.shared.metrics)
    }

    /// The flight recorder, when one was configured.
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.shared.recorder.as_ref()
    }

    /// Hedged-dispatch counters (fired / won / wasted) accumulated by
    /// the runtime's model stack. All zeros when hedging is disabled.
    pub fn hedge_stats(&self) -> HedgeStats {
        self.shared.model.stats()
    }

    /// Whether the configured SLO's burn-rate alert is currently firing.
    pub fn slo_firing(&self) -> bool {
        self.shared.slo.as_ref().is_some_and(SloTracker::is_firing)
    }

    /// Current number of queued (admitted, not yet running) requests.
    pub fn queue_depth(&self) -> usize {
        self.shared.lock_sched().len()
    }

    /// Worker threads currently alive. Transiently below
    /// [`ServeConfig::workers`] after a panic retires a worker, until the
    /// supervisor respawns it.
    pub fn workers_alive(&self) -> usize {
        alive_workers(&self.table)
    }

    /// The quarantine breaker state for `tenant` (Closed when unknown).
    pub fn quarantine_state(&self, tenant: &str) -> QuarantineState {
        self.shared.quarantine.state(tenant)
    }

    /// The epoch of the currently published knowledge snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared
            .snapshot
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .epoch
    }

    /// Publish a new knowledge snapshot. In-flight generations keep the
    /// snapshot they started with (workers hold an `Arc` clone); new
    /// requests see the new epoch, so every cache entry written under
    /// the old epoch silently stops matching.
    pub fn publish(&self, index: Arc<KnowledgeIndex>, epoch: u64) {
        let mut snap = self
            .shared
            .snapshot
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        snap.index = index;
        snap.epoch = epoch;
    }

    /// Admit a request, returning a [`Ticket`] to wait on — or apply
    /// backpressure.
    ///
    /// At saturation the queued request with the **earliest** deadline
    /// is shed iff the incoming request's deadline is later (no deadline
    /// counts as "latest"): capacity goes to the request with the most
    /// runway. When the incoming request cannot beat any queued
    /// deadline, [`Rejected::QueueFull`] tells the caller to back off.
    /// A quarantined tenant is answered [`Rejected::Quarantined`] before
    /// any queue slot is considered.
    pub fn submit(&self, request: QueryRequest) -> Result<Ticket, Rejected> {
        // Fast path only: the authoritative shutdown check happens again
        // under the scheduler lock below, where it cannot race
        // `begin_shutdown`.
        if self.shared.shutdown.load(Ordering::SeqCst) {
            self.shared.metrics.incr("serve.rejected", 1);
            return Err(Rejected::ShuttingDown);
        }
        // A deadline already in the past can only ever expire unexecuted;
        // reject it up front instead of letting it occupy a queue slot
        // (and possibly shed a still-viable request) on the way to the
        // same outcome.
        if let Some(deadline) = request.deadline {
            if Instant::now() >= deadline {
                self.shared.metrics.incr("serve.rejected", 1);
                return Err(Rejected::DeadlineExpired);
            }
        }
        let probe = match self.shared.quarantine.check(&request.tenant) {
            Gate::Admit => false,
            Gate::AdmitProbe => true,
            Gate::Reject => {
                self.shared.metrics.incr("serve.rejected", 1);
                return Err(Rejected::Quarantined);
            }
        };
        let cancel = match request.deadline {
            Some(deadline) => CancelToken::with_deadline(deadline),
            None => CancelToken::new(),
        };
        // The request ID exists from admission on: the same `req-…`
        // string lands on the root span, in metric exemplars, and in
        // flight-recorder dumps.
        let seq = self.shared.seq.fetch_add(1, Ordering::SeqCst);
        let request_id = format!("req-{seq:08x}");
        let (ticket, cell) = Ticket::new(cancel.clone(), request_id.clone());
        let mut sched = self.shared.lock_sched();
        if self.shared.shutdown.load(Ordering::SeqCst) {
            // Shutdown began between the fast path and taking the lock:
            // enqueueing now would strand the ticket behind a pool that
            // is already exiting.
            drop(sched);
            self.shared.quarantine.on_abandoned(&request.tenant, probe);
            self.shared.metrics.incr("serve.rejected", 1);
            return Err(Rejected::ShuttingDown);
        }
        if sched.len() >= self.shared.config.queue_capacity.max(1) {
            let victim = sched.earliest_deadline().and_then(|(deadline, seq)| {
                let incoming_later = match request.deadline {
                    Some(d) => d > deadline,
                    None => true,
                };
                incoming_later.then(|| sched.remove(seq)).flatten()
            });
            match victim {
                Some(shed) => {
                    self.shared.metrics.incr("serve.shed", 1);
                    self.shared
                        .quarantine
                        .on_abandoned(&shed.request.tenant, shed.probe);
                    record_outcome(
                        &self.shared,
                        &shed.request_id,
                        RequestVerdict::Cancelled,
                        shed.enqueued_at.elapsed().as_secs_f64() * 1e3,
                        Trace::empty(names::SERVE_REQUEST),
                        None,
                    );
                    shed.cell.complete(QueryOutcome::Shed);
                }
                None => {
                    drop(sched);
                    self.shared.quarantine.on_abandoned(&request.tenant, probe);
                    self.shared.metrics.incr("serve.rejected", 1);
                    return Err(Rejected::QueueFull);
                }
            }
        }
        let cost = request.priority.cost();
        sched.push(Admitted {
            seq,
            request_id,
            request,
            cell,
            cancel,
            enqueued_at: Instant::now(),
            cost,
            probe,
        });
        let depth = sched.len();
        drop(sched);
        self.shared.metrics.incr("serve.admitted", 1);
        self.shared
            .metrics
            .set_gauge("serve.queue_depth", depth as f64);
        self.shared.available.notify_one();
        Ok(ticket)
    }

    fn join_supervisor(&self) {
        let handle = self
            .supervisor
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take();
        if let Some(handle) = handle {
            handle.join().ok();
        }
    }

    /// Stop accepting work, drain the queue, and join the workers.
    /// Already-queued requests still execute (or expire on their own
    /// deadlines). Anything left unexecutable — e.g. queued work behind
    /// a pool whose every worker retired — is resolved as
    /// [`QueryOutcome::Cancelled`] rather than left hanging.
    ///
    /// Takes `&self` so shutdown can come from any thread, including one
    /// racing live `submit` calls; those lose deterministically (the
    /// flag flips under the scheduler lock and `submit` re-checks it
    /// there) and answer [`Rejected::ShuttingDown`]. Calling shutdown
    /// again is a no-op.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
        self.shared.available.notify_all();
        self.join_supervisor();
        let handles: Vec<JoinHandle<()>> = lock_table(&self.table)
            .iter_mut()
            .filter_map(|slot| slot.handle.take())
            .collect();
        for handle in handles {
            handle.join().ok();
        }
        resolve_leftovers(&self.shared);
    }

    /// Graceful drain with a bound: stop admission immediately, give
    /// queued and in-flight requests up to `timeout` to resolve on their
    /// own, then force the rest — queued requests resolve as
    /// [`QueryOutcome::Cancelled`] without executing, in-flight requests
    /// get their cancel tokens fired plus [`DRAIN_GRACE`] to notice, and
    /// any ticket still open after that is resolved directly (completion
    /// is first-wins, so racing a slow worker is safe). Worker threads
    /// still wedged at that point are detached, not joined: the caller
    /// gets its bound, and every admitted ticket has already resolved.
    pub fn shutdown_with_deadline(&self, timeout: Duration) -> DrainReport {
        let started = Instant::now();
        let deadline = started + timeout;
        self.shared.begin_shutdown();
        self.shared.available.notify_all();
        self.join_supervisor();
        // Phase 1: cooperative drain. Workers keep executing queued work;
        // we just watch for quiescence. The queue→in-flight handoff
        // happens under the scheduler lock, so sampling the queue first
        // and the in-flight table second never misses a request.
        loop {
            let queued = self.shared.lock_sched().len();
            let inflight = self.shared.lock_inflight().len();
            if queued == 0 && inflight == 0 {
                break;
            }
            // Every worker retired (supervisor already exited): queued
            // work can no longer drain on its own — force it now.
            if inflight == 0 && alive_workers(&self.table) == 0 {
                break;
            }
            if Instant::now() >= deadline {
                break;
            }
            thread::sleep(Duration::from_millis(1));
        }
        // Phase 2: force. Evict whatever is still queued and cancel
        // whatever is still running.
        let mut forced_queued = 0u64;
        for admitted in self.shared.lock_sched().drain_all() {
            forced_queued += 1;
            self.shared.metrics.incr("serve.drain.forced_queued", 1);
            self.shared
                .quarantine
                .on_abandoned(&admitted.request.tenant, admitted.probe);
            record_outcome(
                &self.shared,
                &admitted.request_id,
                RequestVerdict::Cancelled,
                admitted.enqueued_at.elapsed().as_secs_f64() * 1e3,
                Trace::empty(names::SERVE_REQUEST),
                None,
            );
            admitted.cancel.cancel();
            admitted.cell.complete(QueryOutcome::Cancelled);
        }
        let mut cancelled_inflight = 0u64;
        for entry in self.shared.lock_inflight().values() {
            entry.cancel.cancel();
            cancelled_inflight += 1;
        }
        // Phase 3: grace, then force-resolve stragglers' tickets and
        // detach their threads. A worker that eventually returns finds
        // its completion already taken (first-wins) and simply exits.
        if cancelled_inflight > 0 {
            let grace_deadline = Instant::now() + DRAIN_GRACE;
            while Instant::now() < grace_deadline {
                if self.shared.lock_inflight().is_empty() {
                    break;
                }
                thread::sleep(Duration::from_millis(1));
            }
        }
        let mut forced_inflight = 0u64;
        for entry in self.shared.lock_inflight().values() {
            forced_inflight += 1;
            self.shared.metrics.incr("serve.drain.forced_inflight", 1);
            entry.cell.complete(QueryOutcome::Cancelled);
        }
        let mut detached_workers = 0u64;
        let handles: Vec<JoinHandle<()>> = lock_table(&self.table)
            .iter_mut()
            .filter_map(|slot| slot.handle.take())
            .collect();
        for handle in handles {
            if handle.is_finished() {
                handle.join().ok();
            } else {
                detached_workers += 1;
                drop(handle);
            }
        }
        resolve_leftovers(&self.shared);
        DrainReport {
            clean: forced_queued == 0 && cancelled_inflight == 0 && forced_inflight == 0,
            forced_queued,
            cancelled_inflight,
            forced_inflight,
            detached_workers,
            elapsed: started.elapsed(),
        }
    }
}

/// Resolve any request still sitting in the queue after the workers are
/// gone (e.g. submitted in the instant before shutdown, with the whole
/// pool already retired). Invariant: every admitted ticket resolves.
fn resolve_leftovers<M>(shared: &Shared<M>) {
    for admitted in shared.lock_sched().drain_all() {
        shared
            .quarantine
            .on_abandoned(&admitted.request.tenant, admitted.probe);
        record_outcome(
            shared,
            &admitted.request_id,
            RequestVerdict::Cancelled,
            admitted.enqueued_at.elapsed().as_secs_f64() * 1e3,
            Trace::empty(names::SERVE_REQUEST),
            None,
        );
        admitted.cell.complete(QueryOutcome::Cancelled);
    }
}

fn worker_loop<M: LanguageModel + 'static>(shared: &Arc<Shared<M>>) {
    let pipeline =
        GenEditPipeline::with_config(Arc::clone(&shared.model), shared.config.pipeline.clone())
            .with_metrics(Arc::clone(&shared.metrics));
    loop {
        let admitted = {
            let mut sched = shared.lock_sched();
            loop {
                if let Some(a) = sched.pop() {
                    // Register in-flight *before* releasing the scheduler
                    // lock: drain-time observers sample queue-then-inflight
                    // and must never catch a request in neither.
                    shared.lock_inflight().insert(
                        a.seq,
                        InFlight {
                            cell: Arc::clone(&a.cell),
                            cancel: a.cancel.clone(),
                        },
                    );
                    break a;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                sched = shared
                    .available
                    .wait(sched)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        shared
            .metrics
            .set_gauge("serve.queue_depth", shared.lock_sched().len() as f64);
        if !serve_one_contained(shared, &pipeline, admitted) {
            // The request panicked. Its ticket is resolved and the panic
            // recorded; this worker retires ("let it crash") and the
            // supervisor respawns the slot on a fresh thread.
            return;
        }
    }
}

/// Render a caught panic payload for [`QueryOutcome::Failed`].
fn panic_summary(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// RAII containment guard for one dequeued request: deregisters it from
/// the in-flight table and — if no completion was recorded by the time
/// the guard drops — resolves the ticket with a generic failure. The
/// guard lives *outside* the `catch_unwind` boundary, so it fires even
/// if the panic-handling path itself unwinds; in the normal panic path
/// the catch arm has already completed the ticket with the real payload
/// summary (completion is first-wins, the guard is a backstop).
struct Containment<'a, M> {
    shared: &'a Shared<M>,
    cell: Arc<TicketCell>,
    seq: u64,
}

impl<M> Drop for Containment<'_, M> {
    fn drop(&mut self) {
        self.shared.lock_inflight().remove(&self.seq);
        if !self.cell.is_complete() {
            self.cell.complete(QueryOutcome::Failed {
                reason: "request abandoned without a recorded outcome".to_string(),
            });
        }
    }
}

/// Execute one request inside its panic-isolation domain. Returns false
/// when the request panicked (the worker should retire).
fn serve_one_contained<M: LanguageModel + 'static, L: LanguageModel>(
    shared: &Arc<Shared<M>>,
    pipeline: &GenEditPipeline<L>,
    admitted: Admitted,
) -> bool {
    let seq = admitted.seq;
    let request_id = admitted.request_id.clone();
    let tenant = admitted.request.tenant.clone();
    let probe = admitted.probe;
    let enqueued_at = admitted.enqueued_at;
    let cell = Arc::clone(&admitted.cell);
    let guard = Containment {
        shared: shared.as_ref(),
        cell: Arc::clone(&cell),
        seq,
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| serve_one(shared, pipeline, admitted)));
    let survived = match outcome {
        Ok(()) => true,
        Err(payload) => {
            let reason = panic_summary(payload.as_ref());
            shared.metrics.incr("serve.panic", 1);
            shared.quarantine.on_failure(&tenant, probe);
            record_outcome(
                shared,
                &request_id,
                RequestVerdict::Panicked,
                enqueued_at.elapsed().as_secs_f64() * 1e3,
                Trace::empty(names::SERVE_REQUEST),
                Some(true),
            );
            cell.complete(QueryOutcome::Failed { reason });
            false
        }
    };
    drop(guard);
    survived
}

/// Resolve a fired cancel token into its outcome: deadline expiry wins
/// over explicit cancellation when both hold.
fn cancelled_outcome(deadline: Option<Instant>) -> QueryOutcome {
    match deadline {
        Some(d) if Instant::now() >= d => QueryOutcome::Expired,
        _ => QueryOutcome::Cancelled,
    }
}

/// The (epoch, index) a request should be served against: the tenant's
/// own paged-in index when a [`TenantDirectory`] is configured and knows
/// the tenant, otherwise the globally published snapshot. A directory
/// error (I/O, corruption) degrades to the global snapshot rather than
/// failing the request — the WAL-backed store will recover on a later
/// page-in, and `serve.tenant.error` counts the degradations.
fn resolve_index<M: LanguageModel + 'static>(
    shared: &Shared<M>,
    tenant: &str,
) -> (u64, Arc<KnowledgeIndex>) {
    if let Some(dir) = &shared.config.tenants {
        if dir.knows(tenant) {
            match dir.index_for(tenant) {
                Ok(pair) => return pair,
                Err(_) => shared.metrics.incr("serve.tenant.error", 1),
            }
        }
    }
    let snap = shared
        .snapshot
        .read()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    (snap.epoch, Arc::clone(&snap.index))
}

fn serve_one<M: LanguageModel + 'static, L: LanguageModel>(
    shared: &Shared<M>,
    pipeline: &GenEditPipeline<L>,
    admitted: Admitted,
) {
    let Admitted {
        request_id,
        request,
        cell,
        cancel,
        enqueued_at,
        probe,
        ..
    } = admitted;
    let started = Instant::now();
    let queue_wait = started.duration_since(enqueued_at);
    if cancel.is_cancelled() {
        // Expired or cancelled while still queued: never executed.
        let outcome = cancelled_outcome(request.deadline);
        let expired = matches!(outcome, QueryOutcome::Expired);
        match outcome {
            QueryOutcome::Expired => shared.metrics.incr("serve.expired", 1),
            _ => shared.metrics.incr("serve.cancelled", 1),
        }
        shared.quarantine.on_abandoned(&request.tenant, probe);
        // A missed deadline burns error budget; an explicit client
        // cancel does not.
        record_outcome(
            shared,
            &request_id,
            RequestVerdict::Cancelled,
            queue_wait.as_secs_f64() * 1e3,
            Trace::empty(names::SERVE_REQUEST),
            expired.then_some(true),
        );
        cell.complete(outcome);
        return;
    }
    let service_seq = shared.service_seq.fetch_add(1, Ordering::SeqCst);
    let (epoch, index) = resolve_index(shared, &request.tenant);
    let key = CacheKey::new(&request.tenant, &request.question, epoch);

    if shared.results.capacity() > 0 {
        if let Some(result) = shared.results.get(&key) {
            shared.metrics.incr("serve.cache.hit", 1);
            finish(
                shared,
                &request.tenant,
                &request_id,
                cell,
                result,
                true,
                queue_wait,
                started,
                service_seq,
                probe,
            );
            return;
        }
        shared.metrics.incr("serve.cache.miss", 1);
    }

    // Warm the reformulation operator from the epoch-keyed cache: a
    // repeat question under the same epoch skips the operator-1 model
    // call and embeds nothing.
    let warm = shared.reforms.get(&key);
    let (reformulation, query_embedding) = match warm {
        Some((text, emb)) => {
            shared.metrics.incr("serve.reform.hit", 1);
            (Some(text), Some(emb))
        }
        None => {
            shared.metrics.incr("serve.reform.miss", 1);
            (None, None)
        }
    };
    let opts = GenerateOptions {
        cancel: Some(&cancel),
        reformulation,
        query_embedding,
        ensemble_width: shared.config.ensemble_width,
        request_id: Some(&request_id),
    };
    let result = pipeline.generate_with(
        &request.question,
        &index,
        &shared.db,
        &request.evidence,
        &opts,
    );

    if result.cancelled {
        let outcome = cancelled_outcome(request.deadline);
        let expired = matches!(outcome, QueryOutcome::Expired);
        match outcome {
            QueryOutcome::Expired => shared.metrics.incr("serve.expired", 1),
            _ => shared.metrics.incr("serve.cancelled", 1),
        }
        shared.quarantine.on_abandoned(&request.tenant, probe);
        record_outcome(
            shared,
            &request_id,
            RequestVerdict::Cancelled,
            (queue_wait + started.elapsed()).as_secs_f64() * 1e3,
            result.trace.clone(),
            expired.then_some(true),
        );
        cell.complete(outcome);
        return;
    }

    if shared.reforms.capacity() > 0 && !result.reformulated.is_empty() {
        let emb = index.embedder().embed(&result.reformulated);
        shared
            .reforms
            .insert(key.clone(), (result.reformulated.clone(), emb));
    }
    // Only validated generations are worth replaying: caching a failed
    // one would pin the failure for the whole epoch, answering every
    // retry of the question from the cache with the same broken SQL.
    if shared.results.capacity() > 0 && result.validated {
        let evicted = shared.results.insert(key, result.clone());
        if evicted > 0 {
            shared.metrics.incr("serve.cache.evicted", evicted as u64);
        }
    }
    finish(
        shared,
        &request.tenant,
        &request_id,
        cell,
        result,
        false,
        queue_wait,
        started,
        service_seq,
        probe,
    );
}

#[allow(clippy::too_many_arguments)]
fn finish<M>(
    shared: &Shared<M>,
    tenant: &str,
    request_id: &str,
    cell: Arc<TicketCell>,
    result: GenerationResult,
    cached: bool,
    queue_wait: Duration,
    started: Instant,
    service_seq: u64,
    probe: bool,
) {
    let service = started.elapsed();
    let latency_ms = (queue_wait + service).as_secs_f64() * 1e3;
    shared.metrics.incr("serve.completed", 1);
    shared
        .metrics
        .observe_with_exemplar(names::SERVE_REQUEST, latency_ms, request_id);
    shared
        .metrics
        .observe(&format!("serve.latency_ms.{tenant}"), latency_ms);
    if result.validated {
        shared.quarantine.on_success(tenant, probe);
    } else {
        shared.quarantine.on_failure(tenant, probe);
    }
    let verdict = if !result.validated {
        RequestVerdict::Error
    } else if result.degraded_operator_count() > 0 {
        RequestVerdict::Degraded
    } else {
        RequestVerdict::Ok
    };
    record_outcome(
        shared,
        request_id,
        verdict,
        latency_ms,
        result.trace.clone(),
        Some(verdict == RequestVerdict::Error),
    );
    cell.complete(QueryOutcome::Completed {
        result: Box::new(result),
        cached,
        queue_wait,
        service,
        service_seq,
    });
}

/// Feed one finished (or abandoned) request into the observability
/// plane: the flight recorder first — so an alert fired by this very
/// request dumps a ring that already contains it — then the SLO tracker
/// and its alert state machine. `slo_error`: `None` keeps the request
/// out of the SLO (explicit client cancels, shed requests), `Some(e)`
/// counts it with error flag `e`.
fn record_outcome<M>(
    shared: &Shared<M>,
    request_id: &str,
    verdict: RequestVerdict,
    latency_ms: f64,
    trace: Trace,
    slo_error: Option<bool>,
) {
    if let Some(recorder) = &shared.recorder {
        recorder.record(RecordedRequest {
            request_id: request_id.to_string(),
            verdict,
            latency_ms,
            trace,
        });
    }
    let (Some(slo), Some(error)) = (&shared.slo, slo_error) else {
        return;
    };
    slo.record(latency_ms, error);
    match slo.evaluate().transition {
        Some(AlertTransition::Fired) => {
            shared.metrics.incr("serve.slo.fired", 1);
            if let (Some(recorder), Some(path)) =
                (&shared.recorder, &shared.config.observability.dump_path)
            {
                if std::fs::write(path, recorder.dump_jsonl()).is_ok() {
                    shared.metrics.incr("serve.slo.dumps", 1);
                }
            }
        }
        Some(AlertTransition::Resolved) => shared.metrics.incr("serve.slo.resolved", 1),
        None => {}
    }
}
