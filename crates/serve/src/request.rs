//! Request, outcome, and completion-handle types for the serving runtime.

use genedit_core::{CancelToken, GenerationResult};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Scheduling priority. Deficit round-robin serves requests by *cost*:
/// a tenant's deficit must cover a request's cost before it runs, so
/// cheaper (higher-priority) requests drain faster under contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Interactive traffic — cost 1.
    High,
    /// Default traffic — cost 2.
    #[default]
    Normal,
    /// Batch/backfill traffic — cost 4.
    Low,
}

impl Priority {
    /// DRR cost: how much tenant deficit one request of this priority
    /// consumes.
    pub fn cost(self) -> u32 {
        match self {
            Priority::High => 1,
            Priority::Normal => 2,
            Priority::Low => 4,
        }
    }
}

/// One question submitted to the serving runtime.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Tenant the request bills to; fairness and cache keys are scoped
    /// by this value.
    pub tenant: String,
    /// The natural-language question.
    pub question: String,
    /// Benchmark-style evidence strings (usually empty in GenEdit mode).
    pub evidence: Vec<String>,
    /// Absolute deadline. Expired requests are dropped (never executed)
    /// and under queue saturation the earliest deadline is shed first.
    pub deadline: Option<Instant>,
    /// Scheduling priority (DRR cost class).
    pub priority: Priority,
}

impl QueryRequest {
    /// A normal-priority request with no deadline or evidence.
    pub fn new(tenant: impl Into<String>, question: impl Into<String>) -> QueryRequest {
        QueryRequest {
            tenant: tenant.into(),
            question: question.into(),
            evidence: Vec::new(),
            deadline: None,
            priority: Priority::Normal,
        }
    }

    /// Set an absolute deadline `budget` from now.
    pub fn with_deadline_in(mut self, budget: Duration) -> QueryRequest {
        self.deadline = Some(Instant::now() + budget);
        self
    }

    /// Set an absolute deadline. A deadline already in the past is
    /// rejected at submit with [`Rejected::DeadlineExpired`].
    pub fn with_deadline(mut self, deadline: Instant) -> QueryRequest {
        self.deadline = Some(deadline);
        self
    }

    /// Set the scheduling priority.
    pub fn with_priority(mut self, priority: Priority) -> QueryRequest {
        self.priority = priority;
        self
    }

    /// Attach benchmark-style evidence strings.
    pub fn with_evidence(mut self, evidence: Vec<String>) -> QueryRequest {
        self.evidence = evidence;
        self
    }
}

/// Why a submission was refused at the admission gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The queue is saturated and the incoming request's deadline is no
    /// later than every queued request's — shedding would not help.
    QueueFull,
    /// The runtime is draining; no new work is accepted.
    ShuttingDown,
    /// The request's deadline had already passed at submit time, so it
    /// was rejected up front instead of consuming a queue slot only to
    /// expire unexecuted.
    DeadlineExpired,
    /// The tenant is quarantined: its recent requests panicked or failed
    /// validation at a rate that tripped the per-tenant breaker, and the
    /// cooldown has not yet elapsed (or a half-open probe is already in
    /// flight). Back off and retry later — one poison-pill tenant must
    /// not burn the worker pool or starve its DRR peers.
    Quarantined,
}

/// Terminal state of an admitted request.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// The pipeline ran (or a cached result was replayed).
    Completed {
        /// Boxed: a full generation result is large and the other
        /// outcome variants carry nothing.
        result: Box<GenerationResult>,
        /// True when served from the epoch-keyed result cache.
        cached: bool,
        /// Time spent queued before a worker picked the request up.
        queue_wait: Duration,
        /// Worker-side execution time (cache lookup or full generation).
        service: Duration,
        /// Global dequeue order — position in the service sequence
        /// across all tenants. Fairness tests assert on this.
        service_seq: u64,
    },
    /// Deadline passed while queued or mid-generation; no SQL produced.
    Expired,
    /// Caller cancelled via [`Ticket::cancel`].
    Cancelled,
    /// Evicted from a saturated queue in favor of a request with a later
    /// deadline (oldest-deadline-first shedding).
    Shed,
    /// The worker thread serving this request **panicked**. The panic
    /// was caught at the per-request isolation boundary, the ticket was
    /// resolved (this variant), and the worker was retired and respawned
    /// by the supervisor — the panic never took the pool down and never
    /// left this ticket hanging.
    Failed {
        /// Human-readable summary of the panic payload (the `&str` or
        /// `String` passed to `panic!`, or a placeholder for exotic
        /// payloads).
        reason: String,
    },
}

impl QueryOutcome {
    /// The generation result, when the request completed.
    pub fn result(&self) -> Option<&GenerationResult> {
        match self {
            QueryOutcome::Completed { result, .. } => Some(result.as_ref()),
            _ => None,
        }
    }

    /// Whether the request reached [`QueryOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, QueryOutcome::Completed { .. })
    }
}

#[derive(Default)]
struct TicketState {
    outcome: Option<QueryOutcome>,
}

/// Shared completion slot between a [`Ticket`] and the runtime.
pub(crate) struct TicketCell {
    state: Mutex<TicketState>,
    done: Condvar,
}

impl TicketCell {
    fn lock(&self) -> MutexGuard<'_, TicketState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub(crate) fn complete(&self, outcome: QueryOutcome) {
        let mut state = self.lock();
        if state.outcome.is_none() {
            state.outcome = Some(outcome);
        }
        drop(state);
        self.done.notify_all();
    }

    /// Whether a terminal outcome has been recorded. The panic-isolation
    /// guard consults this to catch request paths that would otherwise
    /// return without ever resolving the ticket.
    pub(crate) fn is_complete(&self) -> bool {
        self.lock().outcome.is_some()
    }
}

/// Handle returned by a successful `submit`: wait for the outcome,
/// poll it, or cancel the request cooperatively.
pub struct Ticket {
    cell: Arc<TicketCell>,
    cancel: CancelToken,
    request_id: String,
}

impl Ticket {
    pub(crate) fn new(cancel: CancelToken, request_id: String) -> (Ticket, Arc<TicketCell>) {
        let cell = Arc::new(TicketCell {
            state: Mutex::new(TicketState::default()),
            done: Condvar::new(),
        });
        (
            Ticket {
                cell: Arc::clone(&cell),
                cancel,
                request_id,
            },
            cell,
        )
    }

    /// The request ID assigned at admission. The same ID appears as the
    /// `request_id` attribute on the generation's root span, in metric
    /// exemplars, and in flight-recorder dumps, so one request's
    /// telemetry joins across all three.
    pub fn request_id(&self) -> &str {
        &self.request_id
    }

    /// Request cooperative cancellation. The pipeline checks between
    /// operators; a request still queued resolves without executing.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Block until the request reaches a terminal state.
    pub fn wait(&self) -> QueryOutcome {
        let mut state = self.cell.lock();
        loop {
            if let Some(outcome) = state.outcome.clone() {
                return outcome;
            }
            state = self
                .cell
                .done
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// The outcome, if the request already finished.
    pub fn try_wait(&self) -> Option<QueryOutcome> {
        self.cell.lock().outcome.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn priority_costs_are_ordered() {
        assert!(Priority::High.cost() < Priority::Normal.cost());
        assert!(Priority::Normal.cost() < Priority::Low.cost());
    }

    #[test]
    fn ticket_wait_sees_completion_from_another_thread() {
        let (ticket, cell) = Ticket::new(CancelToken::new(), "req-00000001".to_string());
        assert_eq!(ticket.request_id(), "req-00000001");
        assert!(ticket.try_wait().is_none());
        let handle = thread::spawn(move || cell.complete(QueryOutcome::Shed));
        let outcome = ticket.wait();
        handle.join().ok();
        assert!(matches!(outcome, QueryOutcome::Shed));
        assert!(ticket.try_wait().is_some());
    }

    #[test]
    fn first_completion_wins() {
        let (ticket, cell) = Ticket::new(CancelToken::new(), "req-00000002".to_string());
        cell.complete(QueryOutcome::Expired);
        cell.complete(QueryOutcome::Shed);
        assert!(matches!(ticket.wait(), QueryOutcome::Expired));
    }
}
