//! Deficit-round-robin admission queue with oldest-deadline-first
//! load shedding.
//!
//! Each tenant owns a FIFO sub-queue; active tenants sit in a ring.
//! Every ring visit credits the tenant `quantum` deficit; the head
//! request runs once the deficit covers its [`Priority`](crate::Priority)
//! cost. A tenant that floods the queue therefore cannot starve others:
//! per round, every active tenant drains roughly `quantum / cost`
//! requests regardless of how much is queued behind them.

use crate::request::{QueryRequest, TicketCell};
use genedit_core::CancelToken;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// A request that passed admission, queued with its completion handle.
pub(crate) struct Admitted {
    pub seq: u64,
    /// Admission-assigned request ID (`req-{seq:08x}`), threaded through
    /// the pipeline so traces, exemplars, and flight-recorder entries
    /// join.
    pub request_id: String,
    pub request: QueryRequest,
    pub cell: Arc<TicketCell>,
    pub cancel: CancelToken,
    pub enqueued_at: Instant,
    pub cost: u32,
    /// True when this request was admitted as a half-open quarantine
    /// probe: its outcome (alone) decides whether the tenant recovers.
    pub probe: bool,
}

#[derive(Default)]
struct TenantQueue {
    queue: VecDeque<Admitted>,
    deficit: u32,
}

/// The scheduler state, guarded by the runtime's queue mutex.
pub(crate) struct DrrScheduler {
    tenants: HashMap<String, TenantQueue>,
    /// Round-robin ring over tenants with queued work.
    ring: VecDeque<String>,
    queued: usize,
    quantum: u32,
}

impl DrrScheduler {
    pub fn new(quantum: u32) -> DrrScheduler {
        DrrScheduler {
            tenants: HashMap::new(),
            ring: VecDeque::new(),
            queued: 0,
            quantum: quantum.max(1),
        }
    }

    pub fn len(&self) -> usize {
        self.queued
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    pub fn push(&mut self, admitted: Admitted) {
        let tenant = admitted.request.tenant.clone();
        let q = self.tenants.entry(tenant.clone()).or_default();
        let was_empty = q.queue.is_empty();
        q.queue.push_back(admitted);
        self.queued += 1;
        if was_empty {
            self.ring.push_back(tenant);
        }
    }

    /// Pop the next request under DRR. Returns `None` when empty.
    pub fn pop(&mut self) -> Option<Admitted> {
        if self.queued == 0 {
            return None;
        }
        // Each visit adds `quantum` to the tenant's deficit, so any head
        // request becomes affordable within ceil(cost / quantum) ring
        // passes — the loop always terminates with a pop.
        loop {
            let tenant = self.ring.pop_front()?;
            let Some(q) = self.tenants.get_mut(&tenant) else {
                continue;
            };
            if q.queue.is_empty() {
                q.deficit = 0;
                continue;
            }
            q.deficit = q.deficit.saturating_add(self.quantum);
            let affordable = q
                .queue
                .front()
                .map(|a| a.cost <= q.deficit)
                .unwrap_or(false);
            if !affordable {
                self.ring.push_back(tenant);
                continue;
            }
            let admitted = match q.queue.pop_front() {
                Some(a) => a,
                None => continue,
            };
            q.deficit -= admitted.cost;
            self.queued -= 1;
            if q.queue.is_empty() {
                // An idle tenant keeps no credit: deficit accrues only
                // while work is actually waiting.
                q.deficit = 0;
            } else {
                self.ring.push_back(tenant);
            }
            return Some(admitted);
        }
    }

    /// The queued request with the **earliest** deadline, if any queued
    /// request has one. This is the shedding victim candidate: under
    /// saturation, the request most likely to expire anyway is dropped
    /// to make room for one with more runway.
    pub fn earliest_deadline(&self) -> Option<(Instant, u64)> {
        self.tenants
            .values()
            .flat_map(|q| q.queue.iter())
            .filter_map(|a| a.request.deadline.map(|d| (d, a.seq)))
            .min()
    }

    /// Remove and return **every** queued request, in tenant-grouped FIFO
    /// order. The drain path uses this after its deadline passes to
    /// force-resolve stragglers instead of executing them.
    pub fn drain_all(&mut self) -> Vec<Admitted> {
        let mut drained = Vec::with_capacity(self.queued);
        for q in self.tenants.values_mut() {
            drained.extend(q.queue.drain(..));
            q.deficit = 0;
        }
        self.ring.clear();
        self.queued = 0;
        drained.sort_by_key(|a| a.seq);
        drained
    }

    /// Remove a queued request by sequence number.
    pub fn remove(&mut self, seq: u64) -> Option<Admitted> {
        for q in self.tenants.values_mut() {
            if let Some(pos) = q.queue.iter().position(|a| a.seq == seq) {
                let admitted = q.queue.remove(pos)?;
                self.queued -= 1;
                return Some(admitted);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Priority, Ticket};
    use std::time::Duration;

    fn admitted(seq: u64, tenant: &str, priority: Priority) -> Admitted {
        let cancel = CancelToken::new();
        let (_ticket, cell) = Ticket::new(cancel.clone(), format!("req-{seq:08x}"));
        Admitted {
            seq,
            request_id: format!("req-{seq:08x}"),
            request: QueryRequest::new(tenant, format!("q{seq}")).with_priority(priority),
            cell,
            cancel,
            enqueued_at: Instant::now(),
            cost: priority.cost(),
            probe: false,
        }
    }

    fn with_deadline(mut a: Admitted, from_now_ms: u64) -> Admitted {
        a.request.deadline = Some(Instant::now() + Duration::from_millis(from_now_ms));
        a
    }

    #[test]
    fn single_tenant_is_fifo() {
        let mut s = DrrScheduler::new(2);
        for seq in 0..5 {
            s.push(admitted(seq, "acme", Priority::Normal));
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|a| a.seq).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(s.is_empty());
    }

    #[test]
    fn flooding_tenant_cannot_starve_others() {
        let mut s = DrrScheduler::new(2);
        // Hot tenant floods 10 requests before cold's single one arrives.
        for seq in 0..10 {
            s.push(admitted(seq, "hot", Priority::Normal));
        }
        s.push(admitted(100, "cold", Priority::Normal));
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|a| a.seq).collect();
        let cold_pos = order.iter().position(|&s| s == 100).unwrap();
        // DRR alternates tenants: cold runs second, not eleventh.
        assert!(
            cold_pos <= 1,
            "cold tenant served at position {cold_pos}, order {order:?}"
        );
    }

    #[test]
    fn high_priority_drains_faster_within_budget() {
        let mut s = DrrScheduler::new(2);
        // Tenant A queues Low (cost 4) work, tenant B High (cost 1).
        for seq in 0..3 {
            s.push(admitted(seq, "a", Priority::Low));
        }
        for seq in 10..13 {
            s.push(admitted(seq, "b", Priority::High));
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|a| a.seq).collect();
        // B's cheap requests all finish before A's expensive ones do:
        // each of A's costs 4 (two ring passes at quantum 2).
        let last_b = order.iter().rposition(|&s| s >= 10).unwrap();
        let first_a_after = order[..last_b].iter().filter(|&&s| s < 10).count();
        assert!(
            first_a_after <= 2,
            "expected at most 2 Low requests before the last High, order {order:?}"
        );
    }

    #[test]
    fn earliest_deadline_and_remove() {
        let mut s = DrrScheduler::new(2);
        s.push(with_deadline(admitted(0, "a", Priority::Normal), 500));
        s.push(with_deadline(admitted(1, "b", Priority::Normal), 100));
        s.push(admitted(2, "c", Priority::Normal)); // no deadline: never shed
        let (_, victim) = s.earliest_deadline().unwrap();
        assert_eq!(victim, 1);
        let removed = s.remove(victim).unwrap();
        assert_eq!(removed.seq, 1);
        assert_eq!(s.len(), 2);
        assert!(s.remove(99).is_none());
    }

    #[test]
    fn pop_drains_across_tenants() {
        let mut s = DrrScheduler::new(2);
        for seq in 0..4 {
            s.push(admitted(
                seq,
                if seq % 2 == 0 { "a" } else { "b" },
                Priority::Normal,
            ));
        }
        let drained: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|a| a.seq).collect();
        assert_eq!(drained.len(), 4);
        assert!(s.is_empty());
        assert!(s.pop().is_none());
    }
}
