//! Fold traces into per-span-name breakdowns — the numbers the ablation
//! study and every later performance PR compare against.

use crate::names;
use crate::span::Trace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregated cost of one span name across a batch of traces: call
/// count, total/mean latency, and the LLM calls made underneath it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorStats {
    /// Spans recorded under this name.
    pub count: usize,
    /// Total recorded latency, milliseconds.
    pub total_ms: f64,
    /// Mean latency per span, milliseconds.
    pub mean_ms: f64,
    /// `llm.complete` spans nested (at any depth) inside spans of this
    /// name — the cost-attribution number behind §3.3.3's model swaps.
    pub llm_calls: usize,
    /// Spans of this name carrying a `degraded = true` attribute — the
    /// operator fell back to its degradation path after its model call
    /// ultimately failed.
    pub degraded: usize,
}

/// Aggregate every span name appearing in `traces`. The map includes the
/// non-operator spans too (`pipeline.generate`, `llm.complete`, …);
/// filter on the `operator.` prefix for the Table-2 view.
pub fn operator_breakdown<'a, I>(traces: I) -> BTreeMap<String, OperatorStats>
where
    I: IntoIterator<Item = &'a Trace>,
{
    let mut out: BTreeMap<String, OperatorStats> = BTreeMap::new();
    for trace in traces {
        for span in trace.all_spans() {
            let llm_calls = if span.name == names::LLM_COMPLETE {
                1
            } else {
                span.count_named(names::LLM_COMPLETE)
            };
            let entry = out.entry(span.name.clone()).or_insert(OperatorStats {
                count: 0,
                total_ms: 0.0,
                mean_ms: 0.0,
                llm_calls: 0,
                degraded: 0,
            });
            entry.count += 1;
            entry.total_ms += span.duration.as_secs_f64() * 1e3;
            entry.llm_calls += llm_calls;
            if span.attr("degraded") == Some(&crate::span::AttrValue::Bool(true)) {
                entry.degraded += 1;
            }
        }
    }
    for stats in out.values_mut() {
        if stats.count > 0 {
            stats.mean_ms = stats.total_ms / stats.count as f64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn trace_with_llm_calls() -> Trace {
        let tracer = Tracer::new("t");
        {
            let _root = tracer.span(names::GENERATE);
            {
                let _op = tracer.span(names::REFORMULATE);
                tracer.span(names::LLM_COMPLETE).finish();
            }
            {
                let _att = tracer.span(names::SQL_ATTEMPT);
                tracer.span(names::LLM_COMPLETE).finish();
                tracer.span(names::LLM_COMPLETE).finish();
            }
        }
        tracer.finish()
    }

    #[test]
    fn llm_calls_attribute_to_enclosing_spans() {
        let trace = trace_with_llm_calls();
        let breakdown = operator_breakdown([&trace]);
        assert_eq!(breakdown[names::REFORMULATE].llm_calls, 1);
        assert_eq!(breakdown[names::SQL_ATTEMPT].llm_calls, 2);
        assert_eq!(breakdown[names::GENERATE].llm_calls, 3);
        assert_eq!(breakdown[names::LLM_COMPLETE].count, 3);
        assert_eq!(breakdown[names::LLM_COMPLETE].llm_calls, 3);
    }

    #[test]
    fn counts_and_means_accumulate_across_traces() {
        let a = trace_with_llm_calls();
        let b = trace_with_llm_calls();
        let breakdown = operator_breakdown(vec![&a, &b]);
        assert_eq!(breakdown[names::GENERATE].count, 2);
        assert_eq!(breakdown[names::SQL_ATTEMPT].count, 2);
        let g = &breakdown[names::GENERATE];
        assert!((g.mean_ms - g.total_ms / 2.0).abs() < 1e-12);
        assert!(g.total_ms >= breakdown[names::REFORMULATE].total_ms);
    }

    #[test]
    fn empty_input_gives_empty_map() {
        assert!(operator_breakdown(std::iter::empty::<&Trace>()).is_empty());
    }

    #[test]
    fn degraded_attribute_is_counted() {
        let tracer = Tracer::new("t");
        {
            let _root = tracer.span(names::GENERATE);
            {
                let span = tracer.span(names::REFORMULATE);
                span.attr("degraded", true);
            }
            tracer.span(names::REFORMULATE).finish();
            {
                let span = tracer.span(names::PLAN);
                span.attr("degraded", false);
            }
        }
        let trace = tracer.finish();
        let breakdown = operator_breakdown([&trace]);
        assert_eq!(breakdown[names::REFORMULATE].count, 2);
        assert_eq!(breakdown[names::REFORMULATE].degraded, 1);
        assert_eq!(breakdown[names::PLAN].degraded, 0);
        assert_eq!(breakdown[names::GENERATE].degraded, 0);
    }
}
