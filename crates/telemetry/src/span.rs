//! The span recorder: [`Tracer`] collects nested [`Span`]s into a
//! per-generation [`Trace`].
//!
//! Recording uses interior mutability so instrumented components (the
//! pipeline, the traced model wrapper, validation) can share one tracer
//! through `&` references. A poisoned lock degrades to best-effort
//! recording instead of propagating the panic — telemetry must never take
//! down the measured code.

use serde::{Deserialize, Serialize};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    Str(String),
    Int(i64),
    UInt(u64),
    Float(f64),
    Bool(bool),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::Str(s) => write!(f, "{s}"),
            AttrValue::Int(n) => write!(f, "{n}"),
            AttrValue::UInt(n) => write!(f, "{n}"),
            AttrValue::Float(x) => write!(f, "{x}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> AttrValue {
        AttrValue::Str(s.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(s: String) -> AttrValue {
        AttrValue::Str(s)
    }
}
impl From<i64> for AttrValue {
    fn from(n: i64) -> AttrValue {
        AttrValue::Int(n)
    }
}
impl From<u64> for AttrValue {
    fn from(n: u64) -> AttrValue {
        AttrValue::UInt(n)
    }
}
impl From<u32> for AttrValue {
    fn from(n: u32) -> AttrValue {
        AttrValue::UInt(n as u64)
    }
}
impl From<usize> for AttrValue {
    fn from(n: usize) -> AttrValue {
        AttrValue::UInt(n as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(x: f64) -> AttrValue {
        AttrValue::Float(x)
    }
}
impl From<bool> for AttrValue {
    fn from(b: bool) -> AttrValue {
        AttrValue::Bool(b)
    }
}

/// One timed unit of work. `start` is the offset from the trace origin,
/// so spans stay meaningful after export without wall-clock context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    pub name: String,
    pub start: Duration,
    pub duration: Duration,
    pub attrs: Vec<(String, AttrValue)>,
    pub children: Vec<Span>,
}

impl Span {
    fn new(name: &str, start: Duration) -> Span {
        Span {
            name: name.to_string(),
            start,
            duration: Duration::ZERO,
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Depth-first walk over this span and everything below it.
    pub fn walk<'s>(&'s self, out: &mut Vec<&'s Span>) {
        out.push(self);
        for child in &self.children {
            child.walk(out);
        }
    }

    /// Number of spans named `name` in this subtree (including self).
    pub fn count_named(&self, name: &str) -> usize {
        let mut all = Vec::new();
        self.walk(&mut all);
        all.iter().filter(|s| s.name == name).count()
    }
}

/// A finished trace: the span forest of one traced operation plus any
/// warning events recorded along the way.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    pub name: String,
    pub spans: Vec<Span>,
    pub warnings: Vec<String>,
}

impl Trace {
    /// An empty trace (e.g. for `Default`-constructed results).
    pub fn empty(name: &str) -> Trace {
        Trace {
            name: name.to_string(),
            spans: Vec::new(),
            warnings: Vec::new(),
        }
    }

    /// Every span in the trace, depth-first.
    pub fn all_spans(&self) -> Vec<&Span> {
        let mut out = Vec::new();
        for span in &self.spans {
            span.walk(&mut out);
        }
        out
    }

    /// First span with the given name, depth-first.
    pub fn find(&self, name: &str) -> Option<&Span> {
        self.all_spans().into_iter().find(|s| s.name == name)
    }

    /// How many spans carry the given name.
    pub fn count(&self, name: &str) -> usize {
        self.all_spans().iter().filter(|s| s.name == name).count()
    }

    /// Total recorded duration across spans with the given name.
    pub fn total(&self, name: &str) -> Duration {
        self.all_spans()
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.duration)
            .sum()
    }
}

struct Rec {
    span: Span,
    started: Instant,
    parent: Option<usize>,
}

struct Inner {
    name: String,
    origin: Instant,
    arena: Vec<Option<Rec>>,
    /// Indices of currently-open spans, innermost last.
    stack: Vec<usize>,
    warnings: Vec<String>,
}

/// Records spans into a [`Trace`]. Cheap to create (one per generation);
/// share by `&` reference.
pub struct Tracer {
    inner: Mutex<Inner>,
}

impl Tracer {
    pub fn new(name: &str) -> Tracer {
        Tracer {
            inner: Mutex::new(Inner {
                name: name.to_string(),
                origin: Instant::now(),
                arena: Vec::new(),
                stack: Vec::new(),
                warnings: Vec::new(),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panic inside an instrumented section poisons the lock; keep
        // recording anyway — the partial trace is evidence, not a hazard.
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Open a span under the currently-innermost open span. Closes when
    /// the returned guard drops (or `finish()` is called on it).
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let mut inner = self.lock();
        let start = inner.origin.elapsed();
        let parent = inner.stack.last().copied();
        let idx = inner.arena.len();
        inner.arena.push(Some(Rec {
            span: Span::new(name, start),
            started: Instant::now(),
            parent,
        }));
        inner.stack.push(idx);
        SpanGuard {
            tracer: self,
            idx,
            closed: false,
        }
    }

    /// Record a warning event: appended to the trace's warning list and,
    /// when a span is open, attached to it as a `warning` attribute.
    pub fn warning(&self, message: impl Into<String>) {
        let message = message.into();
        let mut inner = self.lock();
        if let Some(&idx) = inner.stack.last() {
            if let Some(rec) = inner.arena[idx].as_mut() {
                rec.span
                    .attrs
                    .push(("warning".to_string(), AttrValue::Str(message.clone())));
            }
        }
        inner.warnings.push(message);
    }

    fn set_attr(&self, idx: usize, key: &str, value: AttrValue) {
        let mut inner = self.lock();
        if let Some(rec) = inner.arena[idx].as_mut() {
            rec.span.attrs.push((key.to_string(), value));
        }
    }

    fn close(&self, idx: usize) {
        let mut inner = self.lock();
        if let Some(rec) = inner.arena[idx].as_mut() {
            rec.span.duration = rec.started.elapsed();
        }
        inner.stack.retain(|&i| i != idx);
    }

    /// Close any still-open spans and assemble the span forest.
    pub fn finish(self) -> Trace {
        let mut inner = self.lock();
        let open: Vec<usize> = inner.stack.drain(..).collect();
        for idx in open {
            if let Some(rec) = inner.arena[idx].as_mut() {
                rec.span.duration = rec.started.elapsed();
            }
        }
        // Children carry higher arena indices than their parents, so a
        // reverse pass can move every span into its parent exactly once.
        let mut arena = std::mem::take(&mut inner.arena);
        let mut roots: Vec<Span> = Vec::new();
        for i in (0..arena.len()).rev() {
            let Some(mut rec) = arena[i].take() else {
                continue;
            };
            rec.span.children.reverse();
            match rec.parent {
                Some(p) => {
                    if let Some(parent) = arena[p].as_mut() {
                        parent.span.children.push(rec.span);
                    }
                }
                None => roots.push(rec.span),
            }
        }
        roots.reverse();
        Trace {
            name: std::mem::take(&mut inner.name),
            spans: roots,
            warnings: std::mem::take(&mut inner.warnings),
        }
    }
}

/// Handle to an open span. Attributes can be attached while open; the
/// span closes on drop or [`SpanGuard::finish`].
pub struct SpanGuard<'t> {
    tracer: &'t Tracer,
    idx: usize,
    closed: bool,
}

impl SpanGuard<'_> {
    /// Attach an attribute to this span.
    pub fn attr(&self, key: &str, value: impl Into<AttrValue>) -> &Self {
        self.tracer.set_attr(self.idx, key, value.into());
        self
    }

    /// Close the span now instead of at end of scope.
    pub fn finish(mut self) {
        self.closed = true;
        self.tracer.close(self.idx);
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if !self.closed {
            self.tracer.close(self.idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_in_call_order() {
        let tracer = Tracer::new("t");
        {
            let a = tracer.span("a");
            a.attr("k", 1u64);
            {
                let _b = tracer.span("b");
                let _c = tracer.span("c");
            }
            let _d = tracer.span("d");
        }
        let trace = tracer.finish();
        assert_eq!(trace.spans.len(), 1);
        let a = &trace.spans[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.attr("k"), Some(&AttrValue::UInt(1)));
        let names: Vec<&str> = a.children.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["b", "d"]);
        assert_eq!(a.children[0].children[0].name, "c");
    }

    #[test]
    fn sequential_roots_stay_ordered() {
        let tracer = Tracer::new("t");
        tracer.span("first").finish();
        tracer.span("second").finish();
        let trace = tracer.finish();
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["first", "second"]);
    }

    #[test]
    fn warnings_attach_to_open_span_and_trace() {
        let tracer = Tracer::new("t");
        {
            let _s = tracer.span("op");
            tracer.warning("fallback used");
        }
        tracer.warning("outside any span");
        let trace = tracer.finish();
        assert_eq!(trace.warnings.len(), 2);
        let op = trace.find("op").unwrap();
        assert_eq!(
            op.attr("warning"),
            Some(&AttrValue::Str("fallback used".into()))
        );
    }

    #[test]
    fn unclosed_spans_are_closed_by_finish() {
        let tracer = Tracer::new("t");
        let guard = tracer.span("open");
        std::mem::forget(guard);
        let trace = tracer.finish();
        assert_eq!(trace.count("open"), 1);
    }

    #[test]
    fn durations_are_monotonic_and_nested_within_parent() {
        let tracer = Tracer::new("t");
        {
            let _outer = tracer.span("outer");
            let inner = tracer.span("inner");
            std::thread::sleep(Duration::from_millis(2));
            inner.finish();
        }
        let trace = tracer.finish();
        let outer = trace.find("outer").unwrap();
        let inner = trace.find("inner").unwrap();
        assert!(inner.duration >= Duration::from_millis(2));
        assert!(outer.duration >= inner.duration);
        assert!(inner.start >= outer.start);
    }

    #[test]
    fn trace_query_helpers() {
        let tracer = Tracer::new("t");
        {
            let _a = tracer.span("x");
            tracer.span("y").finish();
            tracer.span("y").finish();
        }
        let trace = tracer.finish();
        assert_eq!(trace.count("y"), 2);
        assert_eq!(trace.all_spans().len(), 3);
        assert!(trace.find("missing").is_none());
        assert!(trace.total("y") <= trace.total("x"));
        assert_eq!(trace.spans[0].count_named("y"), 2);
    }
}
