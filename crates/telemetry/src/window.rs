//! Sliding-window rollups: a ring of fixed-width time intervals.
//!
//! An [`IntervalRing`] buckets events by the interval ("slot") they fall
//! into and answers "how many good/bad events in the last *W*?" by
//! summing the slots that cover that window. Slots are reused in a ring;
//! each remembers the epoch it was last written for, so stale laps of
//! the ring are ignored rather than zeroed eagerly. Time comes from the
//! caller ([`crate::clock::Clock`]-derived), which keeps burn-rate tests
//! deterministic under a `SimulatedClock`.
//!
//! Resolution is the slot width: a rollup over window *W* covers between
//! *W* and *W + slot* of real time, which is the standard trade in
//! interval-rollup monitoring systems.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Good/bad event totals over some window of time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowCounts {
    /// Events observed in the window.
    pub total: u64,
    /// Events classified bad (errors, SLO-threshold violations, …).
    pub bad: u64,
}

impl WindowCounts {
    /// Fraction of events that were bad; 0 when the window is empty.
    pub fn bad_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.bad as f64 / self.total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    epoch: u64,
    total: u64,
    bad: u64,
}

/// Ring of fixed-width interval slots accumulating good/bad counts.
pub struct IntervalRing {
    slot_width: Duration,
    slots: Mutex<Vec<Slot>>,
}

impl IntervalRing {
    /// Ring covering `slots × slot_width` of history. `slot_width` must
    /// be non-zero and `slots` non-zero; both are clamped up to 1.
    pub fn new(slot_width: Duration, slots: usize) -> IntervalRing {
        IntervalRing {
            slot_width: slot_width.max(Duration::from_millis(1)),
            slots: Mutex::new(vec![Slot::default(); slots.max(1)]),
        }
    }

    /// Total history the ring can cover.
    pub fn span(&self) -> Duration {
        self.slot_width * self.lock().len() as u32
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Slot>> {
        self.slots
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn epoch_of(&self, now: Duration) -> u64 {
        (now.as_nanos() / self.slot_width.as_nanos()) as u64
    }

    /// Record one event at time `now`.
    pub fn record(&self, now: Duration, bad: bool) {
        let epoch = self.epoch_of(now);
        let mut slots = self.lock();
        let len = slots.len() as u64;
        let slot = &mut slots[(epoch % len) as usize];
        if slot.epoch != epoch {
            // The ring lapped: this slot holds counts from `slots`
            // epochs ago. Claim it for the current epoch.
            *slot = Slot {
                epoch,
                total: 0,
                bad: 0,
            };
        }
        slot.total += 1;
        if bad {
            slot.bad += 1;
        }
    }

    /// Sum the slots covering the last `window` ending at `now`. The
    /// current (partial) slot is included; windows wider than the ring
    /// are clamped to the ring's span.
    pub fn rollup(&self, now: Duration, window: Duration) -> WindowCounts {
        let slots = self.lock();
        let len = slots.len() as u64;
        let current = self.epoch_of(now);
        let mut back = (window
            .as_nanos()
            .div_ceil(self.slot_width.as_nanos().max(1))) as u64;
        back = back.clamp(1, len);
        let oldest = current.saturating_sub(back - 1);
        let mut out = WindowCounts::default();
        for slot in slots.iter() {
            if slot.epoch >= oldest && slot.epoch <= current && slot.total > 0 {
                out.total += slot.total;
                out.bad += slot.bad;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn rollup_counts_only_the_requested_window() {
        let ring = IntervalRing::new(secs(1), 60);
        for t in 0..30 {
            ring.record(secs(t), t % 3 == 0);
        }
        let all = ring.rollup(secs(29), secs(60));
        assert_eq!(all.total, 30);
        assert_eq!(all.bad, 10);
        // Last 5 seconds ending at t=29: epochs 25..=29.
        let recent = ring.rollup(secs(29), secs(5));
        assert_eq!(recent.total, 5);
        assert_eq!(recent.bad, 1); // only t=27 divisible by 3
    }

    #[test]
    fn stale_laps_are_ignored() {
        let ring = IntervalRing::new(secs(1), 10);
        ring.record(secs(0), true);
        // 100 seconds later the ring has lapped ten times; the old slot
        // must not leak into a fresh rollup.
        let counts = ring.rollup(secs(100), secs(10));
        assert_eq!(counts, WindowCounts::default());
        ring.record(secs(100), false);
        let counts = ring.rollup(secs(100), secs(10));
        assert_eq!(counts.total, 1);
        assert_eq!(counts.bad, 0);
    }

    #[test]
    fn lapped_slot_is_reclaimed_on_write() {
        let ring = IntervalRing::new(secs(1), 4);
        ring.record(secs(1), true);
        // Epoch 5 maps to the same slot as epoch 1 (5 % 4 == 1).
        ring.record(secs(5), false);
        let counts = ring.rollup(secs(5), secs(1));
        assert_eq!(counts.total, 1);
        assert_eq!(counts.bad, 0);
    }

    #[test]
    fn bad_fraction_handles_empty_window() {
        assert_eq!(WindowCounts::default().bad_fraction(), 0.0);
        let counts = WindowCounts { total: 4, bad: 1 };
        assert!((counts.bad_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn window_wider_than_ring_is_clamped() {
        let ring = IntervalRing::new(secs(1), 5);
        for t in 0..5 {
            ring.record(secs(t), false);
        }
        let counts = ring.rollup(secs(4), secs(1000));
        assert_eq!(counts.total, 5);
        assert_eq!(ring.span(), secs(5));
    }
}
